//! The paper's headline claims, verified end-to-end at reduced scale.
//!
//! Each test names the claim it checks.  Absolute values are compared at
//! the shape level (who wins, by what class of factor); exact numbers
//! for the evaluation scale are recorded in EXPERIMENTS.md.

use tivapromi_suite::dram::DramGeneration;
use tivapromi_suite::harness::experiments::{fig4, flooding, table2};
use tivapromi_suite::harness::{techniques, ExperimentScale, RunConfig};
use tivapromi_suite::hwmodel::{area, reference, HwParams, Technique};

fn scale() -> ExperimentScale {
    ExperimentScale {
        windows: 2,
        banks: 1,
        seeds: 2,
    }
}

#[test]
fn claim_table_ii_cycles_reproduce_exactly() {
    for r in table2::run() {
        assert_eq!(
            (r.act, r.refresh),
            (r.paper_act, r.paper_refresh),
            "{}",
            r.technique
        );
    }
}

#[test]
fn claim_storage_reduction_9x_to_27x_vs_tabled_counters() {
    // "9×−27× reduced storage requirement than Tabled Counters"
    let config = RunConfig::paper(&scale());
    let twice = techniques::build(Technique::TwiCe, &config, 1).storage_bytes_per_bank();
    let loli = techniques::build(Technique::LoLiPromi, &config, 1).storage_bytes_per_bank();
    let ca = techniques::build(Technique::CaPromi, &config, 1).storage_bytes_per_bank();
    let max_ratio = twice / loli;
    let min_ratio = twice / ca;
    assert!(min_ratio > 8.0, "CaPRoMi ratio {min_ratio}");
    assert!(
        max_ratio > 20.0 && max_ratio < 40.0,
        "LoLiPRoMi ratio {max_ratio}"
    );
}

#[test]
fn claim_tivapromi_reduces_activations_vs_probabilistic() {
    // "6×−12× fewer activations than probabilistic techniques" — at
    // reduced scale we assert the class gap (every TiVaPRoMi variant
    // beats every probabilistic baseline, with a multi-x factor against
    // the table-based probabilistic schemes).
    let points = fig4::run(&scale());
    let get = |t: Technique| {
        points
            .iter()
            .find(|p| p.technique == t)
            .unwrap()
            .overhead
            .mean
    };
    for tiva in [
        Technique::LiPromi,
        Technique::LoPromi,
        Technique::LoLiPromi,
        Technique::CaPromi,
    ] {
        assert!(get(tiva) < get(Technique::Para), "{tiva} vs PARA");
        assert!(get(tiva) * 3.0 < get(Technique::MrLoc), "{tiva} vs MRLoc");
        assert!(get(tiva) * 5.0 < get(Technique::ProHit), "{tiva} vs ProHit");
    }
}

#[test]
fn claim_fpr_reduction_vs_prohit() {
    // "a reduction of FPR (23×−44×)" vs ProHit.
    let points = fig4::run(&scale());
    let get = |t: Technique| points.iter().find(|p| p.technique == t).unwrap().fpr.mean;
    for tiva in [
        Technique::LiPromi,
        Technique::LoPromi,
        Technique::LoLiPromi,
        Technique::CaPromi,
    ] {
        let ratio = get(Technique::ProHit) / get(tiva);
        assert!(ratio > 10.0, "{tiva}: FPR ratio vs ProHit {ratio}");
    }
}

#[test]
fn claim_pure_variant_overhead_ordering() {
    // Table III: LiPRoMi 0.012 < LoLiPRoMi 0.014 < LoPRoMi 0.016 —
    // the linear weight is the cheapest, the hybrid sits between.
    let mut s = scale();
    s.seeds = 3;
    let points = fig4::run(&s);
    let get = |t: Technique| {
        points
            .iter()
            .find(|p| p.technique == t)
            .unwrap()
            .overhead
            .mean
    };
    assert!(get(Technique::LiPromi) < get(Technique::LoPromi));
    assert!(get(Technique::LoLiPromi) < get(Technique::LoPromi));
}

#[test]
fn claim_flooding_ordering_holds() {
    // §IV: logarithmic variants trigger earliest under flooding,
    // LiPRoMi significantly later.
    let mut s = scale();
    s.seeds = 4;
    let results = flooding::run(&s);
    let mean = |t: Technique| {
        results
            .iter()
            .find(|r| r.technique == t && r.phase == 0)
            .unwrap()
            .first_trigger
            .mean
    };
    assert!(mean(Technique::LoPromi) < mean(Technique::LiPromi));
    assert!(mean(Technique::LoLiPromi) < mean(Technique::LiPromi));
}

#[test]
fn claim_area_model_tracks_table_iii() {
    // LUT model within the documented tolerance of the paper's
    // synthesis results, and PARA is the reference minimum.
    let params = HwParams::paper();
    for row in &reference::TABLE3 {
        let model = area::area(row.technique, &params, DramGeneration::Ddr4).total() as f64;
        let ratio = model / row.luts_ddr4 as f64;
        assert!((0.7..=1.4).contains(&ratio), "{}: {ratio}", row.technique);
    }
}

#[test]
fn claim_only_para_and_cra_fit_ddr3() {
    use tivapromi_suite::dram::DramTiming;
    use tivapromi_suite::hwmodel::BudgetCheck;
    let params = HwParams::paper();
    let ddr3 = DramTiming::ddr3();
    let fits: Vec<Technique> = Technique::TABLE3
        .iter()
        .copied()
        .filter(|&t| BudgetCheck::run(t, &params, &ddr3).fits())
        .collect();
    assert_eq!(fits, vec![Technique::Para, Technique::Cra]);
}
