//! Determinism of the bank-sharded parallel run engine.
//!
//! The engine's contract: a sharded run — every bank's sub-stream driven
//! through its own mitigation instance and device on a worker pool — is
//! *bit-identical* to the sequential run, for every technique and every
//! worker count.  These tests pin that contract for all nine Table III
//! techniques at 1, 2, and `available_parallelism` workers, and check
//! the algebra ([`RunMetrics::merge`] associativity/commutativity) that
//! makes merge order irrelevant.

use dram_sim::{CycleStats, Geometry, RowAddr};
use proptest::prelude::*;
use tivapromi_suite::harness::{
    engine, techniques, ExperimentScale, NullObserver, Parallelism, RunConfig, RunMetrics, Runner,
    TimeSeriesRecorder,
};
use tivapromi_suite::hwmodel::Technique;
use tivapromi_suite::trace::{
    AttackConfig, AttackKind, Attacker, MixedTrace, SpecLikeWorkload, WorkloadConfig,
};

const BANKS: u32 = 8;

/// A small multi-bank configuration: 8 banks, scaled-down geometry
/// (1024 rows, 128 intervals per window), two windows.
fn config() -> RunConfig {
    let mut config = RunConfig::paper(&ExperimentScale {
        windows: 2,
        banks: BANKS,
        seeds: 1,
    });
    config.geometry = Geometry::scaled_down(64).with_banks(BANKS);
    config
}

/// The paper-shaped mixed trace scaled to the small geometry: benign
/// Zipf workload on every bank plus a ramping multi-aggressor attack,
/// with aggressors placed inside the 1024-row bank.
fn mix(config: &RunConfig, seed: u64) -> MixedTrace {
    let intervals = config.intervals();
    let workload = SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(intervals),
        seed,
    );
    let mut attack = AttackConfig::paper_ramp(
        config.geometry.banks(),
        intervals,
        u64::from(config.geometry.intervals_per_window()),
    );
    attack.kind = AttackKind::MultiAggressorRamp {
        base_row: RowAddr(500),
        max_aggressors: 20,
    };
    let attacker = Attacker::new(attack);
    MixedTrace::new(
        vec![Box::new(workload), Box::new(attacker)],
        config.timing.max_activations_per_interval(),
    )
}

#[test]
fn sharded_runs_match_sequential_for_every_technique() {
    let seed = 7;
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for technique in Technique::TABLE3 {
        let base = config().with_parallelism(Parallelism::sequential());
        let sequential = {
            let mut mitigation = techniques::build(technique, &base, seed);
            engine::run_observed(
                mix(&base, seed),
                mitigation.as_mut(),
                &base,
                &mut NullObserver,
            )
        };
        for workers in [1, 2, available] {
            let parallel = base
                .clone()
                .with_parallelism(Parallelism::with_workers(workers));
            let sharded = engine::run_sharded(
                mix(&parallel, seed),
                &|| techniques::build(technique, &parallel, seed),
                &parallel,
            );
            assert_eq!(
                sequential, sharded,
                "{technique} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn sharded_runs_are_schedule_independent() {
    // Repeated sharded runs at a thread count above the core count give
    // the scheduler room to vary; the result must not.
    let parallel = config().with_parallelism(Parallelism::with_workers(4));
    let technique = Technique::LoLiPromi;
    let build = || techniques::build(technique, &parallel, 3);
    let first = engine::run_sharded(mix(&parallel, 3), &build, &parallel);
    for _ in 0..3 {
        let again = engine::run_sharded(mix(&parallel, 3), &build, &parallel);
        assert_eq!(first, again);
    }
}

#[test]
fn worker_count_zero_resolves_to_auto() {
    let parallel = config().with_parallelism(Parallelism::default());
    assert!(parallel.parallelism.effective_workers() >= 1);
    let sequential = config().with_parallelism(Parallelism::sequential());
    let technique = Technique::TwiCe;
    let seq = {
        let mut mitigation = techniques::build(technique, &sequential, 1);
        engine::run_observed(
            mix(&sequential, 1),
            mitigation.as_mut(),
            &sequential,
            &mut NullObserver,
        )
    };
    let auto = engine::run_sharded(
        mix(&parallel, 1),
        &|| techniques::build(technique, &parallel, 1),
        &parallel,
    );
    assert_eq!(seq, auto);
}

// --- Observers must not perturb the engine --------------------------

/// Attaching a [`TimeSeriesRecorder`] must not change any metric: the
/// observed run equals the unobserved run (modulo the recorded series
/// itself), for sequential and sharded execution alike.
#[test]
fn timeseries_recorder_does_not_perturb_results() {
    let seed = 11;
    let technique = Technique::LoLiPromi;
    let base = config().with_parallelism(Parallelism::sequential());
    let plain = Runner::new(base.clone())
        .technique(technique)
        .seed(seed)
        .run(mix(&base, seed));
    let observed = Runner::new(base.clone())
        .technique(technique)
        .seed(seed)
        .observer(TimeSeriesRecorder::new(32))
        .run(mix(&base, seed));
    assert!(observed.timeseries.is_some());
    assert_eq!(plain, observed.without_timeseries());
}

/// With observers attached, sharded runs stay bit-identical to the
/// sequential run — including the recorded time series, whose merge is
/// associative over bank shards — at 1, 2 and `available_parallelism`
/// workers.
#[test]
fn observed_sharded_runs_match_observed_sequential() {
    let seed = 5;
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for technique in [Technique::Para, Technique::TwiCe, Technique::LoLiPromi] {
        let base = config().with_parallelism(Parallelism::sequential());
        let sequential = Runner::new(base.clone())
            .technique(technique)
            .seed(seed)
            .observer(TimeSeriesRecorder::new(32))
            .run(mix(&base, seed));
        assert!(sequential.timeseries.is_some());
        for workers in [1, 2, available] {
            let parallel = base
                .clone()
                .with_parallelism(Parallelism::with_workers(workers));
            let sharded = Runner::new(parallel.clone())
                .technique(technique)
                .seed(seed)
                .observer(TimeSeriesRecorder::new(32))
                .run(mix(&parallel, seed));
            assert_eq!(
                sequential, sharded,
                "{technique} observed run diverged at {workers} workers"
            );
        }
    }
}

// --- Red-team search determinism ------------------------------------

/// The security-frontier search is a coordinator/worker design: all
/// randomness and ranking happen on the coordinator, workers only
/// evaluate candidates.  The full quick search under a fixed seed must
/// therefore produce *byte-identical* frontier JSON at 1, 2 and
/// `available_parallelism` workers.
#[test]
fn redteam_search_json_is_worker_count_independent() {
    use tivapromi_suite::redteam::{run_search, SearchConfig};
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let baseline = run_search(&SearchConfig::quick(7).with_workers(1)).to_json();
    for workers in [2, available] {
        let json = run_search(&SearchConfig::quick(7).with_workers(workers)).to_json();
        assert_eq!(
            baseline, json,
            "frontier JSON diverged at {workers} workers"
        );
    }
}

// --- RunMetrics::merge algebra --------------------------------------

/// Shard-like metrics: the kept fields (technique, flip threshold,
/// storage) are fixed — as they are across the shards of one run — and
/// everything else varies freely.
fn metrics_strategy() -> impl Strategy<Value = RunMetrics> {
    (
        (0u64..10_000, 0u64..1000, 0u64..500, 0u64..500),
        (0usize..5, 0u32..200_000, (any::<bool>(), 0u64..50_000)),
        (0u64..64, 0u64..5000, (any::<bool>(), 0u64..60_000)),
    )
        .prop_map(
            |(
                (workload, mitigation, triggers, fps),
                (flips, max_disturbance, (has_trigger, trigger_act)),
                (intervals, aggressors, (has_flip, flip_act)),
            )| {
                let first_trigger = has_trigger.then_some(trigger_act);
                RunMetrics {
                    technique: "shard".into(),
                    workload_activations: workload,
                    aggressor_activations: aggressors.min(workload),
                    mitigation_activations: mitigation,
                    trigger_events: triggers,
                    false_positive_events: fps.min(triggers),
                    flips,
                    max_disturbance,
                    flip_threshold: 139_000,
                    first_trigger_act: first_trigger,
                    time_to_first_flip: has_flip.then_some(flip_act),
                    flip_log: Vec::new(),
                    storage_bytes_per_bank: 64.0,
                    intervals,
                    timeseries: None,
                    // Present on roughly half the shards so the merge
                    // algebra is exercised across Some/None mixes too.
                    cycle: has_trigger.then(|| CycleStats {
                        workload_cycles: workload * 54,
                        mitigation_cycles: mitigation * 54,
                        refresh_cycles: intervals * 420,
                        row_buffer_hits: triggers,
                        row_buffer_misses: workload.saturating_sub(triggers),
                    }),
                }
            },
        )
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in metrics_strategy(),
        b in metrics_strategy(),
        c in metrics_strategy(),
    ) {
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative(a in metrics_strategy(), b in metrics_strategy()) {
        prop_assert_eq!(a.clone().merge(b.clone()), b.merge(a));
    }
}
