//! Equivalence contracts between the three disturbance backend tiers.
//!
//! The engine decides mitigations ahead of the device ("decide ahead,
//! apply in order"), so the *command stream* — triggers, false
//! positives, first-trigger point, activation counters — is identical
//! across every tier by construction, and these tests pin that
//! exactly.  What a tier is allowed to approximate is the *physics*:
//!
//! - `exact` is the reference: the event-accurate `DramDevice`, the
//!   default, and the tier every pre-backend config keeps meaning.
//! - `fast` accumulates disturbance per refresh interval and resolves
//!   it at the interval boundary, so flip counts must match but the
//!   flip *instant* and the disturbance *peak* may drift by at most
//!   one interval's worth of activations (tolerances below).
//! - `cycle` wraps the exact device in a command-timing model: every
//!   disturbance metric is bit-identical to `exact`, plus a populated
//!   `CycleStats` on the metrics.
//!
//! `tests/determinism.rs` and `tests/fleet_determinism.rs` pin the
//! exact tier's byte-identical sharding contract; the worker-count
//! test here extends the same contract to the fast and cycle tiers.

use proptest::prelude::*;
use tivapromi_suite::dram::{Geometry, RowAddr, DISTURB_SCALE};
use tivapromi_suite::harness::experiments::reliability::Unprotected;
use tivapromi_suite::harness::{
    engine, scenario, BackendSpec, ExperimentScale, NullObserver, Parallelism, RunConfig,
    RunMetrics, Runner,
};
use tivapromi_suite::hwmodel::Technique;

const BANKS: u32 = 8;

/// The fast tier defers disturbance to the interval boundary, so a
/// counter's observed peak may miss (or double-count around) restores
/// issued inside one interval: at most one interval's activation
/// budget (165) hitting one neighbor at full coupling (±1 scale plus
/// distance-2), in sixteenths.  Measured drift on the flooding probe
/// is ±135; this bound leaves that an order of magnitude of headroom
/// without accepting cross-interval divergence.
const MAX_DISTURBANCE_TOLERANCE: u32 = 165 * 2 * DISTURB_SCALE;

/// A flip the exact tier lands mid-interval surfaces at the fast
/// tier's interval boundary: the first-flip instant may differ by at
/// most one interval of global activations (165 per bank).
const TIME_TO_FIRST_FLIP_TOLERANCE: u64 = 165 * BANKS as u64;

/// The determinism suite's small multi-bank shape: 8 banks on the
/// 1/64 geometry, two refresh windows.
fn config() -> RunConfig {
    let mut config = RunConfig::paper(&ExperimentScale {
        windows: 2,
        banks: BANKS,
        seeds: 1,
    });
    config.geometry = Geometry::scaled_down(64).with_banks(BANKS);
    config
}

/// `config()` with the red-team weak-cell threshold, so the flooding
/// attack actually flips bits and the flip physics are exercised.
fn weak_config() -> RunConfig {
    let mut config = config();
    config.flip_threshold = 4096;
    config
}

fn run_tier(config: &RunConfig, technique: Technique, tier: BackendSpec, seed: u64) -> RunMetrics {
    let mut tiered = config.clone();
    tiered.backend = tier;
    Runner::new(tiered.clone())
        .technique(technique)
        .seed(seed)
        .run(scenario::paper_mix(&tiered, seed))
}

/// Strict equality on every field the mitigation decision stream
/// determines; tolerance only on the physics the fast tier declares
/// approximate.
fn assert_fast_within_tolerances(exact: &RunMetrics, fast: &RunMetrics, label: &str) {
    assert_eq!(exact.technique, fast.technique, "{label}: technique");
    assert_eq!(
        exact.workload_activations, fast.workload_activations,
        "{label}: workload activations"
    );
    assert_eq!(
        exact.aggressor_activations, fast.aggressor_activations,
        "{label}: aggressor activations"
    );
    assert_eq!(
        exact.mitigation_activations, fast.mitigation_activations,
        "{label}: mitigation activations"
    );
    assert_eq!(
        exact.trigger_events, fast.trigger_events,
        "{label}: triggers"
    );
    assert_eq!(
        exact.false_positive_events, fast.false_positive_events,
        "{label}: false positives"
    );
    assert_eq!(
        exact.first_trigger_act, fast.first_trigger_act,
        "{label}: first trigger"
    );
    assert_eq!(exact.intervals, fast.intervals, "{label}: intervals");
    assert_eq!(exact.flips, fast.flips, "{label}: flip count");
    assert_eq!(fast.cycle, None, "{label}: fast tier has no cycle model");
    let drift = exact.max_disturbance.abs_diff(fast.max_disturbance);
    assert!(
        drift <= MAX_DISTURBANCE_TOLERANCE,
        "{label}: max disturbance drift {drift} (exact {} vs fast {})",
        exact.max_disturbance,
        fast.max_disturbance
    );
    match (exact.time_to_first_flip, fast.time_to_first_flip) {
        (None, None) => {}
        (Some(e), Some(f)) => assert!(
            e.abs_diff(f) <= TIME_TO_FIRST_FLIP_TOLERANCE,
            "{label}: first-flip drift {} (exact {e} vs fast {f})",
            e.abs_diff(f)
        ),
        (e, f) => panic!("{label}: first-flip presence diverged (exact {e:?} vs fast {f:?})"),
    }
}

/// All nine Table III techniques: the fast tier reproduces the exact
/// command stream verbatim on the paper mix, with the declared
/// physics tolerances.
#[test]
fn fast_tier_matches_exact_for_all_techniques() {
    let base = config();
    for technique in Technique::TABLE3 {
        let exact = run_tier(&base, technique, BackendSpec::Exact, 11);
        let fast = run_tier(&base, technique, BackendSpec::Fast, 11);
        assert_fast_within_tolerances(&exact, &fast, technique.name());
    }
}

/// Flip physics under flooding at the weak-cell threshold: both tiers
/// flip the same bits, within the declared drift on when.
#[test]
fn fast_tier_flip_physics_within_tolerance_under_flooding() {
    let base = weak_config();
    let mut fast_config = base.clone();
    fast_config.backend = BackendSpec::Fast;

    // Unprotected: pure accumulation, no restores in flight.
    let exact = engine::run_observed(
        scenario::flooding(&base, RowAddr(500)),
        &mut Unprotected,
        &base,
        &mut NullObserver,
    );
    let fast = engine::run_observed(
        scenario::flooding(&fast_config, RowAddr(500)),
        &mut Unprotected,
        &fast_config,
        &mut NullObserver,
    );
    assert!(exact.flips > 0, "flooding must break the weak threshold");
    assert_fast_within_tolerances(&exact, &fast, "unprotected flooding");

    // Mitigated: restores land mid-interval on exact, boundary on fast.
    for technique in [Technique::Para, Technique::MrLoc, Technique::LoLiPromi] {
        let exact = Runner::new(base.clone())
            .technique(technique)
            .seed(2)
            .run_source(scenario::flooding(&base, RowAddr(500)))
            .expect("flooding runs sequentially");
        let fast = Runner::new(fast_config.clone())
            .technique(technique)
            .seed(2)
            .run_source(scenario::flooding(&fast_config, RowAddr(500)))
            .expect("flooding runs sequentially");
        assert_fast_within_tolerances(&exact, &fast, technique.name());
    }
}

/// The cycle tier is the exact device plus a timing model: every
/// metric is bit-identical, and the cycle accounting is populated and
/// internally consistent.
#[test]
fn cycle_tier_matches_exact_bit_for_bit_modulo_cycle_stats() {
    let base = config();
    for technique in Technique::TABLE3 {
        let exact = run_tier(&base, technique, BackendSpec::Exact, 11);
        let cycled = run_tier(&base, technique, BackendSpec::Cycle, 11);
        let cycle = cycled
            .cycle
            .unwrap_or_else(|| panic!("{technique}: cycle tier must report CycleStats"));
        let mut stripped = cycled.clone();
        stripped.cycle = None;
        assert_eq!(stripped, exact, "{technique}: disturbance metrics");
        assert!(cycle.workload_cycles > 0, "{technique}: workload cycles");
        assert!(cycle.refresh_cycles > 0, "{technique}: refresh cycles");
        assert_eq!(
            cycle.row_buffer_hits + cycle.row_buffer_misses,
            exact.workload_activations,
            "{technique}: every trace activation is a hit or a miss"
        );
        assert_eq!(
            cycle.total_cycles(),
            cycle.workload_cycles + cycle.mitigation_cycles + cycle.refresh_cycles,
            "{technique}: cycle accounting"
        );
    }
}

/// The acceptance headline: mitigation bandwidth is visible for the
/// actively-refreshing techniques.  TWiCe's paper trigger threshold
/// (34 750 activations) is unreachable on the 1/64 geometry, so this
/// runs the full quick-scale paper mix.
#[test]
fn cycle_tier_reports_bandwidth_overhead_for_para_and_twice() {
    let mut cycled = RunConfig::paper(&ExperimentScale::quick());
    cycled.backend = BackendSpec::Cycle;
    for technique in [Technique::Para, Technique::TwiCe] {
        let metrics = Runner::new(cycled.clone())
            .technique(technique)
            .seed(2)
            .run(scenario::paper_mix(&cycled, 2));
        assert!(
            metrics.bandwidth_overhead_percent() > 0.0,
            "{technique}: expected nonzero bandwidth overhead, got {:?}",
            metrics.cycle
        );
        assert!(metrics.mitigation_cycles() > 0, "{technique}");
        let hit_rate = metrics.row_buffer_hit_rate();
        assert!((0.0..=1.0).contains(&hit_rate), "{technique}: {hit_rate}");
    }
}

/// The determinism contract holds per tier: sequential, two-worker and
/// auto-parallel runs are byte-identical for fast and cycle too.
#[test]
fn fast_and_cycle_tiers_are_deterministic_across_worker_counts() {
    let base = config();
    for tier in [BackendSpec::Fast, BackendSpec::Cycle] {
        for technique in [Technique::Para, Technique::LoLiPromi] {
            let mut tiered = base.clone();
            tiered.backend = tier;
            let runner = |parallelism: Parallelism| {
                Runner::new(tiered.clone())
                    .technique(technique)
                    .seed(5)
                    .parallelism(parallelism)
                    .run(scenario::paper_mix(&tiered, 5))
            };
            let sequential = runner(Parallelism::sequential());
            let two = runner(Parallelism::with_workers(2));
            let auto = runner(Parallelism::default());
            assert_eq!(sequential, two, "{tier} {technique}: 2 workers");
            assert_eq!(sequential, auto, "{tier} {technique}: auto workers");
        }
    }
}

/// A profiling sweep over `span` rows of bank 0 (the exploit
/// subsystem's phase-1 attack), on the weak-tailed 8-bank device.
fn sweep_metrics(parallelism: Parallelism, tier: BackendSpec, span: u32) -> RunMetrics {
    use tivapromi_suite::dram::WeakCellSpec;
    use tivapromi_suite::trace::{AttackConfig, AttackKind, Attacker};
    let mut config = config();
    config.backend = tier;
    config.weak_cells = WeakCellSpec::Sampled {
        seed: 9,
        strong: 16_384,
        weak_lo: 256,
        weak_hi: 512,
        weak_per_mille: 250,
    };
    config.flip_threshold = 16_384;
    let dwell = 5u64;
    let intervals = u64::from(span) * dwell;
    config.windows = intervals.div_ceil(u64::from(config.geometry.intervals_per_window()));
    Runner::new(config.clone())
        .parallelism(parallelism)
        .technique(Technique::Para)
        .seed(3)
        .run(Attacker::new(AttackConfig {
            kind: AttackKind::ProfilingSweep {
                base_row: RowAddr(200),
                span_rows: span,
                dwell_intervals: dwell,
            },
            target_banks: vec![tivapromi_suite::dram::BankId(0)],
            acts_per_interval: 128,
            start_interval: 0,
            intervals,
            ramp_hold_intervals: 0,
        }))
}

/// The exploit profiler's learned map is a pure function of the seed:
/// byte-identical JSON whether the sweep ran sequentially, on two
/// workers or auto-parallel.
#[test]
fn profiler_learned_map_is_byte_identical_across_worker_counts() {
    use tivapromi_suite::dram::BankId;
    use tivapromi_suite::exploit::LearnedMap;
    let learned = |parallelism: Parallelism| {
        let metrics = sweep_metrics(parallelism, BackendSpec::Exact, 16);
        LearnedMap::from_flip_log(BankId(0), &metrics.flip_log).to_json()
    };
    let sequential = learned(Parallelism::sequential());
    assert!(
        sequential.contains("\"row\""),
        "the sweep must learn at least one weak row"
    );
    assert_eq!(sequential, learned(Parallelism::with_workers(2)));
    assert_eq!(sequential, learned(Parallelism::default()));
}

/// The fast tier learns the same weak-cell map as the exact tier: the
/// same rows flip, in the same interval, with the flip instant allowed
/// to drift only to that interval's boundary.
#[test]
fn profiler_learned_map_fast_vs_exact_within_tolerances() {
    use tivapromi_suite::dram::BankId;
    use tivapromi_suite::exploit::LearnedMap;
    let exact_run = sweep_metrics(Parallelism::sequential(), BackendSpec::Exact, 16);
    let fast_run = sweep_metrics(Parallelism::sequential(), BackendSpec::Fast, 16);
    assert_fast_within_tolerances(&exact_run, &fast_run, "profiling sweep");
    let exact = LearnedMap::from_flip_log(BankId(0), &exact_run.flip_log);
    let fast = LearnedMap::from_flip_log(BankId(0), &fast_run.flip_log);
    assert!(!exact.is_empty(), "the sweep must learn at least one row");
    let rows = |map: &LearnedMap| map.rows.iter().map(|r| r.row).collect::<Vec<_>>();
    assert_eq!(rows(&exact), rows(&fast), "learned row sets");
    for (e, f) in exact.rows.iter().zip(&fast.rows) {
        assert!(
            e.interval.abs_diff(f.interval) <= 1,
            "row {}: flip interval drifted (exact {} vs fast {})",
            e.row.0,
            e.interval,
            f.interval
        );
        assert!(
            e.bank_act.abs_diff(f.bank_act) <= TIME_TO_FIRST_FLIP_TOLERANCE,
            "row {}: flip instant drifted {} (exact {} vs fast {})",
            e.row.0,
            e.bank_act.abs_diff(f.bank_act),
            e.bank_act,
            f.bank_act
        );
    }
}

/// The exact tier is the default, and naming it changes nothing.
#[test]
fn exact_tier_is_the_default() {
    let base = config();
    assert_eq!(base.backend, BackendSpec::Exact);
    let implicit = Runner::new(base.clone())
        .technique(Technique::Para)
        .seed(7)
        .run(scenario::paper_mix(&base, 7));
    let explicit = run_tier(&base, Technique::Para, BackendSpec::Exact, 7);
    assert_eq!(implicit, explicit);
}

proptest! {
    /// `BackendSpec` round-trips through Display/FromStr and through
    /// its JSON encoding, for every tier.
    #[test]
    fn backend_spec_display_fromstr_serde_round_trip(index in 0usize..BackendSpec::ALL.len()) {
        let spec = BackendSpec::ALL[index];
        let parsed: BackendSpec = spec.to_string().parse().expect("Display output parses");
        prop_assert_eq!(parsed, spec);
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: BackendSpec = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back, spec);
    }

    /// Unknown tier names fail cleanly (an `Err`, never a panic) and
    /// the error names the candidates.
    #[test]
    fn backend_spec_rejects_unknown_names(
        letters in proptest::collection::vec(0u8..26, 1..12),
    ) {
        let name: String = letters.into_iter().map(|b| (b'a' + b) as char).collect();
        match name.parse::<BackendSpec>() {
            Ok(spec) => prop_assert_eq!(spec.name(), name),
            Err(e) => prop_assert!(e.contains("exact")),
        }
    }
}
