//! The allocation-free steady-state contract.
//!
//! The lane-kernel architecture promises that once a mitigation's
//! working set is warm, driving batches through `on_batch`, draining
//! the [`ActionSink`] arena, and turning refresh intervals over — the
//! engine's entire decision side — performs **zero** heap allocations.
//! Every per-batch buffer is a reusable arena (`ActionSink::reset`),
//! every table reset happens in place (Graphene summaries, CAT trees,
//! CaPRoMi's drain scratch), and the per-bank RNG block refills reuse
//! one scratch lane.
//!
//! This test pins the contract with a counting global allocator: after
//! two full refresh windows of warm-up (covering every window-wrap
//! reset path), one further window must not touch the heap, for all
//! nine Table III techniques.
//!
//! The test drives the mitigation layer directly rather than through
//! the engine so the assertion isolates the decision side — the arena,
//! the kernels, the interval turnover — from backend bookkeeping
//! (flip logs grow with device state, which is workload physics, not
//! kernel overhead).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dram_sim::{BankId, Geometry, RowAddr};
use tivapromi_suite::harness::{techniques, ExperimentScale, RunConfig};
use tivapromi_suite::hwmodel::Technique;
use tivapromi_suite::tivapromi::{ActionSink, Mitigation};
use tivapromi_suite::trace::{EventBatch, TraceEvent};

/// Counts every allocation and reallocation made by the measuring
/// thread; frees are not counted — the contract is "no heap traffic",
/// and a free implies a matching earlier allocation anyway.
///
/// Counting is gated on a thread-local flag armed only around the
/// measured window: the libtest harness runs helper threads in the
/// same process, and an unrelated allocation from one of them landing
/// inside the window must not fail the kernel contract.  The flag is
/// `const`-initialized so reading it never allocates, and `try_with`
/// falls back to not counting during TLS teardown.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count_this_thread() {
    if COUNTING.try_with(|flag| flag.get()).unwrap_or(false) {
        // lint: allow(D4) — monotone count read by the same thread that
        // bumps it; Relaxed suffices.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

// lint: allow(D4) — GlobalAlloc is an unsafe trait; the impl forwards
// every call to System verbatim and only bumps a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    // lint: allow(D4) — unsafe-trait method; Relaxed suffices for a monotone count.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_this_thread();
        // lint: allow(D4) — verbatim System forwarding per the trait contract.
        unsafe { System.alloc(layout) }
    }

    // lint: allow(D4) — unsafe-trait method; Relaxed suffices for a monotone count.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_this_thread();
        // lint: allow(D4) — verbatim System forwarding per the trait contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // lint: allow(D4) — unsafe-trait method; Relaxed suffices for a monotone count.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_this_thread();
        // lint: allow(D4) — verbatim System forwarding per the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // lint: allow(D4) — unsafe-trait method forwarding to System verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const BANKS: u32 = 4;

fn config() -> RunConfig {
    let mut config = RunConfig::paper(&ExperimentScale {
        windows: 3,
        banks: BANKS,
        seeds: 1,
    });
    config.geometry = Geometry::scaled_down(64).with_banks(BANKS);
    config
}

/// One interval's traffic: heavy hammering of a few rows per bank (so
/// counter tables, histories and trigger paths are exercised) plus a
/// benign spread, identical every interval so the warm-up's high-water
/// marks cover the measured window.
fn interval_events() -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for i in 0..160u32 {
        let bank = BankId(i % BANKS);
        let row = if i % 2 == 0 {
            // Hammered set: three aggressors per bank.
            RowAddr(500 + i % 3)
        } else {
            // Benign spread across the bank.
            RowAddr((i * 37) % 1024)
        };
        events.push(TraceEvent::benign(bank, row));
    }
    events
}

/// Zero heap allocations per steady-state batch, for all nine
/// techniques: warm up two full windows (hitting every window-wrap
/// reset), then measure one more.
#[test]
fn steady_state_batches_never_allocate() {
    let config = config();
    let intervals_per_window = config.geometry.intervals_per_window() as u64;
    let events = interval_events();
    let mut batch = EventBatch::new();
    batch.push_interval(&events);
    let range = batch.segment(0);

    let mut total_triggers = 0u64;
    for technique in Technique::TABLE3 {
        let mut mitigation = techniques::build_any(technique, &config, 17);
        let mut sink = ActionSink::with_capacity(1024);
        let mut actions = Vec::with_capacity(1024);
        let mut triggers = 0u64;

        let mut drive_interval = |mitigation: &mut tivapromi_suite::baselines::AnyMitigation,
                                  sink: &mut ActionSink,
                                  triggers: &mut u64| {
            sink.reset();
            Mitigation::on_batch(mitigation, &batch, range.clone(), sink);
            for tag in 0..u32::try_from(events.len()).expect("event count fits u32") {
                while sink.next_for(tag).is_some() {
                    *triggers += 1;
                }
            }
            mitigation.on_refresh_interval(&mut actions);
            *triggers += actions.len() as u64;
            actions.clear();
        };

        // Warm-up: two full windows, including both window-wrap resets.
        for _ in 0..(2 * intervals_per_window) {
            drive_interval(&mut mitigation, &mut sink, &mut triggers);
        }

        // Measurement: one further window — including its wrap — must
        // be allocation-free.  Counting is armed only on this thread
        // and only for the window, so concurrent harness threads
        // cannot pollute the reading.
        COUNTING.with(|flag| flag.set(true));
        // lint: allow(D4) — single-threaded test; Relaxed reads of a monotone counter.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..intervals_per_window {
            drive_interval(&mut mitigation, &mut sink, &mut triggers);
        }
        // lint: allow(D4) — single-threaded test; Relaxed reads of a monotone counter.
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        COUNTING.with(|flag| flag.set(false));
        assert_eq!(
            after - before,
            0,
            "{technique:?} allocated {} times in a steady-state window",
            after - before
        );
        total_triggers += triggers;
    }
    // The contract must be proven on exercised trigger paths, not on
    // techniques idling through empty decision loops.
    assert!(total_triggers > 0, "no trigger path was exercised");
}
