//! API-guideline conformance checks across the workspace: thread-safety
//! markers, `Default` agreements, and `Display` behaviour that the other
//! tests rely on implicitly.

use tivapromi_suite::dram;
use tivapromi_suite::harness;
use tivapromi_suite::hwmodel;
use tivapromi_suite::tivapromi as tiva;
use tivapromi_suite::trace;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_sync() {
    assert_send_sync::<dram::Geometry>();
    assert_send_sync::<dram::DramTiming>();
    assert_send_sync::<dram::RefreshOrder>();
    assert_send_sync::<dram::DisturbState>();
    assert_send_sync::<dram::controller::LatencyStats>();
    assert_send_sync::<trace::TraceEvent>();
    assert_send_sync::<trace::TraceStats>();
    assert_send_sync::<tiva::TivaConfig>();
    assert_send_sync::<tiva::HistoryTable>();
    assert_send_sync::<hwmodel::HwParams>();
    assert_send_sync::<hwmodel::EnergyModel>();
    assert_send_sync::<harness::RunMetrics>();
    assert_send_sync::<harness::MeanStd>();
}

#[test]
fn stateful_components_are_send() {
    // Mitigations cross thread boundaries in the parallel seed sweeps.
    assert_send::<Box<dyn tiva::Mitigation>>();
    assert_send::<tiva::TimeVarying>();
    assert_send::<tiva::CaPromi>();
    assert_send::<dram::DramDevice>();
    assert_send::<dram::controller::MemoryController>();
    assert_sync::<dram::Geometry>();
}

#[test]
fn defaults_match_paper_constructors() {
    // C-COMMON-TRAITS: Default mirrors the documented primary
    // constructor.
    assert_eq!(dram::Geometry::default(), dram::Geometry::paper());
    assert_eq!(dram::DramTiming::default(), dram::DramTiming::ddr4());
    assert_eq!(
        dram::RefreshOrder::default(),
        dram::RefreshOrder::SequentialNeighbors
    );
    assert_eq!(hwmodel::HwParams::default(), hwmodel::HwParams::paper());
    assert_eq!(
        hwmodel::EnergyModel::default(),
        hwmodel::EnergyModel::ddr4()
    );
    assert_eq!(
        harness::ExperimentScale::default(),
        harness::ExperimentScale::paper_shape()
    );
}

#[test]
fn displays_are_never_empty() {
    // C-DEBUG-NONEMPTY analogue for our Display impls.
    let displays: Vec<String> = vec![
        dram::RowAddr(0).to_string(),
        dram::BankId(0).to_string(),
        dram::DramGeneration::Ddr4.to_string(),
        dram::RefreshOrder::SequentialNeighbors.to_string(),
        tiva::TivaVariant::CaPromi.to_string(),
        hwmodel::Technique::Para.to_string(),
        harness::MeanStd::of(&[]).to_string(),
    ];
    for d in displays {
        assert!(!d.is_empty());
    }
}

#[test]
fn errors_are_well_behaved() {
    // C-GOOD-ERR: error type implements Error + Send + Sync + 'static
    // and has a lowercase, punctuation-free message.
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<dram::ConfigError>();
    let e = dram::Geometry::new(10, 1, 4).unwrap_err();
    let msg = e.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));
}

#[test]
fn debug_representations_are_nonempty() {
    let debugs: Vec<String> = vec![
        format!("{:?}", dram::Geometry::paper()),
        format!("{:?}", tiva::TivaConfig::paper(&dram::Geometry::paper())),
        format!("{:?}", tiva::HistoryTable::new(1)),
        format!("{:?}", trace::TraceStats::default()),
        format!("{:?}", hwmodel::fig2_machine()),
    ];
    for d in debugs {
        assert!(!d.is_empty());
    }
}
