//! Equivalence of the batched event pipeline and the scalar reference
//! loop.
//!
//! The engine's batched loop ([`engine::run_observed`]) must be *bit-identical*
//! to the retained one-event-at-a-time reference ([`engine::run_scalar`])
//! for every technique and every batch size: the batch is a delivery
//! granularity, never a semantic knob.  These tests pin that contract
//! for all nine Table III techniques at batch sizes 1 (every interval
//! alone), 2 and 7 (intervals split mid-stream), 63 (odd split just
//! under a power of two), 1024 and 4096 (many intervals per batch), on
//! the paper-shaped mixed trace and on arbitrary replayed traces —
//! including adversarially interleaved traffic whose bank column
//! alternates every event, so every [`mem_trace::EventBatch::bank_runs`]
//! run degenerates to a single event (the lane kernels' worst case).

use dram_sim::{BankId, Geometry, RowAddr};
use proptest::prelude::*;
use tivapromi_suite::harness::{engine, techniques, ExperimentScale, NullObserver, RunConfig};
use tivapromi_suite::hwmodel::Technique;
use tivapromi_suite::trace::{
    AttackConfig, AttackKind, Attacker, MixedTrace, ReplayTrace, SpecLikeWorkload, TraceEvent,
    WorkloadConfig,
};

const BANKS: u32 = 4;
const BATCH_SIZES: [usize; 6] = [1, 2, 7, 63, 1024, 4096];

/// A small multi-bank configuration on the sequential path (batching is
/// orthogonal to sharding; determinism.rs covers the product).
fn config() -> RunConfig {
    let mut config = RunConfig::paper(&ExperimentScale {
        windows: 2,
        banks: BANKS,
        seeds: 1,
    });
    config.geometry = Geometry::scaled_down(64).with_banks(BANKS);
    config.parallelism = tivapromi_suite::harness::Parallelism::sequential();
    config
}

/// The paper-shaped mixed trace scaled to the small geometry.
fn mix(config: &RunConfig, seed: u64) -> MixedTrace {
    let intervals = config.intervals();
    let workload = SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(intervals),
        seed,
    );
    let mut attack = AttackConfig::paper_ramp(
        config.geometry.banks(),
        intervals,
        u64::from(config.geometry.intervals_per_window()),
    );
    attack.kind = AttackKind::MultiAggressorRamp {
        base_row: RowAddr(500),
        max_aggressors: 20,
    };
    let attacker = Attacker::new(attack);
    MixedTrace::new(
        vec![Box::new(workload), Box::new(attacker)],
        config.timing.max_activations_per_interval(),
    )
}

/// Batched == scalar for all nine techniques on the paper mix, at every
/// batch size.
#[test]
fn batched_run_matches_scalar_reference_for_all_techniques() {
    for technique in Technique::TABLE3 {
        let base = config();
        let mut scalar_mitigation = techniques::build_any(technique, &base, 11);
        let scalar = engine::run_scalar(mix(&base, 11), &mut scalar_mitigation, &base);
        assert!(scalar.workload_activations > 0);
        for batch_events in BATCH_SIZES {
            let batched_config = base.clone().with_batch_events(batch_events);
            let mut mitigation = techniques::build_any(technique, &batched_config, 11);
            let batched = engine::run_observed(
                mix(&batched_config, 11),
                &mut mitigation,
                &batched_config,
                &mut NullObserver,
            );
            assert_eq!(
                scalar, batched,
                "{technique:?} diverged at batch_events={batch_events}"
            );
        }
    }
}

/// The boxed dynamic path and the enum path batch identically.
#[test]
fn boxed_and_enum_mitigations_agree_through_the_batched_loop() {
    let base = config();
    for technique in [Technique::LoLiPromi, Technique::Para, Technique::TwiCe] {
        let mut boxed = techniques::build(technique, &base, 5);
        let via_box = engine::run_observed(mix(&base, 5), boxed.as_mut(), &base, &mut NullObserver);
        let mut any = techniques::build_any(technique, &base, 5);
        let via_enum = engine::run_observed(mix(&base, 5), &mut any, &base, &mut NullObserver);
        assert_eq!(via_box, via_enum, "{technique:?}");
    }
}

fn trace_strategy() -> impl Strategy<Value = Vec<Vec<TraceEvent>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..BANKS, 0u32..1024, any::<bool>()), 0..40),
        1..40,
    )
    .prop_map(|intervals| {
        intervals
            .into_iter()
            .map(|interval| {
                interval
                    .into_iter()
                    .map(|(bank, row, aggressor)| TraceEvent {
                        bank: BankId(bank),
                        row: RowAddr(row),
                        aggressor,
                    })
                    .collect()
            })
            .collect()
    })
}

/// Adversarially interleaved traffic: consecutive events never share a
/// bank, so every bank run the lane kernels see is a single event —
/// maximal per-run overhead, and the strongest stream-interleaving
/// stress for the per-bank RNG block refills.
fn interleaved_strategy() -> impl Strategy<Value = Vec<Vec<TraceEvent>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..1024, any::<bool>()), 0..40),
        1..30,
    )
    .prop_map(|intervals| {
        intervals
            .into_iter()
            .map(|interval| {
                interval
                    .into_iter()
                    .enumerate()
                    .map(|(i, (row, aggressor))| TraceEvent {
                        // Cycling through all banks guarantees adjacent
                        // events differ in bank whenever BANKS > 1.
                        bank: BankId(u32::try_from(i).expect("fits") % BANKS),
                        row: RowAddr(row),
                        aggressor,
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-batch accumulation equals per-event accumulation on arbitrary
    /// traces: every metric field, every technique, every batch size.
    #[test]
    fn batched_metrics_equal_scalar_metrics(
        intervals in trace_strategy(),
        technique_index in 0usize..9,
        seed in any::<u64>(),
    ) {
        let technique = Technique::TABLE3[technique_index];
        let base = config();
        let mut scalar_mitigation = techniques::build_any(technique, &base, seed);
        let scalar = engine::run_scalar(
            ReplayTrace::new(intervals.clone()),
            &mut scalar_mitigation,
            &base,
        );
        for batch_events in BATCH_SIZES {
            let batched_config = base.clone().with_batch_events(batch_events);
            let mut mitigation = techniques::build_any(technique, &batched_config, seed);
            let batched = engine::run_observed(
                ReplayTrace::new(intervals.clone()),
                &mut mitigation,
                &batched_config,
                &mut NullObserver,
            );
            prop_assert_eq!(
                &scalar, &batched,
                "{:?} diverged at batch_events={}", technique, batch_events
            );
        }
    }

    /// Single-event bank runs (the run-length grouping's worst case)
    /// stay bit-identical to the scalar reference for every technique.
    #[test]
    fn interleaved_single_event_runs_equal_scalar_metrics(
        intervals in interleaved_strategy(),
        technique_index in 0usize..9,
        seed in any::<u64>(),
    ) {
        let technique = Technique::TABLE3[technique_index];
        let base = config();
        let mut scalar_mitigation = techniques::build_any(technique, &base, seed);
        let scalar = engine::run_scalar(
            ReplayTrace::new(intervals.clone()),
            &mut scalar_mitigation,
            &base,
        );
        for batch_events in BATCH_SIZES {
            let batched_config = base.clone().with_batch_events(batch_events);
            let mut mitigation = techniques::build_any(technique, &batched_config, seed);
            let batched = engine::run_observed(
                ReplayTrace::new(intervals.clone()),
                &mut mitigation,
                &batched_config,
                &mut NullObserver,
            );
            prop_assert_eq!(
                &scalar, &batched,
                "{:?} diverged at batch_events={}", technique, batch_events
            );
        }
    }
}
