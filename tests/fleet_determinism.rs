//! Fleet-grade determinism: the campaign layer's three headline
//! properties, pinned on a 64-device heterogeneous campaign.
//!
//! 1. **Worker-count independence** — the fleet report is byte-identical
//!    at 1, 2, and `available_parallelism` workers, device sinks
//!    included (same devices, same order, same metrics).
//! 2. **Checkpoint/kill/resume** — interrupting the campaign at *any*
//!    device frontier (including 0 and past-the-end), serializing the
//!    checkpoint to JSON, parsing it back and resuming yields the
//!    byte-identical final report.
//! 3. **Per-device replay** — every device, re-run in isolation through
//!    the plain [`Runner`] with its derived seed
//!    ([`fleet::device_seed`]), reproduces the fleet's per-device
//!    metrics exactly; the fleet adds scheduling, never arithmetic.
//!
//! The campaign is deliberately heterogeneous: three cohorts mixing
//! bank counts 1–4 (so two-level stealing really fires), three
//! techniques, two attacks, weak-cell thresholds spanning a 4× band,
//! and one single-bank CPU-model cohort exercising the unshardable
//! path.

use tivapromi_suite::fleet::{
    device_seed, CampaignSpec, CohortSpec, DeviceSpec, Fleet, WorkloadKind,
};
use tivapromi_suite::harness::{RunMetrics, Runner};
use tivapromi_suite::hwmodel::Technique;

/// The 64-device heterogeneous reference campaign.
fn campaign() -> CampaignSpec {
    CampaignSpec::new(0xF1EE7)
        .cohort(
            CohortSpec::new("broad", 32)
                .banks(1, 4)
                .flip_threshold(2048, 8192)
                .techniques(vec![
                    Technique::LoLiPromi,
                    Technique::Para,
                    Technique::TwiCe,
                ]),
        )
        .cohort(
            CohortSpec::new("weak-tail", 24)
                .banks(2, 3)
                .flip_threshold(1024, 2048)
                .attack("flooding")
                .techniques(vec![Technique::Para, Technique::LoLiPromi]),
        )
        .cohort(
            CohortSpec::new("cpu", 8)
                .workload(WorkloadKind::Cpu)
                .banks(1, 1)
                .flip_threshold(1536, 3072),
        )
}

fn run_with_devices(workers: usize) -> (String, Vec<(DeviceSpec, RunMetrics)>) {
    let mut devices = Vec::new();
    let report = Fleet::new(campaign())
        .workers(workers)
        .run_with_sink(|device, metrics| devices.push((device.clone(), metrics.clone())))
        .expect("reference campaign is valid");
    (report.to_json(), devices)
}

#[test]
fn fleet_report_is_byte_identical_at_every_worker_count() {
    let (one, devices_one) = run_with_devices(1);
    let (two, devices_two) = run_with_devices(2);
    let available = std::thread::available_parallelism().map_or(4, usize::from);
    let (many, devices_many) = run_with_devices(available);

    assert_eq!(one, two, "1-worker and 2-worker reports diverge");
    assert_eq!(one, many, "1-worker and {available}-worker reports diverge");
    assert_eq!(devices_one.len(), 64);
    assert_eq!(
        devices_one, devices_two,
        "sink streams diverge at 2 workers"
    );
    assert_eq!(
        devices_one, devices_many,
        "sink streams diverge at {available} workers"
    );
    // The sink sees the fleet in global device order at any width.
    let order: Vec<u64> = devices_one.iter().map(|(d, _)| d.index).collect();
    assert_eq!(order, (0..64).collect::<Vec<u64>>());
}

#[test]
fn checkpoint_kill_resume_is_byte_identical_at_arbitrary_cuts() {
    let (uninterrupted, _) = run_with_devices(2);
    // Cuts at the start, mid-cohort, at cohort boundaries, one short of
    // the end, and past the fleet (clamped).
    for cut in [0u64, 1, 17, 32, 55, 63, 64, 1000] {
        let checkpoint = Fleet::new(campaign())
            .workers(3)
            .run_until(cut)
            .expect("valid campaign");
        assert_eq!(checkpoint.frontier, cut.min(64));
        // The kill: everything the resumed fleet knows travels through
        // the serialized snapshot.
        let json = checkpoint.to_json();
        let restored = tivapromi_suite::fleet::Checkpoint::from_json(&json)
            .expect("checkpoint JSON round-trips");
        assert_eq!(restored, checkpoint);
        let resumed = Fleet::new(campaign())
            .workers(2)
            .resume(restored)
            .expect("same campaign")
            .to_json();
        assert_eq!(
            uninterrupted, resumed,
            "divergence after resume from cut {cut}"
        );
    }
}

#[test]
fn every_fleet_device_replays_exactly_through_the_runner() {
    let (_, devices) = run_with_devices(3);
    let spec = campaign();
    let mut multi_bank = 0;
    for (device, fleet_metrics) in &devices {
        // The device spec itself re-derives from the campaign seed.
        assert_eq!(device.seed, device_seed(spec.seed, device.index));
        assert_eq!(spec.device(device.index).as_ref(), Some(device));
        let config = device.run_config();
        let runner = Runner::new(config.clone())
            .technique(device.technique)
            .seed(device.seed);
        let replay = match device.workload {
            WorkloadKind::SpecLike => runner.run(device.spec_trace(&config)),
            WorkloadKind::Cpu => runner
                .run_source(device.cpu_trace(&config))
                .expect("single-bank CPU devices always run"),
        };
        assert_eq!(
            &replay, fleet_metrics,
            "device {} (cohort {}, {} banks) replay diverged",
            device.index, device.cohort, device.banks
        );
        if device.banks > 1 {
            multi_bank += 1;
        }
    }
    assert!(
        multi_bank >= 32,
        "campaign too homogeneous to exercise sharded replay ({multi_bank} multi-bank devices)"
    );
}
