//! Integration tests for the machine-readable exports (CSV + SVG) and
//! the facade crate.

use tivapromi_suite::harness::experiments::fig4;
use tivapromi_suite::harness::{plot, report, ExperimentScale};

fn tiny_points() -> Vec<fig4::Fig4Point> {
    let mut scale = ExperimentScale::quick();
    scale.seeds = 1;
    scale.windows = 1;
    fig4::run(&scale)
}

#[test]
fn fig4_csv_and_svg_agree_on_techniques() {
    let points = tiny_points();
    let mut csv = Vec::new();
    report::fig4_csv(&points, &mut csv).expect("csv write");
    let csv = String::from_utf8(csv).expect("utf8");
    let svg = plot::fig4_svg(&points);
    for p in &points {
        let name = p.technique.to_string();
        assert!(csv.contains(&name), "csv missing {name}");
        assert!(svg.contains(&name), "svg missing {name}");
    }
    // CSV values round-trip as numbers.
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 6);
        cols[1].parse::<f64>().expect("storage parses");
        cols[2].parse::<f64>().expect("overhead parses");
        cols[5].parse::<u64>().expect("flips parse");
    }
}

#[test]
fn facade_reexports_every_crate() {
    // One symbol per re-exported crate, proving the facade wires up.
    let _ = tivapromi_suite::dram::Geometry::paper();
    let _ = tivapromi_suite::trace::TraceEvent::benign(
        tivapromi_suite::dram::BankId(0),
        tivapromi_suite::dram::RowAddr(0),
    );
    let _ =
        tivapromi_suite::tivapromi::TivaConfig::paper(&tivapromi_suite::dram::Geometry::paper());
    let _ = tivapromi_suite::baselines::Para::paper(&tivapromi_suite::dram::Geometry::paper(), 1);
    let _ = tivapromi_suite::hwmodel::HwParams::paper();
    let _ = tivapromi_suite::harness::ExperimentScale::quick();
}

#[test]
fn config_serde_roundtrips() {
    // The configuration types serialize (experiment provenance files).
    let scale = ExperimentScale::paper_shape();
    let config = tivapromi_suite::harness::RunConfig::paper(&scale);
    let json = serde_json::to_string(&config).expect("serialize");
    let back: tivapromi_suite::harness::RunConfig =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.flip_threshold, config.flip_threshold);
    assert_eq!(back.windows, config.windows);
    assert_eq!(back.geometry, config.geometry);
}
