//! Cross-crate integration tests: the full pipeline
//! trace → mitigation → DRAM device, exercised through the public APIs
//! of every crate.

use tivapromi_suite::dram::{BankId, RowAddr};
use tivapromi_suite::harness::{
    engine, scenario, techniques, ExperimentScale, NullObserver, RunConfig,
};
use tivapromi_suite::hwmodel::Technique;
use tivapromi_suite::tivapromi::{Mitigation, MitigationAction};
use tivapromi_suite::trace::{AttackConfig, Attacker};

fn quick_config() -> RunConfig {
    RunConfig::paper(&ExperimentScale::quick())
}

/// A do-nothing mitigation for baselines.
#[derive(Debug, Default)]
struct Null;

impl Mitigation for Null {
    fn name(&self) -> &str {
        "null"
    }
    fn on_activate(&mut self, _: BankId, _: RowAddr, _: &mut Vec<MitigationAction>) {}
    fn on_refresh_interval(&mut self, _: &mut Vec<MitigationAction>) {}
    fn storage_bits_per_bank(&self) -> u64 {
        0
    }
}

#[test]
fn every_technique_survives_the_paper_mix() {
    let config = quick_config();
    for technique in Technique::TABLE3 {
        let trace = scenario::paper_mix(&config, 11);
        let mut mitigation = techniques::build(technique, &config, 11);
        let metrics = engine::run_observed(trace, mitigation.as_mut(), &config, &mut NullObserver);
        assert_eq!(metrics.flips, 0, "{technique} let the attack through");
        assert!(metrics.workload_activations > 100_000, "{technique}");
        assert!(metrics.intervals == config.intervals(), "{technique}");
    }
}

#[test]
fn the_attack_is_real_without_mitigation() {
    let config = quick_config();
    let metrics = engine::run_observed(
        scenario::paper_mix(&config, 11),
        &mut Null,
        &config,
        &mut NullObserver,
    );
    assert!(metrics.flips > 0);
    assert!(metrics.max_disturbance >= config.flip_threshold);
}

#[test]
fn cat_extension_also_mitigates() {
    let config = quick_config();
    let trace = scenario::paper_mix(&config, 5);
    let mut cat = techniques::build(Technique::Cat, &config, 5);
    let metrics = engine::run_observed(trace, cat.as_mut(), &config, &mut NullObserver);
    assert_eq!(metrics.flips, 0);
    assert!(metrics.trigger_events > 0, "CAT must detect the aggressors");
}

#[test]
fn overhead_ordering_matches_figure_4_classes() {
    // probabilistic (PARA) > TiVaPRoMi (LoLiPRoMi) > tabled counters
    // (TWiCe), on identical traces.
    let config = quick_config();
    let overhead = |technique| {
        let trace = scenario::paper_mix(&config, 3);
        let mut m = techniques::build(technique, &config, 3);
        engine::run_observed(trace, m.as_mut(), &config, &mut NullObserver).overhead_percent()
    };
    let para = overhead(Technique::Para);
    let loli = overhead(Technique::LoLiPromi);
    let twice = overhead(Technique::TwiCe);
    assert!(para > loli, "PARA {para} vs LoLiPRoMi {loli}");
    assert!(loli > twice, "LoLiPRoMi {loli} vs TWiCe {twice}");
}

#[test]
fn remapped_rows_divert_disturbance_and_mitigation_still_holds() {
    // Remap an aggressor's victim: the physical damage lands elsewhere,
    // the mitigation still prevents flips.
    let config = quick_config().with_remapping(vec![(RowAddr(30_001), RowAddr(50_000))]);
    let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
    let mut mitigation = techniques::build(Technique::LoPromi, &config, 9);
    let metrics = engine::run_observed(attack, mitigation.as_mut(), &config, &mut NullObserver);
    assert_eq!(metrics.flips, 0);
}

#[test]
fn identical_seeds_reproduce_identical_metrics() {
    let config = quick_config();
    let run = || {
        let trace = scenario::paper_mix(&config, 21);
        let mut m = techniques::build(Technique::CaPromi, &config, 21);
        engine::run_observed(trace, m.as_mut(), &config, &mut NullObserver)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn fpr_is_bounded_by_trigger_events() {
    let config = quick_config();
    for technique in [Technique::Para, Technique::LiPromi, Technique::CaPromi] {
        let trace = scenario::paper_mix(&config, 2);
        let mut m = techniques::build(technique, &config, 2);
        let metrics = engine::run_observed(trace, m.as_mut(), &config, &mut NullObserver);
        assert!(
            metrics.false_positive_events <= metrics.trigger_events,
            "{technique}"
        );
        assert!(
            metrics.fpr_percent() <= metrics.overhead_percent(),
            "{technique}"
        );
    }
}
