//! Shows what mitigation traffic costs in *time*: the mixed trace
//! replayed through the cycle-level memory controller, with and without
//! LoLiPRoMi attached to the Fig. 1 mitigation buffer.
//!
//! Run with `cargo run --release --example controller_latency`.

use tivapromi_suite::dram::controller::MitigationPriority;
use tivapromi_suite::harness::experiments::latency;
use tivapromi_suite::harness::{techniques, ExperimentScale, RunConfig};
use tivapromi_suite::hwmodel::Technique;

fn main() {
    let scale = ExperimentScale::quick();
    let config = RunConfig::paper(&scale);
    let intervals = 2048; // a quarter refresh window, cycle-accurate

    let baseline = latency::simulate(&config, None, MitigationPriority::Background, intervals, 1);
    println!(
        "unprotected : mean demand latency {:.2} cycles over {} requests",
        baseline.mean_latency(),
        baseline.completed
    );

    for (technique, priority) in [
        (Technique::LoLiPromi, MitigationPriority::Background),
        (Technique::LoLiPromi, MitigationPriority::Urgent),
        (Technique::ProHit, MitigationPriority::Background),
    ] {
        let mut mitigation = techniques::build(technique, &config, 1);
        let stats = latency::simulate(&config, Some(mitigation.as_mut()), priority, intervals, 1);
        let slowdown = 100.0 * (stats.mean_latency() / baseline.mean_latency() - 1.0);
        println!(
            "{:10} ({:?}): mean {:.2} cycles ({:+.3}%), {} mitigation acts, {} stall cycles",
            technique.name(),
            priority,
            stats.mean_latency(),
            slowdown,
            stats.mitigation_activations,
            stats.mitigation_stall_cycles
        );
    }
    println!();
    println!("Each extra activation occupies a bank for tRC (54 cycles at 1.2 GHz);");
    println!("at TiVaPRoMi's sub-0.05% activation overhead the demand-latency cost");
    println!("is negligible — the paper's overhead metric is the right currency.");
}
