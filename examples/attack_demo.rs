//! Demonstrates that the simulated row-hammer attack is real: the same
//! trace flips bits on an unprotected device and is stopped by every
//! mitigation.
//!
//! Run with `cargo run --release --example attack_demo`.

use tivapromi_suite::harness::experiments::reliability::{self, Unprotected};
use tivapromi_suite::harness::{
    engine, scenario, techniques, ExperimentScale, NullObserver, RunConfig,
};
use tivapromi_suite::hwmodel::Technique;

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.windows = 4;
    let config = RunConfig::paper(&scale);

    // Unprotected: the ramping multi-aggressor attack flips bits.
    let metrics = engine::run_observed(
        scenario::paper_mix(&config, 1),
        &mut Unprotected,
        &config,
        &mut NullObserver,
    );
    println!(
        "unprotected : {} bit flips, worst disturbance {:.0}% of threshold",
        metrics.flips,
        100.0 * metrics.attack_margin()
    );
    assert!(metrics.flips > 0);

    // Under each technique: zero flips.
    for technique in Technique::TABLE3 {
        let mut mitigation = techniques::build(technique, &config, 1);
        let metrics = engine::run_observed(
            scenario::paper_mix(&config, 1),
            mitigation.as_mut(),
            &config,
            &mut NullObserver,
        );
        println!(
            "{:10}: {} bit flips, overhead {:.4}%, margin {:.0}%",
            metrics.technique,
            metrics.flips,
            metrics.overhead_percent(),
            100.0 * metrics.attack_margin()
        );
        assert_eq!(metrics.flips, 0, "{technique} must stop the attack");
    }

    // The same check via the packaged experiment.
    let results = reliability::run(&scale);
    println!("\n{}", reliability::render(&results));
}
