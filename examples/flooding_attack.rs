//! The §IV flooding stress test: one row hammered at the DDR4 maximum
//! rate, starting right after its victims were refreshed (the worst
//! phase for a time-varying probability).  Prints how long each
//! TiVaPRoMi variant lets the flood run before the first extra
//! activation.
//!
//! Run with `cargo run --release --example flooding_attack`.

use tivapromi_suite::harness::experiments::flooding;
use tivapromi_suite::harness::ExperimentScale;
use tivapromi_suite::hwmodel::reference::FLOODING_SAFETY_BOUND;

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.seeds = 8;
    let results = flooding::run(&scale);
    println!("{}", flooding::render(&results));
    println!(
        "safety bound: {} activations (half the 139 K flip threshold, for\n\
         the case where both neighbors of a victim are aggressors)",
        FLOODING_SAFETY_BOUND
    );
    println!();
    println!("Expected ordering (paper §IV): LoPRoMi ≈ LoLiPRoMi ≤ CaPRoMi ≪ LiPRoMi,");
    println!("all below the bound — the logarithmic weight shape closes the window");
    println!("that LiPRoMi's slow linear ramp leaves open.");
}
