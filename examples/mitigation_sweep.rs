//! The Fig. 4 trade-off on your terminal: storage vs. activation
//! overhead for all nine techniques, with an ASCII log-log scatter.
//!
//! Run with `cargo run --release --example mitigation_sweep [quick|paper|full]`.

use tivapromi_suite::harness::experiments::fig4;
use tivapromi_suite::harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::quick);
    eprintln!(
        "sweeping 9 techniques at {} windows × {} banks × {} seeds…",
        scale.windows, scale.banks, scale.seeds
    );
    let points = fig4::run(&scale);
    println!("{}", fig4::render(&points));

    // ASCII scatter: x = log10(bytes+1) over 0..6, y = log10(overhead)
    // over -4..0 (top = high overhead).
    const W: usize = 64;
    const H: usize = 16;
    let mut grid = vec![vec![' '; W]; H];
    let mut legend = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let letter = (b'A' + i as u8) as char;
        let x = ((p.storage_bytes + 1.0).log10() / 6.0 * (W - 1) as f64).clamp(0.0, (W - 1) as f64)
            as usize;
        let y_norm = ((p.overhead.mean.max(1e-4)).log10() + 4.0) / 4.0;
        let y = ((1.0 - y_norm) * (H - 1) as f64).clamp(0.0, (H - 1) as f64) as usize;
        grid[y][x] = letter;
        legend.push(format!("{letter} = {}", p.technique));
    }
    println!("activation overhead (log) ↑, table size per bank (log) →");
    for row in &grid {
        println!("|{}", row.iter().collect::<String>());
    }
    println!("+{}", "-".repeat(W));
    println!("{}", legend.join("   "));
    println!();
    for (desc, ok) in fig4::shape_checks(&points) {
        println!("[{}] {desc}", if ok { "ok" } else { "MISS" });
    }
}
