//! Quickstart: protect a DRAM bank against a row-hammer attack with
//! TiVaPRoMi — first by driving the substrate directly, then through
//! the [`Runner`] builder with a time-series observer attached.
//!
//! Run with `cargo run --release --example quickstart`.

use tivapromi_suite::dram::{BankId, Command, DramDevice, Geometry, RowAddr};
use tivapromi_suite::harness::{scenario, ExperimentScale, RunConfig};
use tivapromi_suite::tivapromi::{Mitigation, TimeVarying, TivaConfig};
use tivapromi_suite::{Runner, TimeSeriesRecorder};

fn main() {
    // The paper's DDR4 geometry: 65 536 rows per bank, 8192 refresh
    // intervals per 64 ms window.
    let geometry = Geometry::paper().with_banks(1);
    let mut dram = DramDevice::new(geometry);

    // LoLiPRoMi: the paper's best area/overhead compromise.
    let mut mitigation = TimeVarying::lolipromi(TivaConfig::paper(&geometry), 42);

    // A double-sided row-hammer attack on victim row 5000: hammer both
    // neighbors at the DDR4 maximum rate for one full refresh window.
    let aggressors = [RowAddr(4999), RowAddr(5001)];
    let mut actions = Vec::new();
    let mut extra_activations = 0u64;
    let mut attacker_acts = 0u64;

    for interval in 0..geometry.intervals_per_window() {
        for shot in 0..165u32 {
            let row = aggressors[(shot % 2) as usize];
            dram.apply(Command::Activate {
                bank: BankId(0),
                row,
            });
            attacker_acts += 1;
            mitigation.on_activate(BankId(0), row, &mut actions);
            for action in actions.drain(..) {
                extra_activations += 1;
                dram.apply(action.to_command());
            }
        }
        dram.apply(Command::Refresh);
        mitigation.on_refresh_interval(&mut actions);
        actions.drain(..).for_each(|a| dram.apply(a.to_command()));
        let _ = interval;
    }

    println!("attacker activations : {attacker_acts}");
    println!("extra activations    : {extra_activations}");
    println!(
        "victim disturbance   : {} / {} (threshold)",
        dram.disturbance(BankId(0), RowAddr(5000)),
        139_000
    );
    println!("bit flips            : {}", dram.flips().len());
    println!(
        "history-table storage: {} B per bank",
        mitigation.storage_bytes_per_bank()
    );
    assert!(dram.flips().is_empty(), "the attack must be mitigated");
    println!("\nLoLiPRoMi stopped the attack.");

    // The same protection through the harness's one documented
    // entrypoint: the Runner builder, here with a time-series recorder
    // watching the run from inside the engine.
    let config = RunConfig::paper(&ExperimentScale::quick());
    let trace = scenario::paper_mix(&config, 42);
    let metrics = Runner::new(config)
        .seed(42) // defaults to LoLiPRoMi
        .observer(TimeSeriesRecorder::new(1024))
        .run(trace);
    let series = metrics.timeseries.as_ref().expect("recorder attached");
    println!(
        "\nRunner: {} — {} activations, overhead {:.4}%, {} trajectory points",
        metrics.technique,
        metrics.workload_activations,
        metrics.overhead_percent(),
        series.points.len()
    );
    assert_eq!(metrics.flips, 0, "mixed workload must stay safe");
}
