//! The access-level pipeline: 4 cores → L1/L2 caches → DRAM
//! activations, as in the paper's gem5 setup (Table I), with the
//! attacker core flushing its aggressor lines.
//!
//! Run with `cargo run --release --example cache_workload`.

use tivapromi_suite::harness::{engine, techniques, ExperimentScale, NullObserver, RunConfig};
use tivapromi_suite::hwmodel::Technique;
use tivapromi_suite::trace::cpu::{CpuWorkload, CpuWorkloadConfig};
use tivapromi_suite::trace::TraceStats;

fn main() {
    let scale = ExperimentScale::quick();
    let config = RunConfig::paper(&scale);

    // Inspect the activation stream the cache hierarchy produces.
    let mut workload = CpuWorkload::new(
        CpuWorkloadConfig::paper(&config.geometry, config.intervals()),
        7,
    );
    let stats = TraceStats::collect(&mut workload);
    println!("cache-filtered activation stream:");
    println!("  activations            : {}", stats.total_activations);
    println!(
        "  mean / bank-interval   : {:.1}",
        stats.mean_per_bank_interval()
    );
    println!(
        "  aggressor share        : {:.1} %",
        100.0 * stats.aggressor_share()
    );
    println!(
        "  top-32 row coverage    : {:.1} %",
        100.0 * stats.top_k_coverage(32)
    );
    println!(
        "  benign DRAM fraction   : {:.1} % of issued accesses",
        100.0 * workload.benign_dram_access_fraction()
    );
    println!();

    // Drive it through two mitigations.
    for technique in [Technique::LoLiPromi, Technique::TwiCe] {
        let trace = CpuWorkload::new(
            CpuWorkloadConfig::paper(&config.geometry, config.intervals()),
            7,
        );
        let mut mitigation = techniques::build(technique, &config, 7);
        let metrics = engine::run_observed(trace, mitigation.as_mut(), &config, &mut NullObserver);
        println!(
            "{:10}: {} flips, overhead {:.4}%, margin {:.0}%",
            metrics.technique,
            metrics.flips,
            metrics.overhead_percent(),
            100.0 * metrics.attack_margin()
        );
        assert_eq!(metrics.flips, 0);
    }
}
