//! Offline stand-in for `serde_json`, backed by the JSON value model
//! in the workspace's `serde` shim.

use std::io;

pub use serde::json::{parse, Error, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string())
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer
        .write_all(value.to_json_value().to_json_string().as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_json_value(&parse(s)?)
}

/// Deserialize a value of type `T` from a pre-parsed [`Value`].
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_json_value(v)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(u32, u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Tagged { value: u64, label: String },
        Wrapped(Newtype),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        id: Newtype,
        ratio: f64,
        kinds: Vec<Kind>,
        maybe: Option<u64>,
        pairs: Vec<(Newtype, Newtype)>,
    }

    #[test]
    fn derived_roundtrip_covers_all_shapes() {
        let record = Record {
            id: Newtype(7),
            ratio: 0.001,
            kinds: vec![
                Kind::Plain,
                Kind::Tagged {
                    value: u64::MAX,
                    label: "x\"y".into(),
                },
                Kind::Wrapped(Newtype(3)),
            ],
            maybe: None,
            pairs: vec![(Newtype(1), Newtype(2))],
        };
        let json = super::to_string(&record).unwrap();
        let back: Record = super::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn newtype_serializes_transparently() {
        assert_eq!(super::to_string(&Newtype(9)).unwrap(), "9");
        assert_eq!(super::to_string(&Pair(1, 2)).unwrap(), "[1,2]");
        assert_eq!(super::to_string(&Kind::Plain).unwrap(), "\"Plain\"");
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        let json = r#"{"id":1,"ratio":0.5,"kinds":[],"pairs":[]}"#;
        let back: Record = super::from_str(json).unwrap();
        assert_eq!(back.maybe, None);
    }

    #[test]
    fn missing_required_field_errors() {
        let json = r#"{"id":1,"kinds":[],"pairs":[]}"#;
        assert!(super::from_str::<Record>(json).is_err());
    }
}
