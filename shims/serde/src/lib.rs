//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! points `serde` at this path crate. The model is deliberately
//! simple: values serialize to an in-memory JSON [`json::Value`] tree
//! and deserialize from one. The derive macros (re-exported from the
//! sibling `serde_derive` shim) generate impls of these traits with
//! serde-compatible JSON shapes:
//!
//! - named struct        → `{"field": ...}`
//! - newtype struct      → the inner value
//! - tuple struct        → `[...]`
//! - unit enum variant   → `"Variant"`
//! - struct enum variant → `{"Variant": {"field": ...}}`
//! - newtype variant     → `{"Variant": ...}`
//!
//! Integers are kept exact (u64/i64 payloads); floats round-trip via
//! Rust's shortest-representation formatting.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialization into a JSON value tree.
pub trait Serialize {
    /// Convert `self` to a JSON value.
    fn to_json_value(&self) -> json::Value;
}

/// Deserialization from a JSON value tree.
pub trait Deserialize: Sized {
    /// Build `Self` from a JSON value.
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error>;

    /// Value to use when a struct field is absent from the input
    /// (`Some` only for `Option`, mirroring serde's behavior).
    fn if_absent() -> Option<Self> {
        None
    }
}

// --- primitive impls ------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| json::Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| json::Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    // JSON numbers are f64; narrowing to the declared field type is the
    // deserialization semantics.
    #[allow(clippy::cast_possible_truncation)]
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(json::Error::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            other => Err(json::Error::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(json::Error::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => json::Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
    fn if_absent() -> Option<Self> {
        Some(None)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(json::Error::new(format!(
                        "expected array of length {}, got {}", $len, other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}
