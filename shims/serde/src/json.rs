//! In-memory JSON value tree plus a compact writer and a recursive
//! descent parser. Shared by the `serde` trait impls and the
//! `serde_json` facade shim.

use std::fmt;

/// A parsed JSON value. Integers are kept exact rather than coerced to
/// `f64` so that `u64` seeds and counters round-trip bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (duplicate keys keep the first).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl Value {
    /// Short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::new(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => {
                i64::try_from(*n).map_err(|_| Error::new(format!("integer {n} out of i64 range")))
            }
            other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }

    pub fn as_object(&self, context: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error::new(format!(
                "{context}: expected object, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_array(&self, context: &str) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::new(format!(
                "{context}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Look up `name` in an object's pairs.
    pub fn get<'a>(pairs: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Compact JSON text for this value.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // Shortest round-trip representation; force a ".0"
                    // suffix so the value re-parses as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json writes null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII payloads; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("truncated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<u64>() {
                    if mag <= i64::MAX as u64 {
                        return Ok(Value::Int(-(mag as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

/// Deserialize one object field, honoring `Option`'s absent-field rule.
pub fn field<T: crate::Deserialize>(pairs: &[(String, Value)], name: &str) -> Result<T, Error> {
    match Value::get(pairs, name) {
        Some(v) => T::from_json_value(v).map_err(|e| Error::new(format!("field {name:?}: {e}"))),
        None => T::if_absent().ok_or_else(|| Error::new(format!("missing field {name:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in [
            "null", "true", "false", "0", "12345", "-7", "3.25", "1.0e-3",
        ] {
            let v = parse(text).unwrap();
            let back = parse(&v.to_json_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn u64_is_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(v.to_json_string(), u64::MAX.to_string());
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":"x\ny","c":null}],"d":{"e":0.5}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn float_writer_reparses_as_float() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_json_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), v);
    }
}
