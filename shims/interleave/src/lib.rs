//! A loom-style exhaustive interleaving explorer for modeled programs.
//!
//! Concurrent code under test is *modeled* as a [`Model`]: shared
//! memory plus per-thread program counters live in a cloneable
//! `State`, and each thread advances in discrete **atomic steps**
//! (one call to [`Model::step`]).  The explorer enumerates, by
//! depth-first search over scheduling choices, **every** interleaving
//! of those steps, and invokes [`Model::check`] on each terminal
//! state — so an invariant assertion inside `check` (or inside
//! `step`) holds *for all schedules*, not just the ones an OS
//! scheduler happened to produce.
//!
//! The granularity choice is the modeling contract: everything inside
//! one `step` call is atomic (invisible to other threads), and every
//! boundary between steps is a preemption point.  To model a relaxed
//! atomic `fetch_add`, perform the read-modify-write in a single step;
//! to model a *broken* non-atomic counter, split the read and the
//! write into two steps and the explorer will find the lost-update
//! schedules.
//!
//! Unlike loom, which instruments real `std::sync` types under real
//! threads, this vendored shim explores a state machine — no OS
//! threads, no condvars, fully deterministic, and exhaustive rather
//! than bounded. That trade fits the workspace's use case: proving
//! the dispatcher's claim/merge algebra over 2–3 workers and a few
//! jobs, where the full interleaving space is small enough to
//! enumerate completely.
//!
//! ```
//! use interleave::{explore, Model};
//!
//! /// Two threads each atomically increment a shared counter once.
//! struct TwoIncrements;
//!
//! #[derive(Clone)]
//! struct St {
//!     counter: u32,
//!     done: [bool; 2],
//! }
//!
//! impl Model for TwoIncrements {
//!     type State = St;
//!     fn initial(&self) -> St {
//!         St { counter: 0, done: [false, false] }
//!     }
//!     fn threads(&self) -> usize {
//!         2
//!     }
//!     fn runnable(&self, s: &St, t: usize) -> bool {
//!         !s.done[t]
//!     }
//!     fn step(&self, s: &mut St, t: usize) {
//!         s.counter += 1; // one atomic step
//!         s.done[t] = true;
//!     }
//!     fn check(&self, s: &St, schedule: &[usize]) {
//!         assert_eq!(s.counter, 2, "schedule {schedule:?}");
//!     }
//! }
//!
//! let stats = explore(&TwoIncrements);
//! assert_eq!(stats.interleavings, 2); // [0,1] and [1,0]
//! ```

/// A modeled concurrent program.
pub trait Model {
    /// Shared memory plus every thread's program counter.  Cloned at
    /// each branch point of the schedule tree.
    type State: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Number of modeled threads.
    fn threads(&self) -> usize;

    /// Whether `thread` has another step to run in `state`.  A thread
    /// that is not runnable is never scheduled; once every thread is
    /// non-runnable the state is terminal.
    fn runnable(&self, state: &Self::State, thread: usize) -> bool;

    /// Advances `thread` by one atomic step.  Only called when
    /// [`Model::runnable`] returns true.
    fn step(&self, state: &mut Self::State, thread: usize);

    /// Invoked on every terminal state with the schedule (sequence of
    /// thread ids) that produced it.  Panic to fail the exploration.
    fn check(&self, state: &Self::State, schedule: &[usize]);
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of maximal schedules (terminal states) checked.
    pub interleavings: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
    /// Length of the longest schedule.
    pub max_depth: usize,
}

/// Explosion guard: exploration panics after this many interleavings.
/// Models are meant to be small (2–3 threads, a handful of steps);
/// hitting the cap means the model, not the checker, needs shrinking.
pub const MAX_INTERLEAVINGS: u64 = 5_000_000;

/// Exhaustively explores every interleaving of `model`, returning the
/// exploration statistics.  Panics (propagating the model's own
/// assertion) if any schedule violates an invariant checked in
/// [`Model::step`] or [`Model::check`].
pub fn explore<M: Model>(model: &M) -> Stats {
    let mut stats = Stats {
        interleavings: 0,
        steps: 0,
        max_depth: 0,
    };
    let mut schedule = Vec::new();
    dfs(model, model.initial(), &mut schedule, &mut stats);
    stats
}

fn dfs<M: Model>(model: &M, state: M::State, schedule: &mut Vec<usize>, stats: &mut Stats) {
    let runnable: Vec<usize> = (0..model.threads())
        .filter(|&t| model.runnable(&state, t))
        .collect();
    if runnable.is_empty() {
        stats.interleavings += 1;
        stats.max_depth = stats.max_depth.max(schedule.len());
        assert!(
            stats.interleavings <= MAX_INTERLEAVINGS,
            "interleaving explosion: more than {MAX_INTERLEAVINGS} schedules — shrink the model"
        );
        model.check(&state, schedule);
        return;
    }
    // The last runnable thread reuses the state instead of cloning it.
    let (tail, rest) = runnable.split_last().expect("nonempty");
    for &t in rest {
        let mut next = state.clone();
        model.step(&mut next, t);
        stats.steps += 1;
        schedule.push(t);
        dfs(model, next, schedule, stats);
        schedule.pop();
    }
    let mut next = state;
    model.step(&mut next, *tail);
    stats.steps += 1;
    schedule.push(*tail);
    dfs(model, next, schedule, stats);
    schedule.pop();
}

/// Runs `check` on every distinct permutation order the explorer
/// produces and returns whether *any* terminal state satisfied
/// `predicate` — the "can this happen under some schedule?" query,
/// used to prove the checker finds seeded bugs.
pub fn any_schedule<M: Model, P: Fn(&M::State) -> bool>(model: &M, predicate: P) -> bool {
    struct Witness<'a, M, P> {
        inner: &'a M,
        predicate: P,
        found: std::cell::Cell<bool>,
    }
    #[derive(Clone)]
    struct WState<S>(S);
    impl<M: Model, P: Fn(&M::State) -> bool> Model for Witness<'_, M, P> {
        type State = WState<M::State>;
        fn initial(&self) -> Self::State {
            WState(self.inner.initial())
        }
        fn threads(&self) -> usize {
            self.inner.threads()
        }
        fn runnable(&self, state: &Self::State, thread: usize) -> bool {
            self.inner.runnable(&state.0, thread)
        }
        fn step(&self, state: &mut Self::State, thread: usize) {
            self.inner.step(&mut state.0, thread);
        }
        fn check(&self, state: &Self::State, _schedule: &[usize]) {
            if (self.predicate)(&state.0) {
                self.found.set(true);
            }
        }
    }
    let witness = Witness {
        inner: model,
        predicate,
        found: std::cell::Cell::new(false),
    };
    explore(&witness);
    witness.found.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `threads` workers each run `steps` atomic increments: the final
    /// counter is schedule-independent and the interleaving count is
    /// the multinomial coefficient.
    struct Counters {
        threads: usize,
        steps: u32,
    }

    #[derive(Clone)]
    struct CState {
        counter: u64,
        remaining: Vec<u32>,
    }

    impl Model for Counters {
        type State = CState;
        fn initial(&self) -> CState {
            CState {
                counter: 0,
                remaining: vec![self.steps; self.threads],
            }
        }
        fn threads(&self) -> usize {
            self.threads
        }
        fn runnable(&self, s: &CState, t: usize) -> bool {
            s.remaining[t] > 0
        }
        fn step(&self, s: &mut CState, t: usize) {
            s.counter += 1;
            s.remaining[t] -= 1;
        }
        fn check(&self, s: &CState, schedule: &[usize]) {
            assert_eq!(s.counter, (self.threads as u64) * u64::from(self.steps));
            assert_eq!(schedule.len(), self.threads * self.steps as usize);
        }
    }

    #[test]
    fn counts_interleavings_exactly() {
        // 2 threads × 2 steps: C(4,2) = 6 interleavings.
        let stats = explore(&Counters {
            threads: 2,
            steps: 2,
        });
        assert_eq!(stats.interleavings, 6);
        assert_eq!(stats.max_depth, 4);
        // 3 threads × 2 steps: 6!/(2!·2!·2!) = 90.
        let stats = explore(&Counters {
            threads: 3,
            steps: 2,
        });
        assert_eq!(stats.interleavings, 90);
        assert!(stats.steps > 90);
    }

    /// A classic lost update: read and write as separate steps.
    struct LostUpdate;

    #[derive(Clone, Default)]
    struct LState {
        shared: u32,
        /// Per-thread: 0 = must read, 1 = must write, 2 = done.
        pc: [u8; 2],
        read: [u32; 2],
    }

    impl Model for LostUpdate {
        type State = LState;
        fn initial(&self) -> LState {
            LState::default()
        }
        fn threads(&self) -> usize {
            2
        }
        fn runnable(&self, s: &LState, t: usize) -> bool {
            s.pc[t] < 2
        }
        fn step(&self, s: &mut LState, t: usize) {
            match s.pc[t] {
                0 => s.read[t] = s.shared,
                _ => s.shared = s.read[t] + 1,
            }
            s.pc[t] += 1;
        }
        fn check(&self, _s: &LState, _schedule: &[usize]) {}
    }

    #[test]
    fn finds_the_lost_update() {
        // Non-atomic read/increment/write CAN lose an update ...
        assert!(any_schedule(&LostUpdate, |s| s.shared == 1));
        // ... and can also complete cleanly.
        assert!(any_schedule(&LostUpdate, |s| s.shared == 2));
        // But never anything else.
        assert!(!any_schedule(&LostUpdate, |s| s.shared != 1 && s.shared != 2));
    }

    #[test]
    fn single_thread_has_one_schedule() {
        let stats = explore(&Counters {
            threads: 1,
            steps: 5,
        });
        assert_eq!(stats.interleavings, 1);
        assert_eq!(stats.steps, 5);
    }

    #[test]
    #[should_panic(expected = "schedule-dependent")]
    fn check_panics_propagate() {
        struct Bad;
        impl Model for Bad {
            type State = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn threads(&self) -> usize {
                1
            }
            fn runnable(&self, s: &u8, _t: usize) -> bool {
                *s == 0
            }
            fn step(&self, s: &mut u8, _t: usize) {
                *s = 1;
            }
            fn check(&self, _s: &u8, _schedule: &[usize]) {
                panic!("schedule-dependent failure");
            }
        }
        explore(&Bad);
    }
}
