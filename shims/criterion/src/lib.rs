//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` entry points and
//! the `Criterion`/`BenchmarkGroup`/`Bencher` measurement API used by
//! the workspace's benches. Measurement is a simple calibrated
//! wall-clock loop: warm up until the closure's cost is known, then
//! run enough iterations to fill the measurement window and report the
//! mean time per iteration (plus throughput when configured).
//!
//! When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) each benchmark body runs exactly
//! once so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes in a decimal unit (treated the same as `Bytes` here).
    BytesDecimal(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(80),
        }
    }
}

impl Criterion {
    /// Parse command-line arguments (kept for API compatibility; the
    /// only recognized flag is `--test`, detected in `default()`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Override the number of samples (accepted for compatibility; the
    /// shim's measurement window is time-based).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            None,
            self.test_mode,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            measurement_time: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; measurement is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.criterion.test_mode,
            self.criterion.warm_up_time,
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            f,
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    window: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, storing the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up/calibration: double the batch until it fills the
        // warm-up window, giving a cost estimate for sizing the run.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.warm_up || batch >= 1 << 30 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        let total = ((self.window.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);
        let start = Instant::now();
        for _ in 0..total {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_secs_f64() * 1e9 / total as f64;
        self.iters = total;
    }
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    warm_up: Duration,
    window: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        test_mode,
        warm_up,
        window,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    if test_mode {
        println!("{id}: ok (test mode)");
        return;
    }
    let time = format_ns(bencher.mean_ns);
    match throughput {
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            let rate = n as f64 * 1e9 / bencher.mean_ns;
            println!(
                "{id:<50} time: [{time}]   thrpt: [{} elem/s]",
                format_rate(rate)
            );
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if bencher.mean_ns > 0.0 => {
            let rate = n as f64 * 1e9 / bencher.mean_ns;
            println!(
                "{id:<50} time: [{time}]   thrpt: [{} B/s]",
                format_rate(rate)
            );
        }
        _ => println!("{id:<50} time: [{time}]"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Define a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
