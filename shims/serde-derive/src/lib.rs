//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace uses — named structs, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants — by parsing
//! the item's token stream directly (the real implementation uses
//! `syn`, which is unavailable offline). Generics and `#[serde(...)]`
//! attributes are not supported; attributes on items, fields, and
//! variants are skipped.
//!
//! The generated impls target the JSON-value model of the sibling
//! `serde` shim: `Serialize::to_json_value` / `Deserialize::from_json_value`.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// --- item model -----------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// --- token parsing --------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde_derive: malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // pub(crate) / pub(super) / ...
        }
    }
}

/// Advance past one type (or expression) up to a top-level `,`,
/// tracking `<`/`>` nesting so `Vec<(A, B)>`-style types survive.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1; // consume ',' (or run off the end)
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`).
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_until_top_level_comma(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// --- code generation ------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            body.push_str("let mut _fields: Vec<(String, ::serde::json::Value)> = Vec::new();\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "_fields.push((\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f})));"
                );
            }
            body.push_str("::serde::json::Value::Object(_fields)\n");
        }
        Kind::TupleStruct(1) => {
            body.push_str("::serde::Serialize::to_json_value(&self.0)\n");
        }
        Kind::TupleStruct(n) => {
            body.push_str("::serde::json::Value::Array(vec![");
            for idx in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_json_value(&self.{idx}),");
            }
            body.push_str("])\n");
        }
        Kind::UnitStruct => {
            body.push_str("::serde::json::Value::Null\n");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn} => ::serde::json::Value::Str(\"{vn}\".to_string()),"
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn}(_f0) => ::serde::json::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json_value(_f0))]),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("_f{k}")).collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vn}({}) => ::serde::json::Value::Object(vec![(\"{vn}\".to_string(), ::serde::json::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let _ = writeln!(body, "{name}::{vn} {{ {} }} => {{", fields.join(", "));
                        body.push_str(
                            "let mut _fields: Vec<(String, ::serde::json::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            let _ = writeln!(
                                body,
                                "_fields.push((\"{f}\".to_string(), ::serde::Serialize::to_json_value({f})));"
                            );
                        }
                        let _ = writeln!(
                            body,
                            "::serde::json::Value::Object(vec![(\"{vn}\".to_string(), ::serde::json::Value::Object(_fields))])"
                        );
                        body.push_str("}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let _ = writeln!(body, "let _obj = _v.as_object(\"{name}\")?;");
            let _ = writeln!(body, "Ok({name} {{");
            for f in fields {
                let _ = writeln!(body, "{f}: ::serde::json::field(_obj, \"{f}\")?,");
            }
            body.push_str("})\n");
        }
        Kind::TupleStruct(1) => {
            let _ = writeln!(
                body,
                "Ok({name}(::serde::Deserialize::from_json_value(_v)?))"
            );
        }
        Kind::TupleStruct(n) => {
            let _ = writeln!(body, "let _arr = _v.as_array(\"{name}\")?;");
            let _ = writeln!(
                body,
                "if _arr.len() != {n} {{ return Err(::serde::json::Error::new(format!(\"{name}: expected {n} elements, got {{}}\", _arr.len()))); }}"
            );
            let _ = writeln!(body, "Ok({name}(");
            for idx in 0..*n {
                let _ = writeln!(
                    body,
                    "::serde::Deserialize::from_json_value(&_arr[{idx}])?,"
                );
            }
            body.push_str("))\n");
        }
        Kind::UnitStruct => {
            let _ = writeln!(body, "let _ = _v; Ok({name})");
        }
        Kind::Enum(variants) => {
            let has_payload = variants.iter().any(|v| !matches!(v.shape, Shape::Unit));
            body.push_str("match _v {\n");
            // Unit variants arrive as bare strings.
            body.push_str("::serde::json::Value::Str(_s) => match _s.as_str() {\n");
            for v in variants.iter().filter(|v| matches!(v.shape, Shape::Unit)) {
                let _ = writeln!(body, "\"{vn}\" => Ok({name}::{vn}),", vn = v.name);
            }
            let _ = writeln!(
                body,
                "_other => Err(::serde::json::Error::new(format!(\"unknown variant {{_other:?}} for enum {name}\"))),"
            );
            body.push_str("},\n");
            if has_payload {
                body.push_str(
                    "::serde::json::Value::Object(_pairs) if _pairs.len() == 1 => {\n\
                     let (_tag, _inner) = &_pairs[0];\n\
                     match _tag.as_str() {\n",
                );
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {}
                        Shape::Tuple(1) => {
                            let _ = writeln!(
                                body,
                                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json_value(_inner)?)),"
                            );
                        }
                        Shape::Tuple(n) => {
                            let _ = writeln!(body, "\"{vn}\" => {{");
                            let _ =
                                writeln!(body, "let _arr = _inner.as_array(\"{name}::{vn}\")?;");
                            let _ = writeln!(
                                body,
                                "if _arr.len() != {n} {{ return Err(::serde::json::Error::new(format!(\"{name}::{vn}: expected {n} elements, got {{}}\", _arr.len()))); }}"
                            );
                            let _ = writeln!(body, "Ok({name}::{vn}(");
                            for idx in 0..*n {
                                let _ = writeln!(
                                    body,
                                    "::serde::Deserialize::from_json_value(&_arr[{idx}])?,"
                                );
                            }
                            body.push_str("))\n}\n");
                        }
                        Shape::Named(fields) => {
                            let _ = writeln!(body, "\"{vn}\" => {{");
                            let _ =
                                writeln!(body, "let _obj = _inner.as_object(\"{name}::{vn}\")?;");
                            let _ = writeln!(body, "Ok({name}::{vn} {{");
                            for f in fields {
                                let _ =
                                    writeln!(body, "{f}: ::serde::json::field(_obj, \"{f}\")?,");
                            }
                            body.push_str("})\n}\n");
                        }
                    }
                }
                let _ = writeln!(
                    body,
                    "_other => Err(::serde::json::Error::new(format!(\"unknown variant {{_other:?}} for enum {name}\"))),"
                );
                body.push_str("}\n}\n");
            }
            let _ = writeln!(
                body,
                "_other => Err(::serde::json::Error::new(format!(\"invalid value for enum {name}: {{}}\", _other.kind()))),"
            );
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(_v: &::serde::json::Value) -> Result<Self, ::serde::json::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
