//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! points `proptest` at this path crate. It implements the subset the
//! workspace's property tests use:
//!
//! - [`Strategy`] with `prop_map` / `boxed`, range strategies for
//!   integers and floats, tuple strategies, [`Just`], [`any`],
//!   [`collection::vec`], and the [`prop_oneof!`] union macro;
//! - the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! - a deterministic runner: each test's case stream is derived from a
//!   fixed seed hashed with the test name, so failures are
//!   reproducible run-to-run (the failing seed is printed).
//!
//! There is **no shrinking**: a failing case reports the raw inputs'
//! seed rather than a minimized counterexample. That trades debugging
//! convenience for zero dependencies, which the offline build needs.

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains where.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is retried.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic generator handed to strategies (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Apply `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.generate(rng)))
    }
}

/// Strategy returning clones of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

pub mod strategy {
    //! Strategy combinators addressed by the macros.

    use super::TestRng;
    pub use super::{BoxedStrategy, Just, Map, Strategy};

    /// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }
}

// --- ranges ---------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

// --- tuples ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

// --- any ------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait ArbitraryValue: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * (exp as f64).exp2()
    }
}

/// Strategy for an arbitrary value of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        any::<T>()
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` (`any::<u64>()` etc.).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

// --- macros ---------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property; failure reports the case rather than
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Reject the current case (it is regenerated, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = (5u32..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (3u64..=3).generate(&mut rng);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::from_seed(2);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_respects_size_range() {
        let strategy = crate::collection::vec(0u32..5, 2..6);
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_checks(
            x in 0u32..100,
            pair in (0u8..4, any::<bool>()),
            v in crate::collection::vec(any::<u64>(), 0..5),
        ) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
            prop_assume!(v.len() != 4); // exercise rejection
            prop_assert_eq!(v.len().min(4), v.len()); // v.len() != 4 assumed above
            prop_assert_ne!(x, 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_message() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(8), "always_fails", |rng| {
            let x = crate::Strategy::generate(&(0u32..10), rng);
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }
}
