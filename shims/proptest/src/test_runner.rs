//! Case runner for the proptest shim: deterministic seeds, bounded
//! rejection retries, reproducible failure reports.

use crate::{TestCaseError, TestRng};

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Max `prop_assume!` rejections tolerated across the whole run.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// FNV-1a, used to give every property its own deterministic stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `property` for `config.cases` successful cases. Panics with the
/// offending seed on the first failure (no shrinking).
pub fn run_cases<F>(config: &Config, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // PROPTEST_CASES mirrors upstream's env override.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = hash_name(name) ^ 0x5bf0_3635_ec8c_1f58;
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut sequence = 0u64;
    while case < cases {
        let seed = base
            .wrapping_add(sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17);
        sequence += 1;
        let mut rng = TestRng::from_seed(seed);
        match property(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejects}) before reaching {cases} cases"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed at case {case} (seed {seed:#018x}): {message}");
            }
        }
    }
}
