//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! points the `rand` dependency at this path crate. It implements the
//! subset of the rand 0.10 surface the workspace uses:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   via splitmix64 (`SeedableRng::seed_from_u64`). Note: streams
//!   differ from upstream `StdRng` (ChaCha12); everything in this
//!   workspace treats the RNG as an opaque deterministic stream, so
//!   only reproducibility matters, not the exact stream.
//! - [`RngExt`] — `random`, `random_range`, `random_bool`.
//! - [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! All sampling is modulo-based and fully deterministic across
//! platforms, which is what the bank-sharded determinism test suite
//! relies on.

/// Splitmix64 step: the standard 64-bit finalizer used both for seeding
/// and for deriving independent sub-seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "at random" without extra parameters
/// (the `rng.random::<T>()` form).
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            // Truncation is the sampling semantics: the low bits of the
            // generator word are the uniform draw for narrower types.
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `rng.random_range(..)`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            // `% span` bounds the value inside the target type's range
            // before the narrowing cast.
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo sampling: bias is < span / 2^64, irrelevant for
                // the simulation spans used here (all far below 2^32).
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            // Same bound-by-modulo argument as the exclusive range; the
            // span == 0 branch is the full-width type where truncation
            // keeps exactly the type's width.
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors the inherent methods of rand 0.9+'s `Rng`).
pub trait RngExt: RngCore {
    /// Uniform sample of `T` (`bool`, integer, or unit-interval float).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Re-export under the name used by rand 0.8-style call sites.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generator implementations.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the upstream
    /// ChaCha12-based `StdRng`; same role, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn from_state(mut seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let s = [
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
            ];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`).

    use super::RngCore;

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        // `% (i + 1)` keeps the index within the slice, which fits usize.
        #[allow(clippy::cast_possible_truncation)]
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice untouched");
    }
}
