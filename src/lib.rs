//! # tivapromi-suite — workspace facade
//!
//! Re-exports every crate of the TiVaPRoMi reproduction so that the
//! examples and integration tests in this package (and downstream quick
//! experiments) can reach the whole system through one dependency.
//!
//! * [`dram`] — the DRAM disturbance simulator substrate.
//! * [`trace`] — synthetic workload and attacker trace generation.
//! * [`tivapromi`] — the paper's contribution: the four time-varying
//!   probabilistic mitigation variants and the shared mitigation trait.
//! * [`baselines`] — PARA, ProHit, MRLoc, TWiCe, CRA (and CAT).
//! * [`hwmodel`] — FSM cycle-count and LUT area models.
//! * [`harness`] — the experiment engine reproducing each table/figure.
//! * [`redteam`] — adaptive attack synthesis and the security-frontier
//!   search engine.
//! * [`exploit`] — targeted profile → evaluate → attack campaigns
//!   against per-row weak-cell maps.
//! * [`fleet`] — fleet-scale campaigns: heterogeneous device
//!   populations, two-level scheduling, mergeable population
//!   statistics, checkpoint/resume.

pub use dram_sim as dram;
pub use mem_trace as trace;
pub use rh_baselines as baselines;
pub use rh_exploit as exploit;
pub use rh_fleet as fleet;
pub use rh_harness as harness;
pub use rh_hwmodel as hwmodel;
pub use rh_redteam as redteam;
pub use tivapromi;

// The user-facing run API, flattened to the facade root so examples
// need a single import path.
pub use rh_harness::{
    DisturbanceHistogram, Observe, Observer, PerfCounters, RunMetrics, Runner, TechniqueSpec,
    TimeSeries, TimeSeriesRecorder,
};
