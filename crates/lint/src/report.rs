//! Aggregated lint report: machine-readable JSON and the human table.

use crate::rules::{Annotation, Finding, RULE_IDS, RULE_SUMMARIES};
use serde::{Deserialize, Serialize};

/// The whole-workspace lint result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Report schema version, bumped on incompatible changes.
    pub schema_version: u32,
    /// Number of files scanned.
    pub files_scanned: u64,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every allow annotation in the workspace, sorted, with usage.
    pub annotations: Vec<Annotation>,
}

impl LintReport {
    /// v2: interprocedural rules D7/D8, call-graph-derived scopes (D9)
    /// and the `--changed` incremental mode (v1 was the token-only
    /// D1–D6 scanner with file-inventory scoping).
    pub const SCHEMA_VERSION: u32 = 2;

    /// Merges per-file results into one sorted report.
    pub fn from_files(results: Vec<crate::rules::FileReport>, files_scanned: u64) -> Self {
        let mut findings = Vec::new();
        let mut annotations = Vec::new();
        for r in results {
            findings.extend(r.findings);
            annotations.extend(r.annotations);
        }
        findings.sort();
        annotations.sort();
        LintReport {
            schema_version: Self::SCHEMA_VERSION,
            files_scanned,
            findings,
            annotations,
        }
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per rule id, in catalog order.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        RULE_IDS
            .iter()
            .map(|&id| (id, self.findings.iter().filter(|f| f.rule == id).count()))
            .collect()
    }

    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "rh-lint: clean — {} files, 0 findings, {} allow annotations\n",
                self.files_scanned,
                self.annotations.len()
            ));
        } else {
            out.push_str(&format!(
                "rh-lint: {} finding(s) across {} files\n\n",
                self.findings.len(),
                self.files_scanned
            ));
            let width = self
                .findings
                .iter()
                .map(|f| f.file.len() + digits(f.line) + 1)
                .max()
                .unwrap_or(0);
            for f in &self.findings {
                let loc = format!("{}:{}", f.file, f.line);
                out.push_str(&format!("  {loc:width$}  {}  {}\n", f.rule, f.message));
            }
            out.push('\n');
            for (rule, count) in self.rule_counts() {
                if count > 0 {
                    let idx = RULE_IDS.iter().position(|&r| r == rule).unwrap_or(0);
                    out.push_str(&format!("  {rule}: {count:3}  {}\n", RULE_SUMMARIES[idx]));
                }
            }
        }
        if !self.annotations.is_empty() {
            out.push_str("\nallow-annotation inventory:\n");
            for a in &self.annotations {
                let status = if a.used { "used" } else { "UNUSED" };
                out.push_str(&format!(
                    "  {}:{}  allow({})  [{status}]  {}\n",
                    a.file, a.line, a.rule, a.justification
                ));
            }
        }
        out
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileReport;

    fn sample() -> LintReport {
        let file = FileReport {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 10,
                rule: "D1".into(),
                message: "iteration over hash-ordered `m`".into(),
            }],
            annotations: vec![Annotation {
                file: "crates/x/src/lib.rs".into(),
                line: 4,
                rule: "D4".into(),
                justification: "claim uniqueness needs only RMW atomicity".into(),
                used: true,
            }],
        };
        LintReport::from_files(vec![file], 3)
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = serde_json::to_string(&report).expect("serializes");
        let back: LintReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(report, back);
    }

    #[test]
    fn json_is_byte_stable() {
        let a = serde_json::to_string(&sample()).expect("serializes");
        let b = serde_json::to_string(&sample()).expect("serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn table_mentions_findings_and_inventory() {
        let table = sample().render_table();
        assert!(table.contains("crates/x/src/lib.rs:10"));
        assert!(table.contains("D1"));
        assert!(table.contains("allow(D4)"));
        assert!(table.contains("[used]"));
    }

    #[test]
    fn clean_report_renders_summary() {
        let report = LintReport::from_files(vec![], 42);
        assert!(report.is_clean());
        assert!(report.render_table().contains("clean — 42 files"));
    }
}
