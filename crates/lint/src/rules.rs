//! The determinism/soundness rule set (D1–D9) and the allow-annotation
//! grammar.
//!
//! D1–D4 are patterns over the code-token stream of
//! [`crate::lexer::lex`].  D5–D8 are *interprocedural*: their scope is
//! not the file but the function, decided by reachability over the
//! workspace call graph ([`crate::graph`]).  The rules encode the
//! workspace's core contract — sequential ≡ sharded ≡ batched,
//! bit-identical at every worker count — at the source level:
//!
//! * **D1** `hash-iteration`: no iteration over `HashMap`/`HashSet`
//!   bindings in non-test code.  Hash iteration order is seeded per
//!   process, so any hash-ordered traversal that feeds `RunMetrics`,
//!   `merge`, a serialized report or frontier JSON makes output
//!   byte-order a function of the hash seed.  Iteration is accepted
//!   when the same statement ends in an order-insensitive reduction
//!   (`max`/`min`/`sum`/`count`/`all`/`any`/…) or collects into a
//!   `BTreeMap`/`BTreeSet`; anything else needs `BTreeMap` or an
//!   explicit sort.
//! * **D2** `wall-clock`: `Instant::now`/`SystemTime::now` confined to
//!   the [`PerfCounters`] home module and bench code — wall-clock
//!   readings near metric paths are the classic way nondeterminism
//!   sneaks into reports.
//! * **D3** `unseeded-rng`: no `thread_rng`/`rand::random`/OS-entropy
//!   anywhere (tests included); all randomness must come from seeded
//!   generators (`BankRngs`, `StdRng::seed_from_u64`).
//! * **D4** `unsafe-or-relaxed`: every `unsafe` token and every
//!   `Ordering::Relaxed` site must carry an allow annotation with a
//!   justification; the linter inventories them.
//! * **D5** `narrowing-cast`: no `as` casts to ≤32-bit integer types
//!   in counter scope — the functions reachable from the lane kernels
//!   or the metric merge roots (use `try_from`/checked ops).
//! * **D6** `hot-loop-alloc`: `Vec::new`/`vec![`/`Box::new`/`.collect()`
//!   in hot scope — the transitive callees of the `on_batch` lane
//!   kernels and their engine drivers — must carry an allow
//!   annotation.  The steady-state contract (`tests/alloc_free.rs`)
//!   promises zero heap allocations per batch; every
//!   allocation-adjacent construction on those paths is either
//!   construction-time (annotate it, saying so) or a regression.
//!   `Vec::with_capacity` is the blessed idiom and is never flagged —
//!   preallocation *is* the contract; a bare `Vec::new` signals a
//!   buffer that will grow inside the loop.
//! * **D7** `rng-provenance`: every RNG draw (`next_u64`, `gen_range`,
//!   `sample`, `draw_block`, …) must sit in a function with a seeded
//!   lineage — one that transitively derives its generator from
//!   `bank_seed`/`device_seed`/`StdRng::seed_from_u64`, belongs to a
//!   type whose constructor does, or is called from such a function
//!   (see [`crate::graph::derive_scopes`]).  A draw outside that set
//!   has no provenance story: nothing ties its stream to the
//!   run/bank/device seed tree, so shard order can change its values.
//!   Additionally, a `draw_block` refill must be consumed within its
//!   originating run: storing the refill into `self` state is flagged,
//!   because a block drawn in one run and drained in another desyncs
//!   the per-bank streams between sequential and sharded execution.
//! * **D8** `float-reduction`: on functions reachable from the
//!   `merge`/`merge_population` metric folds, order-dependent `f64`
//!   accumulation (`+=`/`-=`/`*=` with float operands, `.sum::<f64>()`,
//!   running means) is flagged unless annotated.  Float addition is
//!   not associative; a merge that folds shard results in worker
//!   order produces different bits at different worker counts.
//! * **D9** `scope-inventory`: the D5–D8 scopes are *derived* from the
//!   call graph — there is no hand-maintained file inventory to drift
//!   out of date.  D9 never fires on code; it names the derivation so
//!   the report catalog and docs can reference it.  `allow(D9)` is
//!   rejected: you cannot annotate your way out of reachability.
//!
//! # Annotation grammar
//!
//! ```text
//! // lint: allow(D4) — one-line justification
//! ```
//!
//! The annotation must sit on the violating line (trailing comment) or
//! within the two lines above it.  The separator after `allow(RULE)`
//! may be `—`, `--`, `-` or `:`; the justification is mandatory — an
//! annotation without one is itself a finding (rule `ANN`).
//!
//! [`PerfCounters`]: ../../rh_harness/observe/struct.PerfCounters.html

use crate::ast::{parse_lexed, Ast, ExprKind, Item, ItemKind, Span, Stmt};
use crate::graph::{derive_scopes, CallGraph, Scopes};
use crate::lexer::{lex, Lexed, Token, TokenKind};
use serde::{Deserialize, Serialize};

/// Rule identifiers, in catalog order.
pub const RULE_IDS: [&str; 10] = [
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "ANN",
];

/// One-line description per rule, aligned with [`RULE_IDS`].
pub const RULE_SUMMARIES: [&str; 10] = [
    "hash-ordered iteration (HashMap/HashSet) in non-test code",
    "wall-clock read (Instant/SystemTime) outside PerfCounters/bench",
    "unseeded randomness (thread_rng/rand::random/OS entropy)",
    "unsafe or Ordering::Relaxed site without allow annotation",
    "narrowing `as` cast in counter scope (kernel/merge-reachable)",
    "unannotated allocation call in hot scope (on_batch-reachable)",
    "RNG draw outside a seeded lineage, or escaping draw_block refill",
    "order-dependent float accumulation on a merge-reachable path",
    "rule scopes are call-graph-derived; no file inventories (meta)",
    "malformed lint annotation (missing justification)",
];

/// Rules that can never be annotated away: `ANN` (an annotation cannot
/// excuse itself) and `D9` (scope derivation is structural — there is
/// no site to justify).
const UNANNOTATABLE: [&str; 2] = ["D9", "ANN"];

/// How many lines above a site an annotation still covers.
const ANNOTATION_REACH: u32 = 2;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`D1`…`D8`, `ANN`).
    pub rule: String,
    /// Human-readable explanation of the violation.
    pub message: String,
}

/// One parsed `// lint: allow(RULE) — justification` annotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Annotation {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub justification: String,
    /// Whether a rule site actually consumed this annotation.
    pub used: bool,
}

/// Per-file lint result.
#[derive(Debug, Default, Clone)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub annotations: Vec<Annotation>,
}

/// Path-derived rule scoping for one file.  Counter/hot-loop scoping
/// is **not** here any more — it is derived per *function* from the
/// call graph (see [`FileScopes`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Test code: files under a `tests/` directory.  In `src/` files
    /// the trailing `#[cfg(test)]` module is detected separately.
    pub is_test: bool,
    /// Bench code (`crates/bench`, `benches/`): D2, D5, D6 and D8
    /// exempt.
    pub is_bench: bool,
    /// The designated wall-clock home (`PerfCounters`): D2 exempt.
    pub timing_exempt: bool,
}

/// One function's reachability-derived rule memberships.
#[derive(Debug, Clone)]
pub struct FnScope {
    pub name: String,
    /// The function's body span; rule sites are attributed to the
    /// innermost enclosing body.
    pub body: Span,
    pub is_test: bool,
    /// D5 applies (reachable from a kernel or a merge root).
    pub counter: bool,
    /// D6 applies (reachable from an `on_batch` kernel or driver).
    pub hot: bool,
    /// D8 applies (reachable from `merge`/`merge_population`).
    pub merge: bool,
    /// D7-quiet: the function has a seeded-RNG lineage.
    pub seeded: bool,
}

/// The per-file slice of the workspace scope derivation.
#[derive(Debug, Clone, Default)]
pub struct FileScopes {
    pub fns: Vec<FnScope>,
}

impl FileScopes {
    /// Extracts the scopes of every function defined in graph file
    /// `file`.
    pub fn from_graph(graph: &CallGraph, scopes: &Scopes, file: usize) -> FileScopes {
        let mut fns = Vec::new();
        for id in graph.fns_in_file(file) {
            let f = &graph.fns[id];
            let Some(body) = f.body_span else { continue };
            fns.push(FnScope {
                name: f.name.clone(),
                body,
                is_test: f.is_test,
                counter: scopes.counter.contains(&id),
                hot: scopes.hot.contains(&id),
                merge: scopes.merge.contains(&id),
                seeded: scopes.seeded.contains(&id),
            });
        }
        FileScopes { fns }
    }

    /// The innermost function body containing byte `offset` (functions
    /// nest inside functions; the tightest span wins).
    pub fn innermost(&self, offset: u32) -> Option<&FnScope> {
        self.fns
            .iter()
            .filter(|f| f.body.contains_offset(offset))
            .min_by_key(|f| f.body.end - f.body.start)
    }
}

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "into_values",
    "into_keys",
    "drain",
    "extract_if",
];

/// Terminal reductions whose result does not depend on iteration
/// order, accepted as same-statement consumers of hash iteration.
const ORDER_INSENSITIVE: [&str; 16] = [
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "sum",
    "product",
    "count",
    "all",
    "any",
    "len",
    "is_empty",
    "sort",
    "BTreeMap",
    "BTreeSet",
];

/// Sort calls that restore a structural order in the same statement.
const SORTS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_cached_key",
];

const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// The draw surface of the seeded generators: a call to any of these
/// consumes randomness and therefore needs a seeded lineage (D7).
const DRAW_CALLS: [&str; 9] = [
    "next_u64",
    "next_u32",
    "fill_bytes",
    "gen",
    "gen_range",
    "random",
    "random_range",
    "sample",
    "draw_block",
];

/// Compound assignments whose result depends on evaluation order when
/// the operands are floats.
const ORDER_DEPENDENT_OPS: [&str; 3] = ["+=", "-=", "*="];

/// Lints one file's source under `class` scoping, deriving the
/// function scopes from the file's own call graph.  This is the
/// single-file mode (fixtures, tests, `--changed` without workspace
/// context is *not* this — see `lint_workspace`); files whose scope
/// roots live elsewhere in the workspace need the workspace pass.
pub fn lint_source(path: &str, source: &str, class: &FileClass) -> FileReport {
    let lexed = lex(source);
    let ast = parse_lexed(&lexed);
    let graph = CallGraph::build(vec![(
        path.to_string(),
        &ast,
        class.is_test || class.is_bench,
    )]);
    let scopes = derive_scopes(&graph);
    let file_scopes = FileScopes::from_graph(&graph, &scopes, 0);
    lint_parsed(path, &lexed, &ast, class, &file_scopes)
}

/// Lints one already-lexed/parsed file against precomputed function
/// scopes.  The workspace driver parses every file once, builds the
/// global call graph, then calls this per file.
pub fn lint_parsed(
    path: &str,
    lexed: &Lexed,
    ast: &Ast,
    class: &FileClass,
    scopes: &FileScopes,
) -> FileReport {
    let mut report = FileReport::default();
    parse_annotations(path, lexed, &mut report);

    // The trailing-test-module convention: everything at or after the
    // first `#[cfg(test)]` counts as test code.
    let test_start = if class.is_test {
        0
    } else {
        cfg_test_line(lexed).unwrap_or(u32::MAX)
    };

    // A multi-line annotation comment covers code below the whole
    // block: precompute each annotation's block end.
    let coverage: Vec<u32> = report
        .annotations
        .iter()
        .map(|a| comment_block_end(lexed, a.line))
        .collect();

    let mut ctx = Ctx {
        path,
        report: &mut report,
        coverage: &coverage,
    };
    rule_d1(lexed, test_start, &mut ctx);
    if !class.is_bench && !class.timing_exempt {
        rule_d2(lexed, test_start, &mut ctx);
    }
    rule_d3(lexed, &mut ctx);
    rule_d4(lexed, &mut ctx);
    if !class.is_bench {
        rule_d5(lexed, scopes, &mut ctx);
        rule_d6(lexed, scopes, &mut ctx);
        rule_d8(lexed, scopes, &mut ctx);
    }
    rule_d7(lexed, ast, scopes, &mut ctx);

    report.findings.sort();
    report
}

/// Parses every `lint: allow(RULE)` annotation out of the comment
/// channel; malformed ones (missing justification, unknown rule, or a
/// rule that cannot be annotated) become `ANN` findings.
fn parse_annotations(path: &str, lexed: &Lexed, report: &mut FileReport) {
    for comment in &lexed.comments {
        // Only plain `// lint: …` comments are annotations; doc
        // comments (`///`, `//!`) merely *talking about* the grammar
        // are not.
        let body = comment.text.trim_start_matches('/');
        if comment.text.starts_with("///") || comment.text.starts_with("//!") {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: "lint annotation must be `lint: allow(RULE) — justification`".into(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: "unterminated rule id in lint annotation".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULE_IDS.contains(&rule.as_str()) || UNANNOTATABLE.contains(&rule.as_str()) {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: format!("rule `{rule}` cannot be allowed by annotation"),
            });
            continue;
        }
        let justification = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        if justification.is_empty() {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: format!("allow({rule}) annotation carries no justification"),
            });
            continue;
        }
        report.annotations.push(Annotation {
            file: path.to_string(),
            line: comment.line,
            rule,
            justification,
            used: false,
        });
    }
}

/// The last line of the contiguous comment block starting at `line`:
/// a multi-line annotation comment covers code below the whole block,
/// not just its first line.
fn comment_block_end(lexed: &Lexed, line: u32) -> u32 {
    let mut end = line;
    for c in &lexed.comments {
        if c.line == end + 1 {
            end = c.line;
        }
    }
    end
}

/// Shared rule context: the file path, the report under construction
/// and the annotation coverage ends.
struct Ctx<'a> {
    path: &'a str,
    report: &'a mut FileReport,
    coverage: &'a [u32],
}

impl Ctx<'_> {
    /// Marks the covering annotation used and reports whether `line`
    /// is covered for `rule`.
    fn allowed(&mut self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for (a, &end) in self.report.annotations.iter_mut().zip(self.coverage) {
            if a.rule == rule && line >= a.line && line <= end + ANNOTATION_REACH {
                a.used = true;
                hit = true;
            }
        }
        hit
    }

    fn finding(&mut self, rule: &str, line: u32, message: String) {
        if !self.allowed(rule, line) {
            self.report.findings.push(Finding {
                file: self.path.to_string(),
                line,
                rule: rule.to_string(),
                message,
            });
        }
    }
}

/// Line of the first `#[cfg(test)]` attribute, if any.
fn cfg_test_line(lexed: &Lexed) -> Option<u32> {
    let t = &lexed.tokens;
    for i in 0..t.len().saturating_sub(6) {
        if t[i].text == "#"
            && t[i + 1].text == "["
            && t[i + 2].text == "cfg"
            && t[i + 3].text == "("
            && t[i + 4].text == "test"
            && t[i + 5].text == ")"
            && t[i + 6].text == "]"
        {
            return Some(t[i].line);
        }
    }
    None
}

fn is_ident(token: &Token, text: &str) -> bool {
    token.kind == TokenKind::Ident && token.text == text
}

/// Index of the first token of the statement containing `i`: the token
/// after the closest preceding `;`, `{` or `}`.
fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let text = tokens[j - 1].text.as_str();
        if text == ";" || text == "{" || text == "}" {
            break;
        }
        j -= 1;
    }
    j
}

/// Index one past the last token of the statement containing `i`.
fn statement_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j < tokens.len() {
        let text = tokens[j].text.as_str();
        if text == ";" || text == "{" || text == "}" {
            break;
        }
        j += 1;
    }
    j
}

/// Collects the names of `HashMap`/`HashSet` bindings declared in this
/// file: type-ascribed `name: HashMap<…>` (lets, struct fields, fn
/// params) and constructor forms `name = HashMap::new()`; falls back
/// to the `let` binding of the enclosing statement (covers turbofish
/// `collect::<HashMap<_, _>>()`).
fn hash_bindings(lexed: &Lexed) -> Vec<(String, u32)> {
    let t = &lexed.tokens;
    let mut out: Vec<(String, u32)> = Vec::new();
    for i in 0..t.len() {
        if !(is_ident(&t[i], "HashMap") || is_ident(&t[i], "HashSet")) {
            continue;
        }
        let start = statement_start(t, i);
        if is_ident(&t[start], "use") {
            continue; // imports declare no binding
        }
        if let Some(name) = binding_name(t, start, i) {
            out.push((name, t[i].line));
        }
    }
    out
}

fn binding_name(tokens: &[Token], start: usize, i: usize) -> Option<String> {
    // Walk backwards over type-ish tokens looking for `name :` or
    // `name =`.
    let mut j = i;
    while j > start {
        let tok = &tokens[j - 1];
        match tok.text.as_str() {
            ":" => {
                // `name : … HashMap`
                if j >= 2 && tokens[j - 2].kind == TokenKind::Ident {
                    return Some(tokens[j - 2].text.clone());
                }
                break;
            }
            "=" => {
                // `name = HashMap::new()`
                if j >= 2 && tokens[j - 2].kind == TokenKind::Ident && tokens[j - 2].text != "mut" {
                    return Some(tokens[j - 2].text.clone());
                }
                break;
            }
            "::" | "<" | ">" | "&" | "," | "(" | ")" | "[" | "]" | "*" => j -= 1,
            _ if tok.kind == TokenKind::Ident || tok.kind == TokenKind::Lifetime => j -= 1,
            _ => break,
        }
    }
    // Fallback: the let binding of the enclosing statement.
    let mut k = start;
    if k < tokens.len() && is_ident(&tokens[k], "let") {
        k += 1;
        if k < tokens.len() && is_ident(&tokens[k], "mut") {
            k += 1;
        }
        if k < tokens.len() && tokens[k].kind == TokenKind::Ident {
            return Some(tokens[k].text.clone());
        }
    }
    None
}

/// Scans the rest of the statement after token `i` and reports whether
/// it contains an order-insensitive reduction, a sort, or a collect
/// into an ordered container.
///
/// Reductions and sorts only count as *method calls* (`.max()`,
/// `.sort()`) — a local variable that happens to be named `count` or
/// `min` must not absorb the order.  `BTreeMap`/`BTreeSet` count as
/// bare type names, since they appear in turbofish collects.
fn statement_absorbs_order(tokens: &[Token], i: usize) -> bool {
    let mut depth: i32 = 0;
    for (offset, tok) in tokens.iter().enumerate().skip(i) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" if depth == 0 => return false,
            "BTreeMap" | "BTreeSet" if tok.kind == TokenKind::Ident => return true,
            _ if tok.kind == TokenKind::Ident => {
                let name = tok.text.as_str();
                let is_method_call = offset > 0
                    && tokens[offset - 1].text == "."
                    && tokens.get(offset + 1).is_some_and(|n| n.text == "(");
                if is_method_call && (ORDER_INSENSITIVE.contains(&name) || SORTS.contains(&name)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// D1: iteration over hash-ordered bindings in non-test code.
fn rule_d1(lexed: &Lexed, test_start: u32, ctx: &mut Ctx<'_>) {
    let bindings = hash_bindings(lexed);
    if bindings.is_empty() {
        return;
    }
    let names: Vec<&str> = bindings.iter().map(|(n, _)| n.as_str()).collect();
    let t = &lexed.tokens;

    // Method-call iteration: `name.iter()`, `name.values()`, …
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !names.contains(&t[i].text.as_str()) {
            continue;
        }
        if t[i].line >= test_start {
            continue;
        }
        let Some(dot) = t.get(i + 1) else { continue };
        let Some(method) = t.get(i + 2) else { continue };
        if dot.text == "." && ITER_METHODS.contains(&method.text.as_str()) {
            if statement_absorbs_order(t, i + 3) {
                continue;
            }
            ctx.finding(
                "D1",
                t[i].line,
                format!(
                    "iteration over hash-ordered `{}` via `.{}()`: order is hash-seeded; use \
                     BTreeMap/BTreeSet, sort in the same statement, or reduce order-insensitively",
                    t[i].text, method.text
                ),
            );
        }
    }

    // `for … in <expr-with-binding> {`
    let mut i = 0;
    while i < t.len() {
        if is_ident(&t[i], "for") {
            // Find `in` before the loop body opens.
            let mut j = i + 1;
            let mut found_in = None;
            while j < t.len() && j < i + 24 {
                if is_ident(&t[j], "in") {
                    found_in = Some(j);
                    break;
                }
                if t[j].text == "{" {
                    break; // `impl Trait for Type {`
                }
                j += 1;
            }
            if let Some(in_at) = found_in {
                let mut k = in_at + 1;
                let mut depth: i32 = 0;
                while k < t.len() {
                    match t[k].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    if t[k].kind == TokenKind::Ident
                        && names.contains(&t[k].text.as_str())
                        && t[k].line < test_start
                        // A call like `name.len()` inside the iterated
                        // expression is not iteration of `name`.
                        && t.get(k + 1).is_none_or(|n| n.text != ".")
                    {
                        ctx.finding(
                            "D1",
                            t[k].line,
                            format!(
                                "for-loop over hash-ordered `{}`: order is hash-seeded; use \
                                 BTreeMap/BTreeSet or sort before iterating",
                                t[k].text
                            ),
                        );
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
}

/// D2: `Instant::now` / `SystemTime::now` outside the timing home.
fn rule_d2(lexed: &Lexed, test_start: u32, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len().saturating_sub(2) {
        if (is_ident(&t[i], "Instant") || is_ident(&t[i], "SystemTime"))
            && t[i + 1].text == "::"
            && is_ident(&t[i + 2], "now")
            && t[i].line < test_start
        {
            ctx.finding(
                "D2",
                t[i].line,
                format!(
                    "`{}::now` outside PerfCounters/bench code: wall-clock readings near metric \
                     paths break run-to-run determinism",
                    t[i].text
                ),
            );
        }
    }
}

/// D3: unseeded randomness, everywhere (tests included).
fn rule_d3(lexed: &Lexed, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        if ENTROPY_IDENTS.contains(&t[i].text.as_str()) {
            ctx.finding(
                "D3",
                t[i].line,
                format!(
                    "`{}` draws OS entropy: all randomness must come from seeded RNGs \
                     (BankRngs / StdRng::seed_from_u64)",
                    t[i].text
                ),
            );
        }
        // `rand::random` (free function).
        if is_ident(&t[i], "rand")
            && t.get(i + 1).is_some_and(|n| n.text == "::")
            && t.get(i + 2).is_some_and(|n| is_ident(n, "random"))
        {
            ctx.finding(
                "D3",
                t[i].line,
                "`rand::random` is thread-RNG backed: use a seeded RNG".to_string(),
            );
        }
    }
}

/// D4: every `unsafe` and `Ordering::Relaxed` site needs an annotation.
fn rule_d4(lexed: &Lexed, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if is_ident(&t[i], "unsafe") {
            ctx.finding(
                "D4",
                t[i].line,
                "`unsafe` without `lint: allow(D4)` justification".to_string(),
            );
        }
        if is_ident(&t[i], "Ordering")
            && t.get(i + 1).is_some_and(|n| n.text == "::")
            && t.get(i + 2).is_some_and(|n| is_ident(n, "Relaxed"))
        {
            ctx.finding(
                "D4",
                t[i].line,
                "`Ordering::Relaxed` without `lint: allow(D4)` memory-ordering argument"
                    .to_string(),
            );
        }
    }
}

/// D5: narrowing `as` casts inside counter-scope function bodies (the
/// functions reachable from a lane kernel or a merge root — see
/// [`crate::graph::derive_scopes`]).
fn rule_d5(lexed: &Lexed, scopes: &FileScopes, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len().saturating_sub(1) {
        if is_ident(&t[i], "as")
            && t[i + 1].kind == TokenKind::Ident
            && NARROW_INTS.contains(&t[i + 1].text.as_str())
        {
            let Some(scope) = scopes.innermost(t[i].start) else {
                continue;
            };
            if scope.is_test || !scope.counter {
                continue;
            }
            ctx.finding(
                "D5",
                t[i].line,
                format!(
                    "`as {}` narrowing cast in counter scope (`{}` is kernel/merge-reachable): \
                     use try_from/checked ops so overflow is loud, not silent",
                    t[i + 1].text, scope.name
                ),
            );
        }
    }
}

/// D6: allocation calls inside hot-scope function bodies (reachable
/// from an `on_batch` kernel or driver).  The flagged forms are
/// `Vec::new`, `vec![…]`, `Box::new` and `.collect()` (including
/// turbofish) — the constructions that either allocate outright or
/// produce a zero-capacity buffer that will allocate on first push
/// inside the steady loop.  `Vec::with_capacity` and in-place reuse
/// (`clear`/`reset`) are the blessed idioms and pass silently.
fn rule_d6(lexed: &Lexed, scopes: &FileScopes, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    let hot = |ctx: &mut Ctx<'_>, i: usize| -> Option<String> {
        let scope = scopes.innermost(t[i].start)?;
        let _ = ctx;
        (!scope.is_test && scope.hot).then(|| scope.name.clone())
    };
    for i in 0..t.len() {
        if (is_ident(&t[i], "Vec") || is_ident(&t[i], "Box"))
            && t.get(i + 1).is_some_and(|n| n.text == "::")
            && t.get(i + 2).is_some_and(|n| is_ident(n, "new"))
        {
            if let Some(name) = hot(ctx, i) {
                ctx.finding(
                    "D6",
                    t[i].line,
                    format!(
                        "`{}::new` in hot scope (`{name}` is on_batch-reachable): preallocate \
                         with `with_capacity` (or reuse in place) and annotate \
                         construction-time sites with `lint: allow(D6)`",
                        t[i].text
                    ),
                );
            }
        }
        if is_ident(&t[i], "vec") && t.get(i + 1).is_some_and(|n| n.text == "!") {
            if let Some(name) = hot(ctx, i) {
                ctx.finding(
                    "D6",
                    t[i].line,
                    format!(
                        "`vec![…]` in hot scope (`{name}` is on_batch-reachable): allocates \
                         every evaluation; annotate construction-time sites with \
                         `lint: allow(D6)` or reuse a preallocated buffer"
                    ),
                );
            }
        }
        if is_ident(&t[i], "collect") && i > 0 && t[i - 1].text == "." {
            if let Some(name) = hot(ctx, i) {
                ctx.finding(
                    "D6",
                    t[i].line,
                    format!(
                        "`.collect()` in hot scope (`{name}` is on_batch-reachable): allocates \
                         a fresh container; annotate construction-time sites with \
                         `lint: allow(D6)` or fill a reused buffer"
                    ),
                );
            }
        }
    }
}

/// D7 part one: RNG draws outside a seeded lineage.  A draw site is a
/// call to one of [`DRAW_CALLS`]; the enclosing function must be in
/// the seeded set derived by [`crate::graph::derive_scopes`].
fn rule_d7(lexed: &Lexed, ast: &Ast, scopes: &FileScopes, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !DRAW_CALLS.contains(&t[i].text.as_str()) {
            continue;
        }
        // A call site, not a definition, import or plain ident: the
        // name is followed by `(` or a turbofish `::<`.
        let is_call = match t.get(i + 1) {
            Some(n) if n.text == "(" => true,
            Some(n) if n.text == "::" => t.get(i + 2).is_some_and(|n| n.text == "<"),
            _ => false,
        };
        if !is_call || (i > 0 && is_ident(&t[i - 1], "fn")) {
            continue;
        }
        if is_ident(&t[statement_start(t, i)], "use") {
            continue;
        }
        let Some(scope) = scopes.innermost(t[i].start) else {
            continue;
        };
        if scope.is_test || scope.seeded {
            continue;
        }
        ctx.finding(
            "D7",
            t[i].line,
            format!(
                "`{}` draw in `{}`, which has no seeded lineage: nothing ties this stream to \
                 the run/bank/device seed tree (seed via bank_seed/device_seed/seed_from_u64, \
                 or take a seeded generator as a parameter)",
                t[i].text, scope.name
            ),
        );
    }

    rule_d7_escapes(ast, ctx);
}

/// D7 part two: a `draw_block` refill stored into `self` state escapes
/// its originating run — the block would be drained in a later run,
/// desyncing sequential vs sharded streams.
fn rule_d7_escapes(ast: &Ast, ctx: &mut Ctx<'_>) {
    fn contains_draw_block(stmts: &[Stmt]) -> Option<u32> {
        for stmt in stmts {
            for expr in &stmt.exprs {
                match &expr.kind {
                    ExprKind::MethodCall { method, .. } if method == "draw_block" => {
                        return Some(expr.line);
                    }
                    ExprKind::Call { path, .. } if path.last().is_some_and(|s| s == "draw_block") =>
                    {
                        return Some(expr.line);
                    }
                    _ => {}
                }
                if let Some(line) = contains_draw_block(&expr.args) {
                    return Some(line);
                }
            }
        }
        None
    }

    fn walk_items(items: &[Item], in_test: bool, ctx: &mut Ctx<'_>) {
        for item in items {
            let in_test = in_test || item.is_test;
            if in_test {
                continue;
            }
            if item.kind == ItemKind::Fn {
                if let Some(body) = &item.body {
                    walk_stmts(&body.stmts, ctx);
                }
            }
            walk_items(&item.children, in_test, ctx);
        }
    }

    fn walk_stmts(stmts: &[Stmt], ctx: &mut Ctx<'_>) {
        for stmt in stmts {
            let assign_at = stmt
                .exprs
                .iter()
                .position(|e| matches!(e.kind, ExprKind::Assign));
            if let Some(at) = assign_at {
                let lhs_is_self_state = at > 0
                    && matches!(
                        &stmt.exprs[0].kind,
                        ExprKind::Path { segments } if segments.first().is_some_and(|s| s == "self")
                    );
                if lhs_is_self_state {
                    if let Some(line) = contains_draw_block_exprs(&stmt.exprs[at + 1..]) {
                        ctx.finding(
                            "D7",
                            line,
                            "`draw_block` refill stored into `self` state: the block escapes \
                             its originating run, desyncing sequential vs sharded streams — \
                             consume the refill within the run that drew it"
                                .to_string(),
                        );
                    }
                }
            }
            for expr in &stmt.exprs {
                walk_stmts(&expr.args, ctx);
            }
        }
    }

    fn contains_draw_block_exprs(exprs: &[crate::ast::Expr]) -> Option<u32> {
        for expr in exprs {
            match &expr.kind {
                ExprKind::MethodCall { method, .. } if method == "draw_block" => {
                    return Some(expr.line);
                }
                ExprKind::Call { path, .. } if path.last().is_some_and(|s| s == "draw_block") => {
                    return Some(expr.line);
                }
                _ => {}
            }
            if let Some(line) = contains_draw_block(&expr.args) {
                return Some(line);
            }
        }
        None
    }

    walk_items(&ast.items, false, ctx);
}

/// D8: order-dependent float accumulation inside merge-scope function
/// bodies.  Flags compound assignments (`+=`/`-=`/`*=`) whose
/// statement carries float evidence (a float literal, an `f64`/`f32`
/// token, `powf`/`sqrt`) and `.sum()`/`.product()` reductions over
/// floats.  Float addition is not associative: folding shard results
/// in worker order produces different bits at different worker counts.
fn rule_d8(lexed: &Lexed, scopes: &FileScopes, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        let in_merge = |scopes: &FileScopes| -> Option<String> {
            let scope = scopes.innermost(t[i].start)?;
            (!scope.is_test && scope.merge).then(|| scope.name.clone())
        };
        if ORDER_DEPENDENT_OPS.contains(&t[i].text.as_str()) {
            let Some(name) = in_merge(scopes) else {
                continue;
            };
            let start = statement_start(t, i);
            let end = statement_end(t, i);
            if has_float_evidence(&t[start..end]) {
                ctx.finding(
                    "D8",
                    t[i].line,
                    format!(
                        "float `{}` accumulation on a merge-reachable path (`{name}`): float \
                         addition is not associative, so fold order changes the bits; use an \
                         integer/fixed-point accumulator, a compensated sum, or annotate with \
                         `lint: allow(D8)` stating why order is fixed",
                        t[i].text
                    ),
                );
            }
        }
        if (is_ident(&t[i], "sum") || is_ident(&t[i], "product"))
            && i > 0
            && t[i - 1].text == "."
        {
            let Some(name) = in_merge(scopes) else {
                continue;
            };
            let start = statement_start(t, i);
            let end = statement_end(t, i);
            let float_turbofish = t.get(i + 1).is_some_and(|n| n.text == "::")
                && t.get(i + 2).is_some_and(|n| n.text == "<")
                && t.get(i + 3)
                    .is_some_and(|n| is_ident(n, "f64") || is_ident(n, "f32"));
            if float_turbofish || has_float_evidence(&t[start..end]) {
                ctx.finding(
                    "D8",
                    t[i].line,
                    format!(
                        "float `.{}()` reduction on a merge-reachable path (`{name}`): \
                         iterator fold order fixes the bits only if the source order is \
                         deterministic; use integers or annotate with `lint: allow(D8)`",
                        t[i].text
                    ),
                );
            }
        }
    }
}

/// Whether a statement's tokens show float arithmetic: a float
/// literal, an `f64`/`f32` type token, or a float-only method.
fn has_float_evidence(tokens: &[Token]) -> bool {
    tokens.iter().any(|tok| match tok.kind {
        TokenKind::Literal => {
            let text = tok.text.as_str();
            text.starts_with(|c: char| c.is_ascii_digit())
                && (text.contains('.') || text.ends_with("f64") || text.ends_with("f32"))
        }
        TokenKind::Ident => {
            matches!(tok.text.as_str(), "f64" | "f32" | "powf" | "sqrt" | "exp" | "ln")
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileReport {
        lint_source("mem.rs", src, &FileClass::default())
    }

    fn rules_of(report: &FileReport) -> Vec<&str> {
        report.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn d1_flags_value_iteration() {
        let r = lint("fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { use_it(v); } }");
        assert_eq!(rules_of(&r), vec!["D1"]);
    }

    #[test]
    fn d1_accepts_order_insensitive_reduction() {
        let r =
            lint("fn f(m: HashMap<u32, u32>) -> u32 { m.values().copied().max().unwrap_or(0) }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_accepts_same_statement_sort() {
        let r = lint(
            "fn f(m: HashMap<u32, u32>) { let mut v: Vec<_> = m.values().collect(); v.sort(); }",
        );
        // The collect statement itself is accepted only when the sort
        // is in the same statement; split statements rely on BTreeMap.
        assert_eq!(rules_of(&r), vec!["D1"]);
        let r = lint("fn f(m: HashMap<u32, u32>) -> Vec<u32> { sorted(m.values().copied().collect::<Vec<_>>().sort()) }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_ignores_membership_only_usage() {
        let r =
            lint("fn f() { let mut s = HashSet::new(); s.insert(3); assert!(s.contains(&3)); }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_ignores_test_code() {
        let r = lint("#[cfg(test)]\nmod tests { fn f(m: HashMap<u32, u32>) { for v in m.values() { drop(v); } } }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_flags_collect_turbofish_binding() {
        let r = lint("fn f(xs: Vec<u32>) { let m = xs.iter().map(|x| (x, x)).collect::<HashMap<_, _>>(); for (k, v) in m.iter() { emit(k, v); } }");
        assert_eq!(rules_of(&r), vec!["D1"]);
    }

    #[test]
    fn d2_flags_instant_now_and_honors_annotation() {
        let r = lint("fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&r), vec!["D2"]);
        let r = lint("fn f() {\n    // lint: allow(D2) — drives Observe timing callbacks only\n    let t = Instant::now();\n}");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.annotations[0].used);
    }

    #[test]
    fn d3_flags_thread_rng_even_in_tests() {
        let r = lint("#[cfg(test)]\nmod tests { fn f() { let x = thread_rng(); } }");
        assert_eq!(rules_of(&r), vec!["D3"]);
    }

    #[test]
    fn d4_flags_unsafe_and_relaxed() {
        let r = lint("fn f(c: &AtomicUsize) { let v = c.fetch_add(1, Ordering::Relaxed); unsafe { hole(v) } }");
        assert_eq!(rules_of(&r), vec!["D4", "D4"]);
    }

    #[test]
    fn d4_annotation_covers_two_lines_below() {
        let r = lint(
            "// lint: allow(D4) — claim uniqueness needs only RMW atomicity\nfn f(c: &AtomicUsize) {\n    c.fetch_add(1, Ordering::Relaxed);\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d5_scoped_by_merge_reachability() {
        // `merge` is a scope root: the cast inside it is counter scope.
        let r = lint("pub fn merge(total: u64, other: u64) -> u32 { (total + other) as u32 }");
        assert_eq!(rules_of(&r), vec!["D5"]);
        // Same cast in an unreachable helper: out of scope.
        let r = lint("pub fn narrow(total: u64) -> u32 { total as u32 }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d5_reaches_transitive_callees_of_kernels() {
        let src = "\
pub fn on_batch(events: &[u64], sink: &mut ActionSink) { step(events) }
fn step(events: &[u64]) { let _ = events.len() as u32; }
fn unreached(events: &[u64]) { let _ = events.len() as u32; }";
        let r = lint(src);
        assert_eq!(rules_of(&r), vec!["D5"]);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn d6_scoped_by_on_batch_reachability() {
        let src = "\
pub fn on_batch(events: &[u32], sink: &mut ActionSink) -> Vec<u32> {
    let v: Vec<u32> = events.iter().copied().collect();
    let w = vec![0; 4];
    let b = Box::new(w);
    let e: Vec<u32> = Vec::new();
    v
}";
        let r = lint(src);
        assert_eq!(rules_of(&r), vec!["D6", "D6", "D6", "D6"]);
        // The same body under a non-kernel name is out of scope (no
        // ActionSink in the signature, nobody calls on_batch).
        let cold = src.replace("on_batch", "assemble").replace(", sink: &mut ActionSink", "");
        let r = lint(&cold);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d6_accepts_with_capacity_and_honors_annotation() {
        let r = lint(
            "pub fn on_batch(n: usize, sink: &mut ActionSink) -> Vec<u32> { Vec::with_capacity(n) }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let r = lint(
            "pub fn on_batch(n: usize, sink: &mut ActionSink) -> Vec<u32> {\n    // lint: allow(D6) — construction-time, never in the loop\n    Vec::new()\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.annotations[0].used);
    }

    #[test]
    fn d6_ignores_test_code_and_bench_files() {
        let r = lint(
            "#[cfg(test)]\nmod tests { fn on_batch(b: &[u32], sink: &mut ActionSink) -> Vec<u32> { b.iter().copied().collect() } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let bench = FileClass {
            is_bench: true,
            ..FileClass::default()
        };
        let r = lint_source(
            "mem.rs",
            "pub fn on_batch(b: &[u32], sink: &mut ActionSink) -> Vec<u32> { Vec::new() }",
            &bench,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d7_flags_draws_without_seeded_lineage() {
        let r = lint(
            "struct Orphan { rng: StdRng }\n\
             impl Orphan { pub fn draw(&mut self) -> u64 { self.rng.next_u64() } }",
        );
        assert_eq!(rules_of(&r), vec!["D7"]);
    }

    #[test]
    fn d7_accepts_constructor_seeded_types() {
        let r = lint(
            "struct Pool { rng: StdRng }\n\
             impl Pool {\n\
               pub fn new(seed: u64) -> Pool { Pool { rng: StdRng::seed_from_u64(bank_seed(seed, 0)) } }\n\
               pub fn draw(&mut self) -> u64 { self.rng.next_u64() }\n\
             }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d7_accepts_seeded_generator_passed_as_parameter() {
        let r = lint(
            "fn run(seed: u64) -> u64 { let mut rng = StdRng::seed_from_u64(seed); sample_one(&mut rng) }\n\
             fn sample_one(rng: &mut StdRng) -> u64 { rng.next_u64() }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d7_flags_draw_block_escaping_into_self_state() {
        let r = lint(
            "impl Lane {\n\
               pub fn new(seed: u64) -> Lane { Lane { rngs: BankRngs::with_banks(StdRng::seed_from_u64(seed), 4) } }\n\
               pub fn stash(&mut self, bank: u32) { self.saved = self.rngs.draw_block(bank, 64).to_vec(); }\n\
             }",
        );
        assert_eq!(rules_of(&r), vec!["D7"]);
        assert!(r.findings[0].message.contains("escapes"));
    }

    #[test]
    fn d7_ignores_test_draws() {
        let r = lint(
            "#[cfg(test)]\nmod tests { fn f(rng: &mut StdRng) -> u64 { rng.next_u64() } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d7_honors_annotation() {
        let r = lint(
            "impl Replay {\n\
               pub fn next(&mut self) -> u64 {\n\
                 // lint: allow(D7) — replay stream, values come from a recorded trace\n\
                 self.rng.next_u64()\n\
               }\n\
             }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.annotations[0].used);
    }

    #[test]
    fn d8_flags_float_accumulation_in_merge_scope() {
        let r = lint(
            "pub fn merge(acc: &mut Stats, x: f64) { acc.mean += x * 0.5; }",
        );
        assert_eq!(rules_of(&r), vec!["D8"]);
    }

    #[test]
    fn d8_accepts_integer_accumulation_in_merge_scope() {
        let r = lint("pub fn merge(acc: &mut Stats, x: u64) { acc.total += x; }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d8_flags_float_sum_reductions() {
        let r = lint(
            "pub fn merge_population(xs: &[f64]) -> f64 { xs.iter().copied().sum::<f64>() }",
        );
        assert_eq!(rules_of(&r), vec!["D8"]);
    }

    #[test]
    fn d8_ignores_float_math_outside_merge_scope() {
        let r = lint("pub fn weight(x: f64) -> f64 { let mut w = x; w *= 0.5; w }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d8_honors_annotation() {
        let r = lint(
            "pub fn merge(acc: &mut Stats, x: f64) {\n\
               // lint: allow(D8) — shard order is canonicalized before the fold\n\
               acc.mean += x as f64;\n\
             }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.annotations[0].used);
    }

    #[test]
    fn ann_flags_missing_justification_and_unknown_rule() {
        let r = lint("// lint: allow(D4)\nfn f() {}");
        assert_eq!(rules_of(&r), vec!["ANN"]);
        let r = lint("// lint: allow(D12) — bogus\nfn f() {}");
        assert_eq!(rules_of(&r), vec!["ANN"]);
    }

    #[test]
    fn ann_rejects_unannotatable_rules() {
        // D9 is the scope-derivation meta-rule: you cannot annotate
        // your way out of reachability.
        let r = lint("// lint: allow(D9) — trying to opt out of scoping\nfn f() {}");
        assert_eq!(rules_of(&r), vec!["ANN"]);
    }

    #[test]
    fn annotations_are_inventoried() {
        let r = lint("// lint: allow(D4) — justified\nunsafe fn f() {}\n// lint: allow(D2) — never read\nfn g() {}");
        assert_eq!(r.annotations.len(), 2);
        assert!(r.annotations.iter().any(|a| a.rule == "D4" && a.used));
        assert!(r.annotations.iter().any(|a| a.rule == "D2" && !a.used));
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let r = lint("// HashMap Instant::now thread_rng unsafe Ordering::Relaxed\nfn f() { let s = \"Instant::now() unsafe\"; }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
