//! The determinism/soundness rule set (D1–D5) and the allow-annotation
//! grammar.
//!
//! Every rule is a pattern over the code-token stream of
//! [`crate::lexer::lex`]; none needs a full parse.  The rules encode
//! the workspace's core contract — sequential ≡ sharded ≡ batched,
//! bit-identical at every worker count — at the source level:
//!
//! * **D1** `hash-iteration`: no iteration over `HashMap`/`HashSet`
//!   bindings in non-test code.  Hash iteration order is seeded per
//!   process, so any hash-ordered traversal that feeds `RunMetrics`,
//!   `merge`, a serialized report or frontier JSON makes output
//!   byte-order a function of the hash seed.  Iteration is accepted
//!   when the same statement ends in an order-insensitive reduction
//!   (`max`/`min`/`sum`/`count`/`all`/`any`/…) or collects into a
//!   `BTreeMap`/`BTreeSet`; anything else needs `BTreeMap` or an
//!   explicit sort.
//! * **D2** `wall-clock`: `Instant::now`/`SystemTime::now` confined to
//!   the [`PerfCounters`] home module and bench code — wall-clock
//!   readings near metric paths are the classic way nondeterminism
//!   sneaks into reports.
//! * **D3** `unseeded-rng`: no `thread_rng`/`rand::random`/OS-entropy
//!   anywhere (tests included); all randomness must come from seeded
//!   generators (`BankRngs`, `StdRng::seed_from_u64`).
//! * **D4** `unsafe-or-relaxed`: every `unsafe` token and every
//!   `Ordering::Relaxed` site must carry an allow annotation with a
//!   justification; the linter inventories them.
//! * **D5** `narrowing-cast`: no `as` casts to ≤32-bit integer types
//!   in counter/flip-arithmetic files (use `try_from`/checked ops).
//! * **D6** `hot-loop-alloc`: `Vec::new`/`vec![`/`Box::new`/`.collect()`
//!   in the inventoried hot-loop files (the lane kernels, the batched
//!   engine loop, the arena) must carry an allow annotation.  The
//!   steady-state contract (`tests/alloc_free.rs`) promises zero heap
//!   allocations per batch; every allocation-adjacent construction in
//!   those files is either construction-time (annotate it, saying so)
//!   or a regression.  `Vec::with_capacity` is the blessed idiom and
//!   is never flagged — preallocation *is* the contract; a bare
//!   `Vec::new` signals a buffer that will grow inside the loop.
//!
//! # Annotation grammar
//!
//! ```text
//! // lint: allow(D4) — one-line justification
//! ```
//!
//! The annotation must sit on the violating line (trailing comment) or
//! within the two lines above it.  The separator after `allow(RULE)`
//! may be `—`, `--`, `-` or `:`; the justification is mandatory — an
//! annotation without one is itself a finding (rule `ANN`).
//!
//! [`PerfCounters`]: ../../rh_harness/observe/struct.PerfCounters.html

use crate::lexer::{lex, Lexed, Token, TokenKind};
use serde::{Deserialize, Serialize};

/// Rule identifiers, in catalog order.
pub const RULE_IDS: [&str; 7] = ["D1", "D2", "D3", "D4", "D5", "D6", "ANN"];

/// One-line description per rule, aligned with [`RULE_IDS`].
pub const RULE_SUMMARIES: [&str; 7] = [
    "hash-ordered iteration (HashMap/HashSet) in non-test code",
    "wall-clock read (Instant/SystemTime) outside PerfCounters/bench",
    "unseeded randomness (thread_rng/rand::random/OS entropy)",
    "unsafe or Ordering::Relaxed site without allow annotation",
    "narrowing `as` cast in counter/flip arithmetic",
    "unannotated allocation call in a hot-loop file",
    "malformed lint annotation (missing justification)",
];

/// How many lines above a site an annotation still covers.
const ANNOTATION_REACH: u32 = 2;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`D1`…`D5`, `ANN`).
    pub rule: String,
    /// Human-readable explanation of the violation.
    pub message: String,
}

/// One parsed `// lint: allow(RULE) — justification` annotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Annotation {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub justification: String,
    /// Whether a rule site actually consumed this annotation.
    pub used: bool,
}

/// Per-file lint result.
#[derive(Debug, Default, Clone)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub annotations: Vec<Annotation>,
}

/// Path-derived rule scoping for one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Test code: files under a `tests/` directory.  In `src/` files
    /// the trailing `#[cfg(test)]` module is detected separately.
    pub is_test: bool,
    /// Bench code (`crates/bench`, `benches/`): D2 and D5 exempt.
    pub is_bench: bool,
    /// The designated wall-clock home (`PerfCounters`): D2 exempt.
    pub timing_exempt: bool,
    /// Counter/flip-arithmetic file: D5 applies.
    pub counter_scope: bool,
    /// Hot-loop file (lane kernels, batched engine loop, arena): D6
    /// applies — allocation calls must be annotated construction-time
    /// sites, never steady-loop code.
    pub hot_loop: bool,
}

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "into_values",
    "into_keys",
    "drain",
    "extract_if",
];

/// Terminal reductions whose result does not depend on iteration
/// order, accepted as same-statement consumers of hash iteration.
const ORDER_INSENSITIVE: [&str; 16] = [
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "sum",
    "product",
    "count",
    "all",
    "any",
    "len",
    "is_empty",
    "sort",
    "BTreeMap",
    "BTreeSet",
];

/// Sort calls that restore a structural order in the same statement.
const SORTS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_cached_key",
];

const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Lints one file's source under `class` scoping.  `path` is only
/// recorded into findings/annotations, never re-classified.
pub fn lint_source(path: &str, source: &str, class: &FileClass) -> FileReport {
    let lexed = lex(source);
    let mut report = FileReport::default();
    parse_annotations(path, &lexed, &mut report);

    // The trailing-test-module convention: everything at or after the
    // first `#[cfg(test)]` counts as test code.
    let test_start = if class.is_test {
        0
    } else {
        cfg_test_line(&lexed).unwrap_or(u32::MAX)
    };

    // A multi-line annotation comment covers code below the whole
    // block: precompute each annotation's block end.
    let coverage: Vec<u32> = report
        .annotations
        .iter()
        .map(|a| comment_block_end(&lexed, a.line))
        .collect();

    let mut ctx = Ctx {
        path,
        report: &mut report,
        coverage: &coverage,
    };
    rule_d1(&lexed, test_start, &mut ctx);
    if !class.is_bench && !class.timing_exempt {
        rule_d2(&lexed, test_start, &mut ctx);
    }
    rule_d3(&lexed, &mut ctx);
    rule_d4(&lexed, &mut ctx);
    if class.counter_scope && !class.is_bench {
        rule_d5(&lexed, test_start, &mut ctx);
    }
    if class.hot_loop && !class.is_bench {
        rule_d6(&lexed, test_start, &mut ctx);
    }

    report.findings.sort();
    report
}

/// Parses every `lint: allow(RULE)` annotation out of the comment
/// channel; malformed ones (missing justification or unknown rule)
/// become `ANN` findings.
fn parse_annotations(path: &str, lexed: &Lexed, report: &mut FileReport) {
    for comment in &lexed.comments {
        // Only plain `// lint: …` comments are annotations; doc
        // comments (`///`, `//!`) merely *talking about* the grammar
        // are not.
        let body = comment.text.trim_start_matches('/');
        if comment.text.starts_with("///") || comment.text.starts_with("//!") {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: "lint annotation must be `lint: allow(RULE) — justification`".into(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: "unterminated rule id in lint annotation".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULE_IDS.contains(&rule.as_str()) || rule == "ANN" {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: format!("unknown rule `{rule}` in lint annotation"),
            });
            continue;
        }
        let justification = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        if justification.is_empty() {
            report.findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: "ANN".into(),
                message: format!("allow({rule}) annotation carries no justification"),
            });
            continue;
        }
        report.annotations.push(Annotation {
            file: path.to_string(),
            line: comment.line,
            rule,
            justification,
            used: false,
        });
    }
}

/// The last line of the contiguous comment block starting at `line`:
/// a multi-line annotation comment covers code below the whole block,
/// not just its first line.
fn comment_block_end(lexed: &Lexed, line: u32) -> u32 {
    let mut end = line;
    for c in &lexed.comments {
        if c.line == end + 1 {
            end = c.line;
        }
    }
    end
}

/// Shared rule context: the file path, the report under construction
/// and the annotation coverage ends.
struct Ctx<'a> {
    path: &'a str,
    report: &'a mut FileReport,
    coverage: &'a [u32],
}

impl Ctx<'_> {
    /// Marks the covering annotation used and reports whether `line`
    /// is covered for `rule`.
    fn allowed(&mut self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for (a, &end) in self.report.annotations.iter_mut().zip(self.coverage) {
            if a.rule == rule && line >= a.line && line <= end + ANNOTATION_REACH {
                a.used = true;
                hit = true;
            }
        }
        hit
    }

    fn finding(&mut self, rule: &str, line: u32, message: String) {
        if !self.allowed(rule, line) {
            self.report.findings.push(Finding {
                file: self.path.to_string(),
                line,
                rule: rule.to_string(),
                message,
            });
        }
    }
}

/// Line of the first `#[cfg(test)]` attribute, if any.
fn cfg_test_line(lexed: &Lexed) -> Option<u32> {
    let t = &lexed.tokens;
    for i in 0..t.len().saturating_sub(6) {
        if t[i].text == "#"
            && t[i + 1].text == "["
            && t[i + 2].text == "cfg"
            && t[i + 3].text == "("
            && t[i + 4].text == "test"
            && t[i + 5].text == ")"
            && t[i + 6].text == "]"
        {
            return Some(t[i].line);
        }
    }
    None
}

fn is_ident(token: &Token, text: &str) -> bool {
    token.kind == TokenKind::Ident && token.text == text
}

/// Index of the first token of the statement containing `i`: the token
/// after the closest preceding `;`, `{` or `}`.
fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let text = tokens[j - 1].text.as_str();
        if text == ";" || text == "{" || text == "}" {
            break;
        }
        j -= 1;
    }
    j
}

/// Collects the names of `HashMap`/`HashSet` bindings declared in this
/// file: type-ascribed `name: HashMap<…>` (lets, struct fields, fn
/// params) and constructor forms `name = HashMap::new()`; falls back
/// to the `let` binding of the enclosing statement (covers turbofish
/// `collect::<HashMap<_, _>>()`).
fn hash_bindings(lexed: &Lexed) -> Vec<(String, u32)> {
    let t = &lexed.tokens;
    let mut out: Vec<(String, u32)> = Vec::new();
    for i in 0..t.len() {
        if !(is_ident(&t[i], "HashMap") || is_ident(&t[i], "HashSet")) {
            continue;
        }
        let start = statement_start(t, i);
        if is_ident(&t[start], "use") {
            continue; // imports declare no binding
        }
        if let Some(name) = binding_name(t, start, i) {
            out.push((name, t[i].line));
        }
    }
    out
}

fn binding_name(tokens: &[Token], start: usize, i: usize) -> Option<String> {
    // Walk backwards over type-ish tokens looking for `name :` or
    // `name =`.
    let mut j = i;
    while j > start {
        let tok = &tokens[j - 1];
        match tok.text.as_str() {
            ":" => {
                // `name : … HashMap`
                if j >= 2 && tokens[j - 2].kind == TokenKind::Ident {
                    return Some(tokens[j - 2].text.clone());
                }
                break;
            }
            "=" => {
                // `name = HashMap::new()`
                if j >= 2 && tokens[j - 2].kind == TokenKind::Ident && tokens[j - 2].text != "mut" {
                    return Some(tokens[j - 2].text.clone());
                }
                break;
            }
            "::" | "<" | ">" | "&" | "," | "(" | ")" | "[" | "]" | "*" => j -= 1,
            _ if tok.kind == TokenKind::Ident || tok.kind == TokenKind::Lifetime => j -= 1,
            _ => break,
        }
    }
    // Fallback: the let binding of the enclosing statement.
    let mut k = start;
    if k < tokens.len() && is_ident(&tokens[k], "let") {
        k += 1;
        if k < tokens.len() && is_ident(&tokens[k], "mut") {
            k += 1;
        }
        if k < tokens.len() && tokens[k].kind == TokenKind::Ident {
            return Some(tokens[k].text.clone());
        }
    }
    None
}

/// Scans the rest of the statement after token `i` and reports whether
/// it contains an order-insensitive reduction, a sort, or a collect
/// into an ordered container.
///
/// Reductions and sorts only count as *method calls* (`.max()`,
/// `.sort()`) — a local variable that happens to be named `count` or
/// `min` must not absorb the order.  `BTreeMap`/`BTreeSet` count as
/// bare type names, since they appear in turbofish collects.
fn statement_absorbs_order(tokens: &[Token], i: usize) -> bool {
    let mut depth: i32 = 0;
    for (offset, tok) in tokens.iter().enumerate().skip(i) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" if depth == 0 => return false,
            "BTreeMap" | "BTreeSet" if tok.kind == TokenKind::Ident => return true,
            _ if tok.kind == TokenKind::Ident => {
                let name = tok.text.as_str();
                let is_method_call = offset > 0
                    && tokens[offset - 1].text == "."
                    && tokens.get(offset + 1).is_some_and(|n| n.text == "(");
                if is_method_call && (ORDER_INSENSITIVE.contains(&name) || SORTS.contains(&name)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// D1: iteration over hash-ordered bindings in non-test code.
fn rule_d1(lexed: &Lexed, test_start: u32, ctx: &mut Ctx<'_>) {
    let bindings = hash_bindings(lexed);
    if bindings.is_empty() {
        return;
    }
    let names: Vec<&str> = bindings.iter().map(|(n, _)| n.as_str()).collect();
    let t = &lexed.tokens;

    // Method-call iteration: `name.iter()`, `name.values()`, …
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !names.contains(&t[i].text.as_str()) {
            continue;
        }
        if t[i].line >= test_start {
            continue;
        }
        let Some(dot) = t.get(i + 1) else { continue };
        let Some(method) = t.get(i + 2) else { continue };
        if dot.text == "." && ITER_METHODS.contains(&method.text.as_str()) {
            if statement_absorbs_order(t, i + 3) {
                continue;
            }
            ctx.finding(
                "D1",
                t[i].line,
                format!(
                    "iteration over hash-ordered `{}` via `.{}()`: order is hash-seeded; use \
                     BTreeMap/BTreeSet, sort in the same statement, or reduce order-insensitively",
                    t[i].text, method.text
                ),
            );
        }
    }

    // `for … in <expr-with-binding> {`
    let mut i = 0;
    while i < t.len() {
        if is_ident(&t[i], "for") {
            // Find `in` before the loop body opens.
            let mut j = i + 1;
            let mut found_in = None;
            while j < t.len() && j < i + 24 {
                if is_ident(&t[j], "in") {
                    found_in = Some(j);
                    break;
                }
                if t[j].text == "{" {
                    break; // `impl Trait for Type {`
                }
                j += 1;
            }
            if let Some(in_at) = found_in {
                let mut k = in_at + 1;
                let mut depth: i32 = 0;
                while k < t.len() {
                    match t[k].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    if t[k].kind == TokenKind::Ident
                        && names.contains(&t[k].text.as_str())
                        && t[k].line < test_start
                        // A call like `name.len()` inside the iterated
                        // expression is not iteration of `name`.
                        && t.get(k + 1).is_none_or(|n| n.text != ".")
                    {
                        ctx.finding(
                            "D1",
                            t[k].line,
                            format!(
                                "for-loop over hash-ordered `{}`: order is hash-seeded; use \
                                 BTreeMap/BTreeSet or sort before iterating",
                                t[k].text
                            ),
                        );
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
}

/// D2: `Instant::now` / `SystemTime::now` outside the timing home.
fn rule_d2(lexed: &Lexed, test_start: u32, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len().saturating_sub(2) {
        if (is_ident(&t[i], "Instant") || is_ident(&t[i], "SystemTime"))
            && t[i + 1].text == "::"
            && is_ident(&t[i + 2], "now")
            && t[i].line < test_start
        {
            ctx.finding(
                "D2",
                t[i].line,
                format!(
                    "`{}::now` outside PerfCounters/bench code: wall-clock readings near metric \
                     paths break run-to-run determinism",
                    t[i].text
                ),
            );
        }
    }
}

/// D3: unseeded randomness, everywhere (tests included).
fn rule_d3(lexed: &Lexed, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        if ENTROPY_IDENTS.contains(&t[i].text.as_str()) {
            ctx.finding(
                "D3",
                t[i].line,
                format!(
                    "`{}` draws OS entropy: all randomness must come from seeded RNGs \
                     (BankRngs / StdRng::seed_from_u64)",
                    t[i].text
                ),
            );
        }
        // `rand::random` (free function).
        if is_ident(&t[i], "rand")
            && t.get(i + 1).is_some_and(|n| n.text == "::")
            && t.get(i + 2).is_some_and(|n| is_ident(n, "random"))
        {
            ctx.finding(
                "D3",
                t[i].line,
                "`rand::random` is thread-RNG backed: use a seeded RNG".to_string(),
            );
        }
    }
}

/// D4: every `unsafe` and `Ordering::Relaxed` site needs an annotation.
fn rule_d4(lexed: &Lexed, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if is_ident(&t[i], "unsafe") {
            ctx.finding(
                "D4",
                t[i].line,
                "`unsafe` without `lint: allow(D4)` justification".to_string(),
            );
        }
        if is_ident(&t[i], "Ordering")
            && t.get(i + 1).is_some_and(|n| n.text == "::")
            && t.get(i + 2).is_some_and(|n| is_ident(n, "Relaxed"))
        {
            ctx.finding(
                "D4",
                t[i].line,
                "`Ordering::Relaxed` without `lint: allow(D4)` memory-ordering argument"
                    .to_string(),
            );
        }
    }
}

/// D5: narrowing `as` casts in counter/flip-arithmetic files.
fn rule_d5(lexed: &Lexed, test_start: u32, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len().saturating_sub(1) {
        if is_ident(&t[i], "as")
            && t[i + 1].kind == TokenKind::Ident
            && NARROW_INTS.contains(&t[i + 1].text.as_str())
            && t[i].line < test_start
        {
            ctx.finding(
                "D5",
                t[i].line,
                format!(
                    "`as {}` narrowing cast in counter arithmetic: use try_from/checked ops \
                     so overflow is loud, not silent",
                    t[i + 1].text
                ),
            );
        }
    }
}

/// D6: allocation calls in hot-loop files.  The flagged forms are
/// `Vec::new`, `vec![…]`, `Box::new` and `.collect()` (including
/// turbofish) — the constructions that either allocate outright or
/// produce a zero-capacity buffer that will allocate on first push
/// inside the steady loop.  `Vec::with_capacity` and in-place reuse
/// (`clear`/`reset`) are the blessed idioms and pass silently.
fn rule_d6(lexed: &Lexed, test_start: u32, ctx: &mut Ctx<'_>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].line >= test_start {
            continue;
        }
        if (is_ident(&t[i], "Vec") || is_ident(&t[i], "Box"))
            && t.get(i + 1).is_some_and(|n| n.text == "::")
            && t.get(i + 2).is_some_and(|n| is_ident(n, "new"))
        {
            ctx.finding(
                "D6",
                t[i].line,
                format!(
                    "`{}::new` in a hot-loop file: preallocate with `with_capacity` (or reuse in \
                     place) and annotate construction-time sites with `lint: allow(D6)`",
                    t[i].text
                ),
            );
        }
        if is_ident(&t[i], "vec") && t.get(i + 1).is_some_and(|n| n.text == "!") {
            ctx.finding(
                "D6",
                t[i].line,
                "`vec![…]` in a hot-loop file: allocates every evaluation; annotate \
                 construction-time sites with `lint: allow(D6)` or reuse a preallocated buffer"
                    .to_string(),
            );
        }
        if is_ident(&t[i], "collect") && i > 0 && t[i - 1].text == "." {
            ctx.finding(
                "D6",
                t[i].line,
                "`.collect()` in a hot-loop file: allocates a fresh container; annotate \
                 construction-time sites with `lint: allow(D6)` or fill a reused buffer"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileReport {
        lint_source("mem.rs", src, &FileClass::default())
    }

    fn rules_of(report: &FileReport) -> Vec<&str> {
        report.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn d1_flags_value_iteration() {
        let r = lint("fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { use_it(v); } }");
        assert_eq!(rules_of(&r), vec!["D1"]);
    }

    #[test]
    fn d1_accepts_order_insensitive_reduction() {
        let r =
            lint("fn f(m: HashMap<u32, u32>) -> u32 { m.values().copied().max().unwrap_or(0) }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_accepts_same_statement_sort() {
        let r = lint(
            "fn f(m: HashMap<u32, u32>) { let mut v: Vec<_> = m.values().collect(); v.sort(); }",
        );
        // The collect statement itself is accepted only when the sort
        // is in the same statement; split statements rely on BTreeMap.
        assert_eq!(rules_of(&r), vec!["D1"]);
        let r = lint("fn f(m: HashMap<u32, u32>) -> Vec<u32> { sorted(m.values().copied().collect::<Vec<_>>().sort()) }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_ignores_membership_only_usage() {
        let r =
            lint("fn f() { let mut s = HashSet::new(); s.insert(3); assert!(s.contains(&3)); }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_ignores_test_code() {
        let r = lint("#[cfg(test)]\nmod tests { fn f(m: HashMap<u32, u32>) { for v in m.values() { drop(v); } } }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d1_flags_collect_turbofish_binding() {
        let r = lint("fn f(xs: Vec<u32>) { let m = xs.iter().map(|x| (x, x)).collect::<HashMap<_, _>>(); for (k, v) in m.iter() { emit(k, v); } }");
        assert_eq!(rules_of(&r), vec!["D1"]);
    }

    #[test]
    fn d2_flags_instant_now_and_honors_annotation() {
        let r = lint("fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&r), vec!["D2"]);
        let r = lint("fn f() {\n    // lint: allow(D2) — drives Observe timing callbacks only\n    let t = Instant::now();\n}");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.annotations[0].used);
    }

    #[test]
    fn d3_flags_thread_rng_even_in_tests() {
        let r = lint("#[cfg(test)]\nmod tests { fn f() { let x = thread_rng(); } }");
        assert_eq!(rules_of(&r), vec!["D3"]);
    }

    #[test]
    fn d4_flags_unsafe_and_relaxed() {
        let r = lint("fn f(c: &AtomicUsize) { let v = c.fetch_add(1, Ordering::Relaxed); unsafe { hole(v) } }");
        assert_eq!(rules_of(&r), vec!["D4", "D4"]);
    }

    #[test]
    fn d4_annotation_covers_two_lines_below() {
        let r = lint(
            "// lint: allow(D4) — claim uniqueness needs only RMW atomicity\nfn f(c: &AtomicUsize) {\n    c.fetch_add(1, Ordering::Relaxed);\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d5_scoped_to_counter_files() {
        let class = FileClass {
            counter_scope: true,
            ..FileClass::default()
        };
        let r = lint_source("mem.rs", "fn f(x: u64) -> u32 { x as u32 }", &class);
        assert_eq!(rules_of(&r), vec!["D5"]);
        // Out of scope: same source, no counter_scope.
        let r = lint("fn f(x: u64) -> u32 { x as u32 }");
        assert!(r.findings.is_empty());
    }

    #[test]
    fn d6_scoped_to_hot_loop_files() {
        let class = FileClass {
            hot_loop: true,
            ..FileClass::default()
        };
        let src = "fn f(xs: &[u32]) -> Vec<u32> { let v: Vec<u32> = xs.iter().copied().collect(); let w = vec![0; 4]; let b = Box::new(w); let e: Vec<u32> = Vec::new(); v }";
        let r = lint_source("mem.rs", src, &class);
        assert_eq!(rules_of(&r), vec!["D6", "D6", "D6", "D6"]);
        // Out of scope: same source, no hot_loop.
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d6_accepts_with_capacity_and_honors_annotation() {
        let class = FileClass {
            hot_loop: true,
            ..FileClass::default()
        };
        let r = lint_source(
            "mem.rs",
            "fn f() -> Vec<u32> { Vec::with_capacity(1024) }",
            &class,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let r = lint_source(
            "mem.rs",
            "fn f() -> Vec<u32> {\n    // lint: allow(D6) — construction-time, never in the loop\n    Vec::new()\n}",
            &class,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.annotations[0].used);
    }

    #[test]
    fn d6_ignores_test_code_and_bench_files() {
        let class = FileClass {
            hot_loop: true,
            ..FileClass::default()
        };
        let r = lint_source(
            "mem.rs",
            "#[cfg(test)]\nmod tests { fn f() -> Vec<u32> { (0..4).collect() } }",
            &class,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let bench = FileClass {
            hot_loop: true,
            is_bench: true,
            ..FileClass::default()
        };
        let r = lint_source("mem.rs", "fn f() -> Vec<u32> { Vec::new() }", &bench);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn ann_flags_missing_justification_and_unknown_rule() {
        let r = lint("// lint: allow(D4)\nfn f() {}");
        assert_eq!(rules_of(&r), vec!["ANN"]);
        let r = lint("// lint: allow(D9) — bogus\nfn f() {}");
        assert_eq!(rules_of(&r), vec!["ANN"]);
    }

    #[test]
    fn annotations_are_inventoried() {
        let r = lint("// lint: allow(D4) — justified\nunsafe fn f() {}\n// lint: allow(D2) — never read\nfn g() {}");
        assert_eq!(r.annotations.len(), 2);
        assert!(r.annotations.iter().any(|a| a.rule == "D4" && a.used));
        assert!(r.annotations.iter().any(|a| a.rule == "D2" && !a.used));
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let r = lint("// HashMap Instant::now thread_rng unsafe Ordering::Relaxed\nfn f() { let s = \"Instant::now() unsafe\"; }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
