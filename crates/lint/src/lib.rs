//! `rh-lint` — the workspace determinism/soundness static analyzer.
//!
//! The repo's core contract — sequential ≡ sharded ≡ batched,
//! bit-identical at 1/2/N workers — is proven by example in the
//! determinism test suite; this crate proves its *preconditions* at
//! the source level, so a refactor cannot silently reintroduce a
//! source of nondeterminism that the sampled tests happen to miss.
//!
//! The engine is a hand-rolled token-level lexer ([`lexer`]) feeding a
//! tolerant recursive-descent parser ([`ast`]) and a workspace call
//! graph ([`graph`]).  Rules D1–D4 are token patterns; D5–D8 are
//! interprocedural, scoped per *function* by reachability over the
//! call graph rather than per file by hand-maintained inventories
//! (rule D9).  A sorted walk of every workspace source file ([`walk`])
//! produces a byte-stable table or JSON report ([`report`]).  See
//! `DESIGN.md` §16 for the rule catalog and the annotation grammar.
//!
//! ```
//! use rh_lint::{lint_source, FileClass};
//! let report = lint_source(
//!     "demo.rs",
//!     "fn f(m: std::collections::HashMap<u32, u32>) { for v in m.values() { drop(v); } }",
//!     &FileClass::default(),
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "D1");
//! ```

pub mod ast;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use graph::{derive_scopes, CallGraph, Scopes};
pub use report::LintReport;
pub use rules::{
    lint_parsed, lint_source, Annotation, FileClass, FileReport, FileScopes, Finding, FnScope,
    RULE_IDS, RULE_SUMMARIES,
};
pub use walk::{classify, relative, workspace_files};

use std::collections::BTreeSet;
use std::path::Path;

/// Lints every workspace source file under `root` and returns the
/// aggregated, sorted report.
///
/// This is the two-pass pipeline: every file is lexed and parsed once,
/// the workspace call graph is built over all of them, the rule scopes
/// are derived from reachability, and only then do the per-file rules
/// run.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    lint_filtered(root, None)
}

/// Incremental mode: lints only the `changed` repo-relative paths, but
/// still builds the call graph over the *whole* workspace — a changed
/// file's rule scopes depend on callers and callees that did not
/// change.  Changed paths outside the lint walk (non-`.rs`, excluded
/// dirs) are silently skipped; `files_scanned` counts only the files
/// actually linted.
pub fn lint_changed(root: &Path, changed: &[String]) -> std::io::Result<LintReport> {
    let filter: BTreeSet<String> = changed.iter().map(|c| c.replace('\\', "/")).collect();
    lint_filtered(root, Some(&filter))
}

fn lint_filtered(root: &Path, filter: Option<&BTreeSet<String>>) -> std::io::Result<LintReport> {
    let files = workspace_files(root)?;
    let mut rels = Vec::with_capacity(files.len());
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        rels.push(relative(root, path));
        sources.push(std::fs::read_to_string(path)?);
    }
    let classes: Vec<FileClass> = rels.iter().map(|rel| classify(rel)).collect();
    let lexed: Vec<lexer::Lexed> = sources.iter().map(|s| lexer::lex(s)).collect();
    let asts: Vec<ast::Ast> = lexed.iter().map(ast::parse_lexed).collect();

    let graph = CallGraph::build(
        rels.iter()
            .zip(&asts)
            .zip(&classes)
            .map(|((rel, ast), class)| (rel.clone(), ast, class.is_test || class.is_bench))
            .collect(),
    );
    let scopes = derive_scopes(&graph);

    let mut results = Vec::new();
    let mut scanned = 0u64;
    for i in 0..rels.len() {
        if let Some(filter) = filter {
            if !filter.contains(&rels[i]) {
                continue;
            }
        }
        scanned += 1;
        let file_scopes = FileScopes::from_graph(&graph, &scopes, i);
        results.push(lint_parsed(
            &rels[i],
            &lexed[i],
            &asts[i],
            &classes[i],
            &file_scopes,
        ));
    }
    Ok(LintReport::from_files(results, scanned))
}
