//! `rh-lint` — the workspace determinism/soundness static analyzer.
//!
//! The repo's core contract — sequential ≡ sharded ≡ batched,
//! bit-identical at 1/2/N workers — is proven by example in the
//! determinism test suite; this crate proves its *preconditions* at
//! the source level, so a refactor cannot silently reintroduce a
//! source of nondeterminism that the sampled tests happen to miss.
//!
//! The engine is a hand-rolled token-level scanner ([`lexer`]) feeding
//! a rule set of five invariants ([`rules`], D1–D5) over a sorted walk
//! of every workspace source file ([`walk`]), producing a byte-stable
//! table or JSON report ([`report`]).  See `DESIGN.md` §11 for the
//! rule catalog and the annotation grammar.
//!
//! ```
//! use rh_lint::{lint_source, FileClass};
//! let report = lint_source(
//!     "demo.rs",
//!     "fn f(m: std::collections::HashMap<u32, u32>) { for v in m.values() { drop(v); } }",
//!     &FileClass::default(),
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "D1");
//! ```

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::LintReport;
pub use rules::{
    lint_source, Annotation, FileClass, FileReport, Finding, RULE_IDS, RULE_SUMMARIES,
};
pub use walk::{classify, relative, workspace_files};

use std::path::Path;

/// Lints every workspace source file under `root` and returns the
/// aggregated, sorted report.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let files = workspace_files(root)?;
    let mut results = Vec::with_capacity(files.len());
    for path in &files {
        let rel = relative(root, path);
        let source = std::fs::read_to_string(path)?;
        results.push(lint_source(&rel, &source, &classify(&rel)));
    }
    Ok(LintReport::from_files(results, files.len() as u64))
}
