//! A lightweight item/expression AST over the token stream of
//! [`crate::lexer`], built by a tolerant recursive-descent parser.
//!
//! The parser exists for the interprocedural rules (D7–D9): they need
//! to know *which function* a token lives in, what that function
//! calls, and what its signature mentions — questions a flat token
//! scan cannot answer across function boundaries.  It is **not** a
//! full Rust parser; it recognizes exactly the shapes the rules
//! consume and degrades gracefully everywhere else:
//!
//! * **Items**: `fn` (name, signature idents, body), `impl` (self
//!   type, members), `mod`/`trait` (members), everything else skipped
//!   as opaque `Other` items.  `#[cfg(test)]` and `#[test]` mark the
//!   subtree as test code.
//! * **Expressions**: call-shaped forms (`path(..)`, `.method(..)`,
//!   `mac!(..)`), paths and field chains (`self.rngs`), literals,
//!   compound assignment operators and bare `=` assignment markers.
//!   Unknown operators are skipped; nesting (`(..)`, `[..]`, `{..}`)
//!   becomes a [`Group`](ExprKind::Group) with comma/semicolon-split
//!   statements.
//!
//! Every node carries a byte [`Span`] aligned on token boundaries:
//! re-lexing `&source[span]` yields exactly the node's own tokens
//! (pinned by the `ast_roundtrip` proptest).  Rules use spans to scope
//! token-level checks (D5/D6) to the functions the call graph puts in
//! scope, which is what replaced the hand-maintained file inventories
//! of PR 5–9.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// A half-open byte range into the parsed source, token-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// Whether `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether byte offset `at` lies inside the span.
    pub fn contains_offset(&self, at: u32) -> bool {
        self.start <= at && at < self.end
    }
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct Ast {
    pub items: Vec<Item>,
}

/// What an item is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Mod,
    Trait,
    /// Structs, enums, consts, uses, macros — opaque to the rules.
    Other,
}

/// One item.  `impl`/`mod`/`trait` items carry their members in
/// `children`; `fn` items carry their `body` and `sig_idents`.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Function/mod/trait name; for impls, the self type.
    pub name: String,
    /// For `impl Trait for Type`, the trait path's last segment.
    pub trait_name: Option<String>,
    pub line: u32,
    pub span: Span,
    /// Marked `#[test]`, or nested under a `#[cfg(test)]` subtree.
    pub is_test: bool,
    /// Every identifier in the fn's generics, parameters, return type
    /// and where clause — enough for "takes an `ActionSink`" tests
    /// without modeling types.
    pub sig_idents: Vec<String>,
    pub body: Option<Block>,
    pub children: Vec<Item>,
}

/// A braced block: `{ stmts }`.
#[derive(Debug)]
pub struct Block {
    pub span: Span,
    pub stmts: Vec<Stmt>,
}

/// One statement: a flat sequence of the expressions at its top
/// nesting level, split on `;` (and `,` inside groups).
#[derive(Debug, Default)]
pub struct Stmt {
    pub exprs: Vec<Expr>,
}

/// The expression shapes the rules consume.
#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c(args)` — a path-call; `path` holds the segments.
    Call {
        path: Vec<String>,
        turbofish: Vec<String>,
    },
    /// `.method(args)` — receiver is the preceding expr in the stmt.
    MethodCall {
        method: String,
        turbofish: Vec<String>,
    },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro { name: String },
    /// A bare path or field chain (`self.rngs`, `Ordering::Relaxed`).
    Path { segments: Vec<String> },
    /// An opaque literal.
    Lit,
    /// `+=`, `-=`, `*=`, … at statement level.
    CompoundAssign { op: String },
    /// A bare `=` at statement level.
    Assign,
    /// The `return` keyword.
    Return,
    /// `( … )`, `[ … ]`, `{ … }` nesting.
    Group,
}

/// One expression node; `args` holds call arguments or group contents.
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
    pub span: Span,
    pub args: Vec<Stmt>,
}

impl Expr {
    /// The called name, if this expr is call-shaped: the last path
    /// segment of a `Call`, the method of a `MethodCall`.
    pub fn call_name(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Call { path, .. } => path.last().map(String::as_str),
            ExprKind::MethodCall { method, .. } => Some(method.as_str()),
            _ => None,
        }
    }
}

/// Parses `source`, lexing it first.
pub fn parse(source: &str) -> Ast {
    parse_lexed(&lex(source))
}

/// Parses an already-lexed token stream.
pub fn parse_lexed(lexed: &Lexed) -> Ast {
    let mut parser = Parser {
        t: &lexed.tokens,
        i: 0,
    };
    Ast {
        items: parser.items(false, None),
    }
}

/// Walks every `fn` item in the AST (including impl/mod/trait
/// members), with the enclosing impl's self type (or trait's name).
pub fn for_each_fn<'a>(ast: &'a Ast, f: &mut impl FnMut(&'a Item, Option<&'a str>)) {
    fn rec<'a>(items: &'a [Item], self_ty: Option<&'a str>, f: &mut impl FnMut(&'a Item, Option<&'a str>)) {
        for item in items {
            match item.kind {
                ItemKind::Fn => f(item, self_ty),
                ItemKind::Impl | ItemKind::Trait => {
                    rec(&item.children, Some(item.name.as_str()), f);
                }
                ItemKind::Mod => rec(&item.children, None, f),
                ItemKind::Other => {}
            }
        }
    }
    rec(&ast.items, None, f);
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
}

/// Identifiers that begin a path expression.
fn starts_path(tok: &Token) -> bool {
    tok.kind == TokenKind::Ident
}

const COMPOUND_ASSIGN: [&str; 8] = ["+=", "-=", "*=", "/=", "%=", "^=", "&=", "|="];

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.t.get(self.i + ahead)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let tok = self.t.get(self.i);
        if tok.is_some() {
            self.i += 1;
        }
        tok
    }

    fn at(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.text == text)
    }

    /// Byte offset one past the last consumed token.
    fn end_offset(&self) -> u32 {
        if self.i == 0 {
            0
        } else {
            self.t[self.i - 1].end
        }
    }

    // ----- items ---------------------------------------------------

    /// Parses items until end of input or a closing `}` (when `closed`
    /// is true, the `}` is consumed by the caller's group logic).
    fn items(&mut self, in_test: bool, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(tok) = self.peek(0) {
            if closer.is_some_and(|close| tok.text == close) {
                break;
            }
            // Attributes: `#[…]` / `#![…]`; detect cfg(test) / test.
            if tok.text == "#" {
                let test_attr = self.attribute();
                if test_attr {
                    // The attribute marks the *next* item.
                    if let Some(mut item) = self.item(true) {
                        item.is_test = true;
                        items.push(item);
                    }
                }
                continue;
            }
            match self.item(in_test) {
                Some(item) => items.push(item),
                None => break,
            }
        }
        for item in &mut items {
            if in_test {
                item.is_test = true;
            }
        }
        items
    }

    /// Consumes one attribute; returns whether it was `#[cfg(test)]`
    /// or `#[test]`.
    fn attribute(&mut self) -> bool {
        self.bump(); // `#`
        if self.at("!") {
            self.bump();
        }
        if !self.at("[") {
            return false;
        }
        let start = self.i;
        self.skip_delimited("[", "]");
        let body = &self.t[start..self.i];
        let is_cfg_test = body.len() >= 5
            && body[1].text == "cfg"
            && body.iter().any(|t| t.text == "test");
        let is_test_attr = body.len() == 3 && body[1].text == "test";
        is_cfg_test || is_test_attr
    }

    /// Parses one item, or skips one token if nothing item-like is
    /// here (tolerance: half-edited files still parse).
    fn item(&mut self, in_test: bool) -> Option<Item> {
        let start_tok = self.peek(0)?;
        let start = start_tok.start;
        let line = start_tok.line;

        // Qualifiers before the keyword.
        let mut j = 0;
        loop {
            let tok = self.peek(j)?;
            match tok.text.as_str() {
                "pub" => {
                    j += 1;
                    if self.peek(j).is_some_and(|t| t.text == "(") {
                        // `pub(crate)` — skip the group.
                        let mut depth = 0;
                        loop {
                            let t = self.peek(j)?;
                            match t.text.as_str() {
                                "(" => depth += 1,
                                ")" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                }
                "const" => {
                    // `const fn` is a qualifier; `const NAME` is an item.
                    if self.peek(j + 1).is_some_and(|t| t.text == "fn") {
                        j += 1;
                    } else {
                        break;
                    }
                }
                "async" | "unsafe" | "default" => j += 1,
                "extern" => {
                    j += 1;
                    if self.peek(j).is_some_and(|t| t.kind == TokenKind::Literal) {
                        j += 1;
                    }
                }
                _ => break,
            }
        }

        let kw = self.peek(j)?;
        match kw.text.as_str() {
            "fn" => {
                for _ in 0..j {
                    self.bump();
                }
                self.parse_fn(start, line, in_test)
            }
            "impl" => {
                for _ in 0..j {
                    self.bump();
                }
                self.parse_impl(start, line, in_test)
            }
            "mod" => {
                for _ in 0..j {
                    self.bump();
                }
                self.parse_mod(start, line, in_test)
            }
            "trait" => {
                for _ in 0..j {
                    self.bump();
                }
                self.parse_trait(start, line, in_test)
            }
            _ => {
                for _ in 0..j {
                    self.bump();
                }
                self.skip_other_item();
                Some(Item {
                    kind: ItemKind::Other,
                    name: String::new(),
                    trait_name: None,
                    line,
                    span: Span {
                        start,
                        end: self.end_offset(),
                    },
                    is_test: in_test,
                    sig_idents: Vec::new(),
                    body: None,
                    children: Vec::new(),
                })
            }
        }
    }

    /// Skips a non-fn/impl/mod/trait item: to the first `;` at depth 0,
    /// or past its top-level brace group (struct/enum bodies, macros).
    fn skip_other_item(&mut self) {
        let mut depth: i32 = 0;
        while let Some(tok) = self.bump() {
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    self.finish_delimited("{", "}");
                    if depth == 0 {
                        // `struct Foo { … }` ends with its body…
                        // unless a `;` follows immediately (rare).
                        if self.at(";") {
                            self.bump();
                        }
                        return;
                    }
                }
                ";" if depth <= 0 => return,
                _ => {}
            }
        }
    }

    /// Cursor sits at `fn`.
    fn parse_fn(&mut self, start: u32, line: u32, in_test: bool) -> Option<Item> {
        self.bump(); // `fn`
        let name = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => String::new(),
        };
        if !name.is_empty() {
            self.bump();
        }
        let mut sig_idents = Vec::new();
        if self.at("<") {
            self.angles(&mut sig_idents);
        }
        if self.at("(") {
            let from = self.i;
            self.skip_delimited("(", ")");
            for tok in &self.t[from..self.i] {
                if tok.kind == TokenKind::Ident {
                    sig_idents.push(tok.text.clone());
                }
            }
        }
        // Return type + where clause: everything up to `{` or `;`.
        while let Some(tok) = self.peek(0) {
            match tok.text.as_str() {
                "{" | ";" => break,
                "<" => {
                    self.angles(&mut sig_idents);
                    continue;
                }
                "(" => {
                    let from = self.i;
                    self.skip_delimited("(", ")");
                    for t in &self.t[from..self.i] {
                        if t.kind == TokenKind::Ident {
                            sig_idents.push(t.text.clone());
                        }
                    }
                    continue;
                }
                _ => {
                    if tok.kind == TokenKind::Ident {
                        sig_idents.push(tok.text.clone());
                    }
                    self.bump();
                }
            }
        }
        let body = if self.at("{") {
            Some(self.block())
        } else {
            if self.at(";") {
                self.bump();
            }
            None
        };
        Some(Item {
            kind: ItemKind::Fn,
            name,
            trait_name: None,
            line,
            span: Span {
                start,
                end: self.end_offset(),
            },
            is_test: in_test,
            sig_idents,
            body,
            children: Vec::new(),
        })
    }

    /// Cursor sits at `impl`.
    fn parse_impl(&mut self, start: u32, line: u32, in_test: bool) -> Option<Item> {
        self.bump(); // `impl`
        let mut scratch = Vec::new();
        if self.at("<") {
            self.angles(&mut scratch);
        }
        // Tokens up to `{`: `TraitPath for TypePath where …` or just
        // `TypePath …`.  The self type is the first ident after `for`
        // when present, else the first ident of the head.
        let mut head: Vec<&'a Token> = Vec::new();
        let mut for_at: Option<usize> = None;
        while let Some(tok) = self.peek(0) {
            match tok.text.as_str() {
                "{" => break,
                "<" => {
                    self.angles(&mut scratch);
                    continue;
                }
                "(" => {
                    self.skip_delimited("(", ")");
                    continue;
                }
                "where" => {
                    // Where clause runs to the `{`.
                    while let Some(t) = self.peek(0) {
                        if t.text == "{" {
                            break;
                        }
                        if t.text == "<" {
                            self.angles(&mut scratch);
                        } else {
                            self.bump();
                        }
                    }
                    break;
                }
                _ => {
                    if tok.kind == TokenKind::Ident && tok.text == "for" {
                        for_at = Some(head.len());
                    }
                    head.push(tok);
                    self.bump();
                }
            }
        }
        let pick_first_ident = |slice: &[&Token]| -> String {
            slice
                .iter()
                .find(|t| t.kind == TokenKind::Ident && t.text != "dyn" && t.text != "for")
                .map_or(String::new(), |t| t.text.clone())
        };
        let (name, trait_name) = match for_at {
            Some(at) => {
                // Type path after `for`, trait path before it; the
                // type's *last* plain segment is the nominal type
                // (`dram_sim::BankId` → `BankId`).
                let ty = head[at + 1..]
                    .iter()
                    .rfind(|t| t.kind == TokenKind::Ident && t.text != "dyn")
                    .map_or(String::new(), |t| t.text.clone());
                let tr = head[..at]
                    .iter()
                    .rfind(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                (ty, tr)
            }
            None => (pick_first_ident(&head), None),
        };
        let children = if self.at("{") {
            self.bump();
            let children = self.items(in_test, Some("}"));
            if self.at("}") {
                self.bump();
            }
            children
        } else {
            Vec::new()
        };
        Some(Item {
            kind: ItemKind::Impl,
            name,
            trait_name,
            line,
            span: Span {
                start,
                end: self.end_offset(),
            },
            is_test: in_test,
            sig_idents: Vec::new(),
            body: None,
            children,
        })
    }

    /// Cursor sits at `mod`.
    fn parse_mod(&mut self, start: u32, line: u32, in_test: bool) -> Option<Item> {
        self.bump(); // `mod`
        let name = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => String::new(),
        };
        if !name.is_empty() {
            self.bump();
        }
        let children = if self.at("{") {
            self.bump();
            let children = self.items(in_test, Some("}"));
            if self.at("}") {
                self.bump();
            }
            children
        } else {
            if self.at(";") {
                self.bump();
            }
            Vec::new()
        };
        Some(Item {
            kind: ItemKind::Mod,
            name,
            trait_name: None,
            line,
            span: Span {
                start,
                end: self.end_offset(),
            },
            is_test: in_test,
            sig_idents: Vec::new(),
            body: None,
            children,
        })
    }

    /// Cursor sits at `trait`.
    fn parse_trait(&mut self, start: u32, line: u32, in_test: bool) -> Option<Item> {
        self.bump(); // `trait`
        let name = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => String::new(),
        };
        if !name.is_empty() {
            self.bump();
        }
        let mut scratch = Vec::new();
        while let Some(tok) = self.peek(0) {
            match tok.text.as_str() {
                "{" | ";" => break,
                "<" => {
                    self.angles(&mut scratch);
                    continue;
                }
                _ => {
                    self.bump();
                }
            }
        }
        let children = if self.at("{") {
            self.bump();
            let children = self.items(in_test, Some("}"));
            if self.at("}") {
                self.bump();
            }
            children
        } else {
            if self.at(";") {
                self.bump();
            }
            Vec::new()
        };
        Some(Item {
            kind: ItemKind::Trait,
            name,
            trait_name: None,
            line,
            span: Span {
                start,
                end: self.end_offset(),
            },
            is_test: in_test,
            sig_idents: Vec::new(),
            body: None,
            children,
        })
    }

    // ----- delimiters ----------------------------------------------

    /// Cursor sits at `open`; consumes through the matching `close`.
    fn skip_delimited(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(tok) = self.bump() {
            if tok.text == open {
                depth += 1;
            } else if tok.text == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Cursor is *past* an `open` already consumed elsewhere; consumes
    /// through the matching `close` starting from depth 1.
    fn finish_delimited(&mut self, open: &str, close: &str) {
        let mut depth = 1usize;
        while let Some(tok) = self.bump() {
            if tok.text == open {
                depth += 1;
            } else if tok.text == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Cursor sits at `<`; consumes a balanced angle group, collecting
    /// the identifiers inside.  `->`/`=>`/`>=`/`<=` are single tokens,
    /// so the only `>` forms seen here are real closers.
    fn angles(&mut self, idents: &mut Vec<String>) {
        let mut depth = 0i32;
        while let Some(tok) = self.bump() {
            match tok.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return;
                    }
                }
                "(" => {
                    self.finish_delimited("(", ")");
                }
                "[" => {
                    self.finish_delimited("[", "]");
                }
                _ => {
                    if tok.kind == TokenKind::Ident {
                        idents.push(tok.text.clone());
                    }
                }
            }
        }
    }

    // ----- expressions ---------------------------------------------

    /// Cursor sits at `{`; parses a block.
    fn block(&mut self) -> Block {
        let start = self.peek(0).map_or(0, |t| t.start);
        self.bump(); // `{`
        let stmts = self.stmts("}");
        if self.at("}") {
            self.bump();
        }
        Block {
            span: Span {
                start,
                end: self.end_offset(),
            },
            stmts,
        }
    }

    /// Parses statements until the closing delimiter (not consumed).
    fn stmts(&mut self, close: &str) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        let mut current = Stmt::default();
        while let Some(tok) = self.peek(0) {
            if tok.text == close {
                break;
            }
            match tok.text.as_str() {
                ";" | "," => {
                    self.bump();
                    if !current.exprs.is_empty() {
                        stmts.push(std::mem::take(&mut current));
                    }
                }
                // A nested item inside a body: parse it as opaque so
                // its braces stay balanced (`fn` inside `fn` is rare
                // and the rules treat the outer fn as owning it).
                "#" => {
                    self.attribute();
                }
                "(" => {
                    let expr = self.group("(", ")");
                    current.exprs.push(expr);
                    self.chain(&mut current);
                }
                "[" => {
                    let expr = self.group("[", "]");
                    current.exprs.push(expr);
                    self.chain(&mut current);
                }
                "{" => {
                    let expr = self.group("{", "}");
                    current.exprs.push(expr);
                    self.chain(&mut current);
                }
                ")" | "]" | "}" => {
                    // Unbalanced closer: bail to the caller.
                    break;
                }
                "=" => {
                    let line = tok.line;
                    let span = Span {
                        start: tok.start,
                        end: tok.end,
                    };
                    self.bump();
                    current.exprs.push(Expr {
                        kind: ExprKind::Assign,
                        line,
                        span,
                        args: Vec::new(),
                    });
                }
                text if COMPOUND_ASSIGN.contains(&text) => {
                    let line = tok.line;
                    let span = Span {
                        start: tok.start,
                        end: tok.end,
                    };
                    let op = tok.text.clone();
                    self.bump();
                    current.exprs.push(Expr {
                        kind: ExprKind::CompoundAssign { op },
                        line,
                        span,
                        args: Vec::new(),
                    });
                }
                _ => {
                    if tok.kind == TokenKind::Ident && tok.text == "return" {
                        current.exprs.push(Expr {
                            kind: ExprKind::Return,
                            line: tok.line,
                            span: Span {
                                start: tok.start,
                                end: tok.end,
                            },
                            args: Vec::new(),
                        });
                        self.bump();
                    } else if starts_path(tok) {
                        self.path_expr(&mut current);
                    } else if tok.kind == TokenKind::Literal {
                        current.exprs.push(Expr {
                            kind: ExprKind::Lit,
                            line: tok.line,
                            span: Span {
                                start: tok.start,
                                end: tok.end,
                            },
                            args: Vec::new(),
                        });
                        self.bump();
                        self.chain(&mut current);
                    } else {
                        // Operators, lifetimes, `&`, `?`, `|`, … are
                        // transparent to the rules.
                        self.bump();
                    }
                }
            }
        }
        if !current.exprs.is_empty() {
            stmts.push(current);
        }
        stmts
    }

    /// Cursor sits at an opening delimiter; builds a Group expr.
    fn group(&mut self, open: &str, close: &str) -> Expr {
        let start_tok = self.peek(0).expect("caller checked");
        let start = start_tok.start;
        let line = start_tok.line;
        self.bump();
        let stmts = self.stmts(close);
        if self.at(close) {
            self.bump();
        }
        let _ = open;
        Expr {
            kind: ExprKind::Group,
            line,
            span: Span {
                start,
                end: self.end_offset(),
            },
            args: stmts,
        }
    }

    /// Cursor sits at an identifier: parses a path, then dispatches to
    /// call/macro/field forms and trailing method chains.
    fn path_expr(&mut self, current: &mut Stmt) {
        let first = self.peek(0).expect("caller checked");
        let start = first.start;
        let line = first.line;
        let mut segments = vec![first.text.clone()];
        self.bump();
        // `a::b::c`, with optional turbofish at the end.
        let mut turbofish = Vec::new();
        while self.at("::") {
            match self.peek(1) {
                Some(t) if t.kind == TokenKind::Ident => {
                    self.bump();
                    segments.push(t.text.clone());
                    self.bump();
                }
                Some(t) if t.text == "<" => {
                    self.bump(); // `::`
                    self.angles(&mut turbofish);
                    break;
                }
                _ => {
                    self.bump();
                    break;
                }
            }
        }
        if self.at("(") {
            let args_group = self.group("(", ")");
            current.exprs.push(Expr {
                kind: ExprKind::Call {
                    path: segments,
                    turbofish,
                },
                line,
                span: Span {
                    start,
                    end: self.end_offset(),
                },
                args: args_group.args,
            });
            self.chain(current);
            return;
        }
        if self.at("!") {
            // Macro invocation (only when a delimiter follows — `a !=`
            // is a single `!=` token, so no ambiguity here).
            if self
                .peek(1)
                .is_some_and(|t| t.text == "(" || t.text == "[" || t.text == "{")
            {
                self.bump(); // `!`
                let (open, close) = match self.peek(0).map(|t| t.text.as_str()) {
                    Some("(") => ("(", ")"),
                    Some("[") => ("[", "]"),
                    _ => ("{", "}"),
                };
                let args_group = self.group(open, close);
                current.exprs.push(Expr {
                    kind: ExprKind::Macro {
                        name: segments.pop().unwrap_or_default(),
                    },
                    line,
                    span: Span {
                        start,
                        end: self.end_offset(),
                    },
                    args: args_group.args,
                });
                self.chain(current);
                return;
            }
        }
        // Bare path; absorb field accesses (`self.rngs`) so the chain
        // handler sees one receiver path, but stop at method calls.
        while self.at(".") {
            match self.peek(1) {
                Some(t)
                    if t.kind == TokenKind::Ident
                        && self.peek(2).is_none_or(|n| n.text != "(" && n.text != "::") =>
                {
                    self.bump(); // `.`
                    segments.push(t.text.clone());
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Literal => {
                    // Tuple index `pair.0`.
                    self.bump();
                    self.bump();
                    let _ = t;
                }
                _ => break,
            }
        }
        current.exprs.push(Expr {
            kind: ExprKind::Path { segments },
            line,
            span: Span {
                start,
                end: self.end_offset(),
            },
            args: Vec::new(),
        });
        self.chain(current);
    }

    /// Parses a trailing `.method(args)` chain after any primary.
    fn chain(&mut self, current: &mut Stmt) {
        while self.at(".") {
            let Some(next) = self.peek(1) else { return };
            if next.kind == TokenKind::Literal {
                // Tuple index.
                self.bump();
                self.bump();
                continue;
            }
            if next.kind != TokenKind::Ident {
                return;
            }
            let method = next.text.clone();
            let line = next.line;
            let start = self.peek(0).map_or(0, |t| t.start);
            // `.await` and plain field hops continue the chain.
            let mut after = 2;
            let mut turbofish = Vec::new();
            let has_turbofish = self.peek(2).is_some_and(|t| t.text == "::")
                && self.peek(3).is_some_and(|t| t.text == "<");
            if has_turbofish {
                self.bump(); // `.`
                self.bump(); // ident
                self.bump(); // `::`
                self.angles(&mut turbofish);
                after = 0;
            }
            let calls = self.peek(after).is_some_and(|t| t.text == "(");
            if calls {
                if !has_turbofish {
                    self.bump(); // `.`
                    self.bump(); // ident
                }
                let args_group = self.group("(", ")");
                current.exprs.push(Expr {
                    kind: ExprKind::MethodCall { method, turbofish },
                    line,
                    span: Span {
                        start,
                        end: self.end_offset(),
                    },
                    args: args_group.args,
                });
            } else {
                if !has_turbofish {
                    // A plain field hop after a non-path primary:
                    // consume and continue.
                    self.bump();
                    self.bump();
                }
                continue;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(ast: &Ast) -> Vec<(String, Option<String>)> {
        let mut out = Vec::new();
        for_each_fn(ast, &mut |item, self_ty| {
            out.push((item.name.clone(), self_ty.map(str::to_string)));
        });
        out
    }

    /// All call-shaped names in one fn body, in order.
    fn calls_of(item: &Item) -> Vec<String> {
        fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
            for stmt in stmts {
                for expr in &stmt.exprs {
                    if let Some(name) = expr.call_name() {
                        out.push(name.to_string());
                    }
                    walk(&expr.args, out);
                }
            }
        }
        let mut out = Vec::new();
        if let Some(body) = &item.body {
            walk(&body.stmts, &mut out);
        }
        out
    }

    fn first_fn<'a>(ast: &'a Ast, name: &str) -> &'a Item {
        let mut found = None;
        for_each_fn(ast, &mut |item, _| {
            if item.name == name && found.is_none() {
                found = Some(item as *const Item);
            }
        });
        // lint: allow(D4) — test helper; the pointer was just taken
        // from a live borrow of `ast` and is immediately re-borrowed.
        unsafe { &*found.expect("fn not found") }
    }

    #[test]
    fn items_and_impls_are_discovered() {
        let ast = parse(
            "pub struct S { x: u32 }\n\
             impl S { pub fn get(&self) -> u32 { self.x } }\n\
             impl Display for S { fn fmt(&self, f: &mut Formatter) -> fmt::Result { todo!() } }\n\
             mod inner { pub fn helper() {} }\n\
             trait T { fn req(&self); fn prov(&self) { self.req() } }\n\
             fn free() {}",
        );
        assert_eq!(
            fns(&ast),
            vec![
                ("get".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
                ("helper".into(), None),
                ("req".into(), Some("T".into())),
                ("prov".into(), Some("T".into())),
                ("free".into(), None),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_records_both_names() {
        let ast = parse("impl Mitigation for Para { fn on_batch(&mut self) {} }");
        let item = &ast.items[0];
        assert_eq!(item.kind, ItemKind::Impl);
        assert_eq!(item.name, "Para");
        assert_eq!(item.trait_name.as_deref(), Some("Mitigation"));
    }

    #[test]
    fn qualified_impl_paths_take_the_last_segment() {
        let ast = parse("impl rand::RngCore for MyRng { fn next_u64(&mut self) -> u64 { 0 } }");
        assert_eq!(ast.items[0].name, "MyRng");
        assert_eq!(ast.items[0].trait_name.as_deref(), Some("RngCore"));
    }

    #[test]
    fn signature_idents_are_collected() {
        let ast = parse(
            "fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {}",
        );
        let item = first_fn(&ast, "on_batch");
        assert!(item.sig_idents.iter().any(|s| s == "ActionSink"));
        assert!(item.sig_idents.iter().any(|s| s == "EventBatch"));
    }

    #[test]
    fn calls_method_calls_and_macros_are_seen() {
        let ast = parse(
            "fn f(&mut self) { let w = self.rngs.draw_block(bank, n); helper(w); Type::assoc(1); assert!(ok); }",
        );
        let item = first_fn(&ast, "f");
        assert_eq!(calls_of(item), vec!["draw_block", "helper", "assoc"]);
    }

    #[test]
    fn field_chains_become_receiver_paths() {
        let ast = parse("fn f(&mut self) { self.rngs.draw_block(bank, n); }");
        let item = first_fn(&ast, "f");
        let stmt = &item.body.as_ref().unwrap().stmts[0];
        match &stmt.exprs[0].kind {
            ExprKind::Path { segments } => assert_eq!(segments, &["self", "rngs"]),
            other => panic!("expected receiver path, got {other:?}"),
        }
        match &stmt.exprs[1].kind {
            ExprKind::MethodCall { method, .. } => assert_eq!(method, "draw_block"),
            other => panic!("expected method call, got {other:?}"),
        }
    }

    #[test]
    fn compound_assign_and_assign_markers() {
        let ast = parse("fn f(&mut self, x: f64) { self.mean += x; self.last = x; }");
        let item = first_fn(&ast, "f");
        let stmts = &item.body.as_ref().unwrap().stmts;
        assert!(stmts[0]
            .exprs
            .iter()
            .any(|e| matches!(&e.kind, ExprKind::CompoundAssign { op } if op == "+=")));
        assert!(stmts[1].exprs.iter().any(|e| matches!(e.kind, ExprKind::Assign)));
    }

    #[test]
    fn turbofish_idents_are_captured() {
        let ast = parse("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        let item = first_fn(&ast, "f");
        let mut found = false;
        fn walk(stmts: &[Stmt], found: &mut bool) {
            for stmt in stmts {
                for expr in &stmt.exprs {
                    if let ExprKind::MethodCall { method, turbofish } = &expr.kind {
                        if method == "sum" && turbofish.iter().any(|t| t == "f64") {
                            *found = true;
                        }
                    }
                    walk(&expr.args, found);
                }
            }
        }
        walk(&item.body.as_ref().unwrap().stmts, &mut found);
        assert!(found, "sum::<f64> turbofish not captured");
    }

    #[test]
    fn cfg_test_marks_the_subtree() {
        let ast = parse(
            "fn prod() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn case() {} }",
        );
        let mut seen = Vec::new();
        for_each_fn(&ast, &mut |item, _| {
            seen.push((item.name.clone(), item.is_test));
        });
        assert_eq!(
            seen,
            vec![
                ("prod".into(), false),
                ("helper".into(), true),
                ("case".into(), true),
            ]
        );
    }

    #[test]
    fn test_attribute_marks_a_single_fn() {
        let ast = parse("#[test]\nfn case() {}\nfn prod() {}");
        let mut seen = Vec::new();
        for_each_fn(&ast, &mut |item, _| {
            seen.push((item.name.clone(), item.is_test));
        });
        assert_eq!(seen, vec![("case".into(), true), ("prod".into(), false)]);
    }

    #[test]
    fn ranges_do_not_fake_assignments() {
        let ast = parse("fn f(n: u64) -> u64 { let mut s = 0; for i in 0..=n { s += i; } s }");
        let item = first_fn(&ast, "f");
        // Exactly one Assign marker (the `let s = 0`), none from `..=`.
        fn count_assigns(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .flat_map(|s| &s.exprs)
                .map(|e| {
                    usize::from(matches!(e.kind, ExprKind::Assign)) + count_assigns(&e.args)
                })
                .sum()
        }
        assert_eq!(count_assigns(&item.body.as_ref().unwrap().stmts), 1);
    }

    #[test]
    fn spans_cover_their_tokens() {
        let src = "fn f(a: u32) -> u32 { g(a) + 1 }\nfn g(x: u32) -> u32 { x }";
        let ast = parse(src);
        assert_eq!(ast.items.len(), 2);
        let f = &ast.items[0];
        assert_eq!(&src[f.span.start as usize..f.span.end as usize], "fn f(a: u32) -> u32 { g(a) + 1 }");
        let body = f.body.as_ref().unwrap();
        assert_eq!(
            &src[body.span.start as usize..body.span.end as usize],
            "{ g(a) + 1 }"
        );
    }

    #[test]
    fn tolerates_unbalanced_input() {
        // Must not panic or loop forever.
        let _ = parse("fn broken( { ) } impl X fn ");
        let _ = parse("} } )");
        let _ = parse("fn f() { loop { }");
    }
}
