//! A hand-rolled token-level Rust lexer.
//!
//! The linter never needs a full parse: every rule in [`crate::rules`]
//! is a pattern over identifier/punctuation sequences, so the lexer
//! only has to be *sound* about what is code and what is not — string
//! literals, character literals, comments (line and nested block),
//! raw strings, byte strings and lifetimes must never leak their
//! contents into the code-token stream, or a doc comment mentioning
//! `HashMap` would trip rule D1.
//!
//! Comments are kept on a separate channel (with line numbers) because
//! the allow-annotation grammar of [`crate::rules::Annotation`] lives
//! inside them.

/// What a code token is.  The linter only distinguishes words from
/// punctuation: literals are opaque (their text is not searched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `for`, ...).
    Ident,
    /// A punctuation token; multi-character operators `::`, `->` and
    /// `=>` are single tokens, everything else is one character.
    Punct,
    /// A string/char/byte/numeric literal, kept opaque.
    Literal,
    /// A lifetime (`'a`, `'static`), kept distinct from char literals.
    Lifetime,
}

/// One code token with its 1-based source line and byte span.
///
/// Spans are half-open byte ranges into the lexed source
/// (`&source[start as usize..end as usize]` is the token's spelling,
/// except for opaque literals whose `text` is a placeholder).  The
/// parser in [`crate::ast`] builds every AST node span out of token
/// spans, so node ranges are always token-aligned: re-lexing a node's
/// byte range yields exactly the node's own tokens.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
}

/// One comment (line or block) with the 1-based line it starts on.
/// Block comments spanning several lines yield one entry per line so
/// annotations inside them still carry an accurate line number.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexer output: code tokens and comments on separate channels.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The token following `index`, if any.
    pub fn next_of(&self, index: usize) -> Option<&Token> {
        self.tokens.get(index + 1)
    }
}

/// Lexes `source` into code tokens and comments.
///
/// The lexer is total: unexpected bytes become single-character punct
/// tokens rather than errors, so a half-edited file still lints.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        byte: 0,
        tok_start: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    /// Byte offset of `pos` into the original source.
    byte: usize,
    /// Byte offset where the token being lexed began.
    tok_start: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            self.byte += c.len_utf8();
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        let start = u32::try_from(self.tok_start).unwrap_or(u32::MAX);
        let end = u32::try_from(self.byte).unwrap_or(u32::MAX);
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            start,
            end,
        });
    }

    /// Consumes `n` characters and pushes them as one punct token.
    fn punct(&mut self, n: usize, text: &str, line: u32) {
        for _ in 0..n {
            self.bump();
        }
        self.push(TokenKind::Punct, text.into(), line);
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            self.tok_start = self.byte;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                ':' if self.peek(1) == Some(':') => self.punct(2, "::", line),
                '-' if self.peek(1) == Some('>') => self.punct(2, "->", line),
                '=' if self.peek(1) == Some('>') => self.punct(2, "=>", line),
                '=' if self.peek(1) == Some('=') => self.punct(2, "==", line),
                '!' if self.peek(1) == Some('=') => self.punct(2, "!=", line),
                '<' if self.peek(1) == Some('=') => self.punct(2, "<=", line),
                '>' if self.peek(1) == Some('=') => self.punct(2, ">=", line),
                '.' if self.peek(1) == Some('.') => {
                    // Range operators, so a bare `=` token always means
                    // assignment to the parser: `..=` must not shed a
                    // loose `=`, and `...` is the legacy spelling.
                    match self.peek(2) {
                        Some('=') => self.punct(3, "..=", line),
                        Some('.') => self.punct(3, "...", line),
                        _ => self.punct(2, "..", line),
                    }
                }
                '+' | '-' | '*' | '%' | '^' | '&' | '|' if self.peek(1) == Some('=') => {
                    let text = format!("{c}=");
                    self.punct(2, &text, line);
                }
                '/' if self.peek(1) == Some('=') => self.punct(2, "/=", line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        // Nested block comments, split per line so annotation line
        // numbers stay exact.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::from("/*");
        let mut line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                text.push_str("*/");
                if depth == 0 {
                    break;
                }
            } else if c == '\n' {
                self.out.comments.push(Comment {
                    text: std::mem::take(&mut text),
                    line,
                });
                self.bump();
                line = self.line;
            } else {
                text.push(c);
                self.bump();
            }
        }
        if !text.is_empty() {
            self.out.comments.push(Comment { text, line });
        }
    }

    /// `"..."` with escapes.
    fn string(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, "\"...\"".into(), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` and raw
    /// identifiers `r#ident`.  Returns false when the leading `r`/`b`
    /// is just the start of a plain identifier.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let is_raw =
            self.peek(0) == Some('r') || (self.peek(0) == Some('b') && self.peek(1) == Some('r'));
        let ahead = if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            2
        } else {
            1
        };
        // Count `#`s after the prefix.
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some('"') => {}
            Some(c)
                if hashes == 1
                    && ahead == 1
                    && self.peek(0) == Some('r')
                    && (c.is_alphabetic() || c == '_') =>
            {
                // Raw identifier r#ident: skip `r#`, lex the ident.
                self.bump();
                self.bump();
                self.ident(line);
                return true;
            }
            _ => return false,
        }
        // Some('"'): consume prefix, hashes and opening quote.
        for _ in 0..(ahead + hashes + 1) {
            self.bump();
        }
        if hashes == 0 {
            // Without hashes the literal ends at the next `"`; raw
            // strings have no escapes, byte strings do.
            while let Some(c) = self.bump() {
                match c {
                    '\\' if !is_raw => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        } else {
            // Terminated by `"` followed by `hashes` `#`s.
            loop {
                match self.bump() {
                    None => break,
                    Some('"') => {
                        let mut n = 0;
                        while n < hashes && self.peek(0) == Some('#') {
                            self.bump();
                            n += 1;
                        }
                        if n == hashes {
                            break;
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        self.push(TokenKind::Literal, "r\"...\"".into(), line);
        true
    }

    /// `'a'` / `'\n'` (char literal) vs `'a` / `'static` (lifetime).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, "'...'".into(), line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') && text.chars().count() == 1 {
                    self.bump();
                    self.push(TokenKind::Literal, "'...'".into(), line);
                } else {
                    self.push(TokenKind::Lifetime, format!("'{text}"), line);
                }
            }
            Some(c) => {
                // Non-alphanumeric char literal: ' ', '{', ...
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                let _ = c;
                self.push(TokenKind::Literal, "'...'".into(), line);
            }
            None => self.push(TokenKind::Punct, "'".into(), line),
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        // Numeric literals, including suffixes (`1u32`), underscores
        // and float forms; precision is irrelevant to the rules, the
        // scan only has to consume the literal atomically so suffixes
        // do not surface as identifiers.
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let float_dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c.is_alphanumeric() || c == '_' || float_dot {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block */
            let s = "HashMap";
            let r = r#"HashMap "quoted""#;
            let b = b"HashMap";
            let c = 'H';
        "##;
        let names = idents(src);
        assert!(!names.contains(&"HashMap".to_string()), "{names:?}");
        assert_eq!(names, vec!["let", "s", "let", "r", "let", "b", "let", "c"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("let a = 1;\n// lint: allow(D4) — reason\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(D4)"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn char_literal_with_escape() {
        let lexed = lex(r"let nl = '\n'; let q = '\''; let sp = ' ';");
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn double_colon_is_one_token() {
        let lexed = lex("Ordering::Relaxed");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Ordering", "::", "Relaxed"]);
    }

    #[test]
    fn numeric_suffixes_stay_inside_the_literal() {
        let names = idents("let x = 1u32 + 0xffu8 + 1_000i64 + 2.5f64;");
        assert_eq!(names, vec!["let", "x"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let names = idents("let r#type = 1;");
        assert_eq!(names, vec!["let", "type"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let lexed = lex("a += 1; b == c; d != e; f <= g; h >= i; j -= k; l /= m; n..=o; p..q");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text != ";")
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            puncts,
            vec!["+=", "==", "!=", "<=", ">=", "-=", "/=", "..=", ".."]
        );
    }

    #[test]
    fn shift_assign_never_sheds_a_loose_equals() {
        // `<<=` lexes as `<`, `<=` — inelegant but it must not produce
        // a bare `=` the parser would read as an assignment.
        let lexed = lex("a <<= 1; b >>= 2;");
        assert!(lexed.tokens.iter().all(|t| t.text != "="));
    }

    #[test]
    fn spans_slice_back_to_the_token_spelling() {
        let src = "fn add(a: u32) -> u32 { a += 1; a }";
        let lexed = lex(src);
        for tok in &lexed.tokens {
            let slice = &src[tok.start as usize..tok.end as usize];
            if tok.kind != TokenKind::Literal {
                assert_eq!(slice, tok.text, "span of {tok:?}");
            }
        }
        // Literals keep their span even though the text is opaque.
        let lit = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .expect("literal");
        assert_eq!(&src[lit.start as usize..lit.end as usize], "1");
    }

    #[test]
    fn spans_are_byte_offsets_even_after_multibyte_text() {
        // The em-dash in the comment is multi-byte; spans must stay
        // aligned with byte offsets, not char counts.
        let src = "// — dash\nlet x = 1;";
        let lexed = lex(src);
        let let_tok = &lexed.tokens[0];
        assert_eq!(&src[let_tok.start as usize..let_tok.end as usize], "let");
    }
}
