//! Workspace determinism linter CLI.
//!
//! ```text
//! rh-lint --workspace [--json] [--root PATH]
//! rh-lint --changed FILE... [--json] [--root PATH]
//! ```
//!
//! Scans workspace source files for violations of the
//! determinism/soundness rules D1–D8 (see `DESIGN.md` §16).  Exits 0
//! when clean, 1 when findings exist, 2 on usage or I/O errors.  With
//! `--json` the report is printed as JSON after a round-trip
//! self-check (serialize → parse → compare), mirroring the pattern of
//! `bin/redteam.rs` and `bin/timeline.rs`.
//!
//! `--changed` is the incremental mode: only the named files (paths
//! relative to the root, forward or backslashes) are linted, but the
//! call graph is still built over the whole workspace — a changed
//! file's rule scopes depend on callers and callees that did not
//! change, so there is no cheaper sound option.

use rh_lint::{lint_changed, lint_workspace, LintReport};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rh-lint --workspace [--json] [--root PATH]\n\
         \u{20}      rh-lint --changed FILE... [--json] [--root PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut changed: Option<Vec<String>> = None;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--changed" => changed = Some(Vec::new()),
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage(),
            },
            _ if arg.starts_with('-') => return usage(),
            _ => match &mut changed {
                Some(files) => files.push(arg),
                None => return usage(),
            },
        }
    }
    match (workspace, &changed) {
        (true, None) | (false, Some(_)) => {}
        _ => return usage(),
    }
    if changed.as_ref().is_some_and(|files| files.is_empty()) {
        eprintln!("rh-lint: --changed needs at least one file");
        return usage();
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!("rh-lint: no Cargo.toml under {}", root.display());
        return ExitCode::from(2);
    }

    let report = match &changed {
        Some(files) => lint_changed(&root, files),
        None => lint_workspace(&root),
    };
    let report = match report {
        Ok(report) => report,
        Err(err) => {
            eprintln!("rh-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    if json {
        let encoded = match serde_json::to_string(&report) {
            Ok(encoded) => encoded,
            Err(err) => {
                eprintln!("rh-lint: JSON encoding failed: {err}");
                return ExitCode::from(2);
            }
        };
        // Round-trip self-check: the machine-readable output must parse
        // back to the identical report before anyone consumes it.
        match serde_json::from_str::<LintReport>(&encoded) {
            Ok(back) if back == report => {}
            Ok(_) => {
                eprintln!("rh-lint: JSON round-trip diverged");
                return ExitCode::from(2);
            }
            Err(err) => {
                eprintln!("rh-lint: JSON round-trip failed: {err}");
                return ExitCode::from(2);
            }
        }
        println!("{encoded}");
        eprintln!("rh-lint: JSON round-trip ok ({} bytes)", encoded.len());
    } else {
        print!("{}", report.render_table());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
