//! The workspace call graph and the reachability-derived rule scopes.
//!
//! Nodes are every `fn` item the parser finds (free functions, impl
//! methods, trait methods with default bodies).  Edges over-approximate
//! calls by name resolution — the linter needs soundness in the
//! *coverage* direction (a function that might be on a hot path is
//! treated as on it), never type-accurate dispatch:
//!
//! * `Type::name(..)` resolves to workspace fns of that self type (or
//!   of impls of that trait, when `Type` names a trait); unknown types
//!   resolve to nothing (external calls are not workspace edges).
//! * `self.name(..)` prefers the caller's own type, then any trait it
//!   implements, then every method of that name.
//! * `.name(..)` on any other receiver resolves to every workspace
//!   method of that name.
//! * `name(..)` resolves to every workspace free fn of that name.
//!
//! On top of reachability, [`derive_scopes`] computes the rule scopes
//! that PR 5–9 maintained as hand-curated file inventories (rule D9):
//!
//! * **hot** (D6): transitive callees of the `on_batch` lane kernels
//!   (an `on_batch` fn taking an `ActionSink`) and of the engine
//!   drivers that invoke `on_batch`.
//! * **merge** (D8): transitive callees of the `RunMetrics` /
//!   `QuantileSketch` merge roots (`merge`, `merge_population`).
//! * **counter** (D5): the union of both — everything that feeds
//!   counter/flip arithmetic into reports.
//! * **seeded** (D7): functions with a seeded-RNG lineage — they call
//!   (or are called by something that calls) `seed_from_u64` /
//!   `bank_seed` / `device_seed`, or belong to a type whose
//!   constructor does, or are transitively called from such a
//!   function.  RNG draws outside this set have no provenance story.

use crate::ast::{Ast, Expr, ExprKind, Item, ItemKind, Span, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Calls that derive one stream seed from another — the roots of every
/// legitimate RNG lineage in the workspace.
pub const SEED_ORIGINS: [&str; 4] = ["seed_from_u64", "from_seed", "bank_seed", "device_seed"];

/// Std iterator-adapter / combinator / reduction names.  A bare
/// `.collect()` or `.map(..)` is overwhelmingly a std call; fanning it
/// out to every workspace fn that happens to share the name (e.g.
/// `TraceStats::collect`) floods the graph with false edges, so these
/// resolve only against the caller's own type.  Workspace-flavored
/// container names (`insert`, `push`, `drain`, `get`, …) are *not*
/// here — their fan-out carries the real kernel→table edges.
const PRELUDE_METHODS: [&str; 38] = [
    "abs",
    "as_mut",
    "as_ref",
    "chain",
    "clone",
    "cloned",
    "collect",
    "copied",
    "count",
    "enumerate",
    "expect",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "into",
    "into_iter",
    "iter",
    "iter_mut",
    "last",
    "map",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "product",
    "rev",
    "skip",
    "sum",
    "take",
    "to_string",
    "to_vec",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "zip",
];

/// One call site, as resolvable a shape as the parser could recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(..)` — a free-function call.
    Free { name: String },
    /// `Type::name(..)` (with `Self` already substituted).
    Qualified { ty: String, name: String },
    /// `recv.name(..)`; `on_self` when the receiver chain starts at
    /// `self`.
    Method { name: String, on_self: bool },
}

impl Callee {
    pub fn name(&self) -> &str {
        match self {
            Callee::Free { name } | Callee::Qualified { name, .. } | Callee::Method { name, .. } => {
                name
            }
        }
    }
}

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    pub name: String,
    /// Enclosing impl's self type (or trait's name for trait items).
    pub self_ty: Option<String>,
    /// Enclosing impl's trait, for `impl Trait for Type` members.
    pub trait_name: Option<String>,
    pub line: u32,
    pub span: Span,
    pub body_span: Option<Span>,
    pub is_test: bool,
    pub sig_idents: Vec<String>,
    pub calls: Vec<Callee>,
}

/// The reachability-derived rule scopes (see module docs).
#[derive(Debug, Default)]
pub struct Scopes {
    pub hot: BTreeSet<usize>,
    pub merge: BTreeSet<usize>,
    pub counter: BTreeSet<usize>,
    pub seeded: BTreeSet<usize>,
}

/// The workspace (or single-file) call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Repo-relative paths, parallel to [`FnNode::file`].
    pub files: Vec<String>,
    pub fns: Vec<FnNode>,
    edges: Vec<Vec<usize>>,
    reverse: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from parsed files.  `is_test` marks whole
    /// files (tests/, benches) whose fns must never seed rule scopes.
    pub fn build(files: Vec<(String, &Ast, bool)>) -> CallGraph {
        let mut graph = CallGraph::default();
        for (path, ast, is_test) in files {
            let file_index = graph.files.len();
            graph.files.push(path);
            collect_fns(&ast.items, file_index, None, None, is_test, &mut graph.fns);
        }
        graph.resolve();
        graph
    }

    /// Resolved callee indices of `fn_id`.
    pub fn callees(&self, fn_id: usize) -> &[usize] {
        &self.edges[fn_id]
    }

    /// Function ids defined in `file` (by graph file index).
    pub fn fns_in_file(&self, file: usize) -> impl Iterator<Item = usize> + '_ {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file == file)
            .map(|(i, _)| i)
    }

    /// Index of `path` in [`CallGraph::files`].
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.files.iter().position(|f| f == path)
    }

    fn resolve(&mut self) {
        // Name → candidate indices, split by call shape.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_ty: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_trait: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            match &f.self_ty {
                None => free.entry(&f.name).or_default().push(i),
                Some(ty) => {
                    methods.entry(&f.name).or_default().push(i);
                    by_ty.entry((ty, &f.name)).or_default().push(i);
                    if let Some(tr) = &f.trait_name {
                        by_trait.entry((tr, &f.name)).or_default().push(i);
                    }
                }
            }
        }

        let mut edges = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                match call {
                    Callee::Free { name } => {
                        if let Some(ids) = free.get(name.as_str()) {
                            out.extend(ids);
                        }
                    }
                    Callee::Qualified { ty, name } => {
                        let direct = by_ty.get(&(ty.as_str(), name.as_str()));
                        let via_trait = by_trait.get(&(ty.as_str(), name.as_str()));
                        match (direct, via_trait) {
                            (None, None) => {}
                            (direct, via_trait) => {
                                out.extend(direct.into_iter().flatten());
                                out.extend(via_trait.into_iter().flatten());
                            }
                        }
                    }
                    Callee::Method { name, on_self } => {
                        let own = f.self_ty.as_deref().and_then(|ty| {
                            by_ty.get(&(ty, name.as_str())).filter(|v| !v.is_empty())
                        });
                        match own {
                            Some(ids) if *on_self => out.extend(ids),
                            _ if PRELUDE_METHODS.contains(&name.as_str()) => {}
                            _ => {
                                if let Some(ids) = methods.get(name.as_str()) {
                                    out.extend(ids);
                                }
                            }
                        }
                    }
                }
            }
            edges.push(out.into_iter().collect::<Vec<_>>());
        }
        let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (from, outs) in edges.iter().enumerate() {
            for &to in outs {
                reverse[to].push(from);
            }
        }
        self.edges = edges;
        self.reverse = reverse;
    }

    /// Everything reachable from `roots` by following call edges
    /// forward (callees), roots included.
    pub fn forward_reach(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        self.reach(roots, &self.edges)
    }

    /// Everything that can reach `roots` (transitive callers), roots
    /// included.
    pub fn reverse_reach(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        self.reach(roots, &self.reverse)
    }

    fn reach(
        &self,
        roots: impl IntoIterator<Item = usize>,
        edges: &[Vec<usize>],
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = roots.into_iter().collect();
        while let Some(id) = queue.pop() {
            if !seen.insert(id) {
                continue;
            }
            for &next in &edges[id] {
                if !seen.contains(&next) {
                    queue.push(next);
                }
            }
        }
        seen
    }
}

/// Derives the D5/D6/D7/D8 scopes from the graph (rule D9).
pub fn derive_scopes(graph: &CallGraph) -> Scopes {
    let ids = 0..graph.fns.len();

    // Hot scope: the lane kernels (an `on_batch` taking an ActionSink)
    // and everything they transitively call, plus the engine drivers
    // that deliver batches to them.  Drivers are hot *themselves* —
    // their loop bodies run per batch — but their non-kernel callees
    // (trace synthesis, run setup, metric finalization) are pre/post
    // batch work, not the steady-state decision path, so the closure
    // is taken over kernels only.
    let kernel_roots: Vec<usize> = ids
        .clone()
        .filter(|&i| {
            let f = &graph.fns[i];
            !f.is_test && f.name == "on_batch" && f.sig_idents.iter().any(|s| s == "ActionSink")
        })
        .collect();
    let drivers: Vec<usize> = ids
        .clone()
        .filter(|&i| {
            let f = &graph.fns[i];
            !f.is_test && f.calls.iter().any(|c| c.name() == "on_batch")
        })
        .collect();
    let mut hot = graph.forward_reach(kernel_roots);
    hot.extend(drivers);

    // Merge roots: the shard/population metric folds.
    let merge_roots: Vec<usize> = ids
        .clone()
        .filter(|&i| {
            let f = &graph.fns[i];
            !f.is_test && (f.name == "merge" || f.name == "merge_population")
        })
        .collect();
    let merge = graph.forward_reach(merge_roots);

    let counter: BTreeSet<usize> = hot.union(&merge).copied().collect();

    // Seeded lineage: fns that transitively reach a seed-derivation
    // call, every fn of a type one of those belongs to (constructors
    // seed the stream a sibling method draws from), and everything
    // such functions transitively call (they hand seeded generators
    // down as arguments).
    let s0: Vec<usize> = ids
        .filter(|&i| {
            graph.fns[i]
                .calls
                .iter()
                .any(|c| SEED_ORIGINS.contains(&c.name()))
        })
        .collect();
    let s1 = graph.reverse_reach(s0);
    let seeded_types: BTreeSet<&str> = s1
        .iter()
        .filter_map(|&i| graph.fns[i].self_ty.as_deref())
        .collect();
    let s2: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| {
            s1.contains(&i)
                || graph.fns[i]
                    .self_ty
                    .as_deref()
                    .is_some_and(|ty| seeded_types.contains(ty))
        })
        .collect();
    let seeded = graph.forward_reach(s2);

    Scopes {
        hot,
        merge,
        counter,
        seeded,
    }
}

fn collect_fns(
    items: &[Item],
    file: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    in_test: bool,
    out: &mut Vec<FnNode>,
) {
    for item in items {
        let is_test = in_test || item.is_test;
        match item.kind {
            ItemKind::Fn => {
                let mut calls = Vec::new();
                if let Some(body) = &item.body {
                    collect_calls(&body.stmts, self_ty, &mut calls);
                }
                out.push(FnNode {
                    file,
                    name: item.name.clone(),
                    self_ty: self_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    line: item.line,
                    span: item.span,
                    body_span: item.body.as_ref().map(|b| b.span),
                    is_test,
                    sig_idents: item.sig_idents.clone(),
                    calls,
                });
            }
            ItemKind::Impl => collect_fns(
                &item.children,
                file,
                Some(&item.name),
                item.trait_name.as_deref(),
                is_test,
                out,
            ),
            ItemKind::Trait => {
                collect_fns(&item.children, file, Some(&item.name), None, is_test, out);
            }
            ItemKind::Mod => collect_fns(&item.children, file, self_ty, trait_name, is_test, out),
            ItemKind::Other => {}
        }
    }
}

/// Extracts call-shaped expressions from a body, tracking whether a
/// method call's receiver chain starts at `self`.
fn collect_calls(stmts: &[Stmt], self_ty: Option<&str>, out: &mut Vec<Callee>) {
    for stmt in stmts {
        let mut receiver_is_self = false;
        for expr in &stmt.exprs {
            match &expr.kind {
                ExprKind::Call { path, .. } => {
                    receiver_is_self = false;
                    out.push(call_from_path(path, self_ty));
                }
                ExprKind::MethodCall { method, .. } => {
                    out.push(Callee::Method {
                        name: method.clone(),
                        on_self: receiver_is_self,
                    });
                    // A chained call's result is no longer `self`.
                    receiver_is_self = false;
                }
                ExprKind::Path { segments } => {
                    receiver_is_self = segments.first().is_some_and(|s| s == "self");
                }
                _ => {
                    receiver_is_self = false;
                }
            }
            collect_calls(&expr.args, self_ty, out);
        }
    }
}

fn call_from_path(path: &[String], self_ty: Option<&str>) -> Callee {
    match path {
        [name] => Callee::Free { name: name.clone() },
        [.., ty, name] => {
            let ty = if ty == "Self" {
                self_ty.unwrap_or("Self").to_string()
            } else {
                ty.clone()
            };
            Callee::Qualified {
                ty,
                name: name.clone(),
            }
        }
        [] => Callee::Free {
            name: String::new(),
        },
    }
}

/// Walks every expression in a body, depth-first, statement order.
pub fn for_each_expr<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt, &'a Expr)) {
    for stmt in stmts {
        for expr in &stmt.exprs {
            f(stmt, expr);
            for_each_expr(&expr.args, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<Ast>, CallGraph) {
        let asts: Vec<Ast> = sources.iter().map(|(_, src)| parse(src)).collect();
        let graph = CallGraph::build(
            sources
                .iter()
                .zip(&asts)
                .map(|((path, _), ast)| (path.to_string(), ast, false))
                .collect(),
        );
        (asts, graph)
    }

    fn id(graph: &CallGraph, name: &str) -> usize {
        graph
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not in graph"))
    }

    #[test]
    fn free_calls_resolve_across_files() {
        let (_a, g) = graph_of(&[
            ("a.rs", "pub fn top() { helper(1); }"),
            ("b.rs", "pub fn helper(x: u32) -> u32 { x }"),
        ]);
        let top = id(&g, "top");
        let helper = id(&g, "helper");
        assert_eq!(g.callees(top), &[helper]);
        assert!(g.forward_reach([top]).contains(&helper));
        assert!(g.reverse_reach([helper]).contains(&top));
    }

    #[test]
    fn qualified_calls_prefer_the_type() {
        let (_a, g) = graph_of(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { pub fn make() -> A { A } }\n\
             impl B { pub fn make() -> B { B } }\n\
             fn build() { A::make(); }",
        )]);
        let build = id(&g, "build");
        let callees = g.callees(build);
        assert_eq!(callees.len(), 1);
        assert_eq!(g.fns[callees[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn self_method_calls_stay_on_their_type() {
        let (_a, g) = graph_of(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { pub fn step(&self) { self.leaf(); } fn leaf(&self) {} }\n\
             impl B { fn leaf(&self) {} }",
        )]);
        let step = id(&g, "step");
        let callees = g.callees(step);
        assert_eq!(callees.len(), 1);
        assert_eq!(g.fns[callees[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn foreign_method_calls_fan_out_to_all_candidates() {
        let (_a, g) = graph_of(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { fn leaf(&self) {} }\n\
             impl B { fn leaf(&self) {} }\n\
             fn drive(x: &A) { x.leaf(); }",
        )]);
        let drive = id(&g, "drive");
        assert_eq!(g.callees(drive).len(), 2);
    }

    #[test]
    fn trait_qualified_calls_reach_every_impl() {
        let (_a, g) = graph_of(&[(
            "a.rs",
            "trait Run { fn go(&self); }\n\
             struct A; impl Run for A { fn go(&self) {} }\n\
             struct B; impl Run for B { fn go(&self) {} }\n\
             fn drive(x: &dyn Run) { Run::go(x); }",
        )]);
        let drive = id(&g, "drive");
        // Resolution set: the trait decl node plus both impls.
        let impls = g
            .callees(drive)
            .iter()
            .filter(|&&c| g.fns[c].trait_name.as_deref() == Some("Run"))
            .count();
        assert_eq!(impls, 2);
    }

    #[test]
    fn hot_scope_covers_kernels_their_callees_and_drivers() {
        let (_a, g) = graph_of(&[(
            "k.rs",
            "struct K;\n\
             impl K {\n\
               pub fn on_batch(&mut self, batch: &EventBatch, sink: &mut ActionSink) { self.step() }\n\
               fn step(&mut self) { leaf() }\n\
             }\n\
             fn leaf() {}\n\
             fn engine(k: &mut K) { k.on_batch(b, s); synth_events() }\n\
             fn synth_events() {}\n\
             fn unrelated() {}",
        )]);
        let scopes = derive_scopes(&g);
        for name in ["on_batch", "step", "leaf", "engine"] {
            assert!(scopes.hot.contains(&id(&g, name)), "{name} must be hot");
        }
        // The driver's own body is hot, but its non-kernel callees
        // (trace synthesis, setup) are pre/post batch work.
        assert!(!scopes.hot.contains(&id(&g, "synth_events")));
        assert!(!scopes.hot.contains(&id(&g, "unrelated")));
    }

    #[test]
    fn merge_scope_is_forward_closure_of_merge_roots() {
        let (_a, g) = graph_of(&[(
            "m.rs",
            "impl M { pub fn merge(self, o: M) -> M { combine(self, o) } }\n\
             fn combine(a: M, b: M) -> M { a }\n\
             fn caller(a: M, b: M) -> M { a.merge(b) }",
        )]);
        let scopes = derive_scopes(&g);
        assert!(scopes.merge.contains(&id(&g, "merge")));
        assert!(scopes.merge.contains(&id(&g, "combine")));
        // Callers of merge are not themselves merge-scope.
        assert!(!scopes.merge.contains(&id(&g, "caller")));
        // Counter scope is the union of hot and merge.
        assert!(scopes.counter.contains(&id(&g, "combine")));
    }

    #[test]
    fn seeded_scope_covers_constructor_seeded_types_and_param_passing() {
        let (_a, g) = graph_of(&[(
            "r.rs",
            "struct Pool;\n\
             impl Pool {\n\
               pub fn with_banks(seed: u64) -> Pool { StdRng::seed_from_u64(bank_seed(seed, 0)); Pool }\n\
               pub fn draw(&mut self) -> u64 { self.raw() }\n\
               fn raw(&mut self) -> u64 { 0 }\n\
             }\n\
             fn run_device(seed: u64) { let mut r = StdRng::seed_from_u64(seed); sample(&mut r); }\n\
             fn sample(rng: &mut StdRng) -> u64 { rng.next_u64() }\n\
             struct Orphan;\n\
             impl Orphan { pub fn draw(&mut self) -> u64 { self.rng.next_u64() } }",
        )]);
        let scopes = derive_scopes(&g);
        // Constructor-seeded type: every Pool method is seed-connected.
        for name in ["with_banks", "draw", "raw"] {
            let pool_fn = g
                .fns
                .iter()
                .position(|f| f.name == name && f.self_ty.as_deref() == Some("Pool"))
                .unwrap();
            assert!(scopes.seeded.contains(&pool_fn), "Pool::{name}");
        }
        // Param-passing lineage: run_device seeds, sample draws.
        assert!(scopes.seeded.contains(&id(&g, "run_device")));
        assert!(scopes.seeded.contains(&id(&g, "sample")));
        // The orphan type never seeds anything.
        let orphan_draw = g
            .fns
            .iter()
            .position(|f| f.name == "draw" && f.self_ty.as_deref() == Some("Orphan"))
            .unwrap();
        assert!(!scopes.seeded.contains(&orphan_draw));
    }

    #[test]
    fn test_fns_are_not_roots() {
        let (_a, g) = graph_of(&[(
            "t.rs",
            "#[cfg(test)]\nmod tests {\n\
               fn on_batch(b: &EventBatch, sink: &mut ActionSink) { helper() }\n\
               fn helper() {}\n\
             }",
        )]);
        let scopes = derive_scopes(&g);
        assert!(scopes.hot.is_empty(), "test kernels must not seed scope");
    }
}
