//! Workspace file discovery and path-based rule scoping.
//!
//! The walk is *sorted* (lexicographic on the repo-relative path) so
//! findings, annotations and the JSON report are byte-stable across
//! runs and platforms — the linter holds itself to the determinism bar
//! it enforces.
//!
//! Path classification only decides test/bench/timing status.  The
//! counter and hot-loop scopes that used to live here as hand-curated
//! file inventories are now *derived* from the workspace call graph —
//! see [`crate::graph::derive_scopes`] (rule D9).

use crate::rules::FileClass;
use std::path::{Path, PathBuf};

/// Directories scanned relative to the workspace root.
const ROOTS: [&str; 3] = ["crates", "src", "tests"];

/// Path fragments excluded from the scan: vendored shims are offline
/// stand-ins for external crates (not workspace code), `target/` is
/// build output, and the lint fixtures are *known-bad by design*.
const EXCLUDES: [&str; 3] = ["shims/", "target/", "crates/lint/tests/fixtures/"];

/// The designated wall-clock home: `PerfCounters` and the other
/// timing-based observers live here, outside the determinism contract.
const TIMING_EXEMPT: [&str; 1] = ["crates/harness/src/observe.rs"];

/// Classifies a repo-relative path (forward slashes) into rule scopes.
pub fn classify(rel: &str) -> FileClass {
    let is_test =
        rel.starts_with("tests/") || rel.contains("/tests/") || rel.ends_with("/build.rs");
    let is_bench = rel.contains("crates/bench/") || rel.contains("/benches/");
    FileClass {
        is_test,
        is_bench,
        timing_exempt: TIMING_EXEMPT.contains(&rel),
    }
}

/// Normalizes `path` (relative to `root`) to forward slashes.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every `.rs` file under the workspace lint roots, sorted by
/// repo-relative path.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect(&dir, &mut files)?;
        }
    }
    files.retain(|p| {
        let rel = relative(root, p);
        !EXCLUDES.iter().any(|e| rel.contains(e))
    });
    files.sort_by_key(|p| relative(root, p));
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_tests_benches_and_timing() {
        assert!(classify("tests/determinism.rs").is_test);
        assert!(classify("crates/trace/tests/sharding.rs").is_test);
        assert!(!classify("crates/trace/src/stats.rs").is_test);
        assert!(classify("crates/bench/benches/throughput.rs").is_bench);
        assert!(classify("crates/harness/src/observe.rs").timing_exempt);
        assert!(!classify("crates/harness/src/engine.rs").timing_exempt);
    }

    #[test]
    fn workspace_walk_is_sorted_and_excludes_shims_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).expect("walk");
        assert!(!files.is_empty());
        let rels: Vec<String> = files.iter().map(|p| relative(&root, p)).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk must be sorted");
        assert!(rels.iter().all(|r| !r.contains("shims/")));
        assert!(rels.iter().all(|r| !r.contains("fixtures/")));
        assert!(rels.iter().any(|r| r == "crates/harness/src/engine.rs"));
    }
}
