//! Linter self-test: the known-bad fixture corpus must trip exactly
//! the rule each fixture targets, the clean fixture must pass, and —
//! the PR gate — the workspace at HEAD must lint clean with zero
//! unused allow annotations.
//!
//! Fixtures carry their own scope roots (`on_batch` kernels, `merge`
//! folds, seeding constructors): since PR 10 the counter/hot scopes
//! are derived from the call graph, so a fixture proves its rule by
//! *being reachable*, not by a `FileClass` switch.

use rh_lint::{lint_changed, lint_source, lint_workspace, FileClass};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn each_bad_fixture_trips_exactly_its_rule() {
    for (file, expected) in [
        ("d1.rs", vec!["D1"]),
        ("d2.rs", vec!["D2"]),
        ("d3.rs", vec!["D3"]),
        ("d4.rs", vec!["D4"]),
        ("d5.rs", vec!["D5"]),
        ("d6.rs", vec!["D6"]),
        // d7.rs seeds two D7 sites: an unseeded draw and an escaping
        // draw_block refill.
        ("d7.rs", vec!["D7", "D7"]),
        ("d8.rs", vec!["D8"]),
    ] {
        let report = lint_source(file, &fixture(file), &FileClass::default());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(
            rules,
            expected,
            "{file} must trip exactly {expected:?}, got {:#?}",
            report.findings
        );
    }
}

/// The D9 semantics proof: two byte-identical narrowing folds, one
/// reachable from an `on_batch` kernel and one not.  Exactly the
/// reachable one trips D5 — scoping is function-granular
/// reachability, not a file inventory.
#[test]
fn d9_fixture_scopes_by_reachability_not_by_file() {
    let report = lint_source("d9.rs", &fixture("d9.rs"), &FileClass::default());
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(
        rules,
        vec!["D5"],
        "d9.rs must trip exactly one D5, got {:#?}",
        report.findings
    );
    assert!(
        report.findings[0].message.contains("fold_reached"),
        "the finding must sit in the reachable fold: {:#?}",
        report.findings
    );
}

#[test]
fn clean_fixture_is_clean() {
    let report = lint_source("clean.rs", &fixture("clean.rs"), &FileClass::default());
    assert!(
        report.findings.is_empty(),
        "clean.rs tripped: {:#?}",
        report.findings
    );
    // Its annotation is real and consumed, not dead weight.
    assert!(report.annotations.iter().any(|a| a.rule == "D4" && a.used));
}

/// The gate: `rh-lint --workspace` exits 0 on HEAD.  Runs the library
/// entry point directly so `cargo test` enforces it without shelling
/// out to a second cargo invocation.
#[test]
fn workspace_head_lints_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found"
    );
    let report = lint_workspace(&root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_table()
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously small walk: {} files — did the source roots move?",
        report.files_scanned
    );
    // Annotation hygiene: every allow annotation on HEAD must actually
    // cover a rule site; an UNUSED one is stale documentation.  Pinned
    // to zero — PR 10 deleted the stale ones, and the derived scopes
    // keep the inventory honest from here on.
    let stale: Vec<_> = report.annotations.iter().filter(|a| !a.used).collect();
    assert!(stale.is_empty(), "unused allow annotations: {stale:#?}");
}

/// Incremental mode agrees with the workspace pass: linting a changed
/// subset must reproduce the workspace findings/annotations for those
/// files exactly (the call graph stays workspace-wide either way).
#[test]
fn changed_mode_matches_workspace_slice() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let changed = vec![
        "crates/harness/src/engine.rs".to_string(),
        "crates/tivapromi/src/bank_rng.rs".to_string(),
        "crates/trace/src/batch.rs".to_string(),
    ];
    let slice = lint_changed(&root, &changed).expect("changed scan succeeds");
    assert_eq!(slice.files_scanned, 3);
    let full = lint_workspace(&root).expect("workspace scan succeeds");
    let expected_findings: Vec<_> = full
        .findings
        .iter()
        .filter(|f| changed.contains(&f.file))
        .cloned()
        .collect();
    let expected_annotations: Vec<_> = full
        .annotations
        .iter()
        .filter(|a| changed.contains(&a.file))
        .cloned()
        .collect();
    assert_eq!(slice.findings, expected_findings);
    assert_eq!(slice.annotations, expected_annotations);
    // Paths outside the walk are skipped, not errors.
    let none = lint_changed(&root, &["README.md".to_string()]).expect("non-rs path tolerated");
    assert_eq!(none.files_scanned, 0);
}

/// The disturbance-backend tiers carry the repo's
/// unsafe/`Ordering::Relaxed`-free claim outright: zero findings
/// *and* zero allow annotations — the tiers need no escape hatches,
/// not merely justified ones.  (Under derived scoping they are no
/// longer blanket counter-scope files; the claim that remains is the
/// annotation-free one, now proven against the workspace-wide graph.)
#[test]
fn backend_tiers_are_annotation_free() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let changed: Vec<String> = [
        "crates/dram/src/backend.rs",
        "crates/dram/src/fast.rs",
        "crates/dram/src/cycle.rs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let report = lint_changed(&root, &changed).expect("backend tier scan succeeds");
    assert_eq!(report.files_scanned, 3, "backend tier files moved?");
    assert!(
        report.findings.is_empty(),
        "backend tiers tripped: {:#?}",
        report.findings
    );
    assert!(
        report.annotations.is_empty(),
        "backend tiers must need no allow annotations, got {:#?}",
        report.annotations
    );
}

/// The fixture corpus itself must be excluded from the workspace walk
/// (it is known-bad by construction).
#[test]
fn fixtures_are_excluded_from_workspace_walk() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = rh_lint::workspace_files(&root).expect("walk succeeds");
    assert!(
        files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "fixtures")),
        "fixture files leaked into the workspace walk"
    );
    // …but the walk does see this very test file.
    assert!(files
        .iter()
        .any(|f| f.ends_with("crates/lint/tests/selftest.rs")));
}
