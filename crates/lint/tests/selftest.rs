//! Linter self-test: the known-bad fixture corpus must trip exactly
//! the rule each fixture targets, the clean fixture must pass, and —
//! the PR gate — the workspace at HEAD must lint clean.

use rh_lint::{lint_source, lint_workspace, FileClass};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Fixtures are linted as production counter-scope *and* hot-loop
/// code — the widest rule surface — so "exactly its rule" is a real
/// exclusivity claim.
fn strict_class() -> FileClass {
    FileClass {
        counter_scope: true,
        hot_loop: true,
        ..FileClass::default()
    }
}

#[test]
fn each_bad_fixture_trips_exactly_its_rule() {
    for (file, rule) in [
        ("d1.rs", "D1"),
        ("d2.rs", "D2"),
        ("d3.rs", "D3"),
        ("d4.rs", "D4"),
        ("d5.rs", "D5"),
        ("d6.rs", "D6"),
    ] {
        let report = lint_source(file, &fixture(file), &strict_class());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(
            rules,
            vec![rule],
            "{file} must trip exactly one {rule} finding, got {:#?}",
            report.findings
        );
    }
}

#[test]
fn clean_fixture_is_clean() {
    let report = lint_source("clean.rs", &fixture("clean.rs"), &strict_class());
    assert!(
        report.findings.is_empty(),
        "clean.rs tripped: {:#?}",
        report.findings
    );
    // Its annotation is real and consumed, not dead weight.
    assert!(report.annotations.iter().any(|a| a.rule == "D4" && a.used));
}

/// The gate: `rh-lint --workspace` exits 0 on HEAD.  Runs the library
/// entry point directly so `cargo test` enforces it without shelling
/// out to a second cargo invocation.
#[test]
fn workspace_head_lints_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found"
    );
    let report = lint_workspace(&root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_table()
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously small walk: {} files — did the source roots move?",
        report.files_scanned
    );
    // Annotation hygiene: every allow annotation on HEAD must actually
    // cover a rule site; an UNUSED one is stale documentation.
    let stale: Vec<_> = report.annotations.iter().filter(|a| !a.used).collect();
    assert!(stale.is_empty(), "unused allow annotations: {stale:#?}");
}

/// The disturbance-backend tiers are counter-scope code (D5 narrowing
/// casts apply) and carry the repo's unsafe/`Ordering::Relaxed`-free
/// claim outright: zero findings *and* zero `allow(D4)` annotations —
/// the tiers need no escape hatches, not merely justified ones.
#[test]
fn backend_tiers_are_counter_scope_and_annotation_free() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in [
        "crates/dram/src/backend.rs",
        "crates/dram/src/fast.rs",
        "crates/dram/src/cycle.rs",
    ] {
        let class = rh_lint::classify(rel);
        assert!(class.counter_scope, "{rel} must be in D5 counter scope");
        let source =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        let report = lint_source(rel, &source, &class);
        assert!(
            report.findings.is_empty(),
            "{rel} tripped: {:#?}",
            report.findings
        );
        assert!(
            report.annotations.is_empty(),
            "{rel} must need no allow annotations, got {:#?}",
            report.annotations
        );
    }
}

/// The fixture corpus itself must be excluded from the workspace walk
/// (it is known-bad by construction).
#[test]
fn fixtures_are_excluded_from_workspace_walk() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = rh_lint::workspace_files(&root).expect("walk succeeds");
    assert!(
        files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "fixtures")),
        "fixture files leaked into the workspace walk"
    );
    // …but the walk does see this very test file.
    assert!(files
        .iter()
        .any(|f| f.ends_with("crates/lint/tests/selftest.rs")));
}
