//! Property test for the lexer→parser span contract: every AST node's
//! byte range is token-aligned, and re-lexing the node's source slice
//! in isolation reproduces exactly the tokens the full-file lex placed
//! inside that range.  The interprocedural rules lean on this —
//! [`rh_lint::FileScopes::innermost`] maps a token offset to its
//! enclosing function by span containment, so a span that drifted off
//! token boundaries (or swallowed/shed tokens) would silently
//! mis-scope findings.
//!
//! Sources are generated compositionally from a fragment grammar
//! (free fns, impl blocks, traits, nested mods, statements with
//! strings/generics/compound ops/comments) so the corpus exercises the
//! parser's recovery paths, not just pretty input.

use proptest::prelude::*;
use rh_lint::ast::{parse_lexed, Ast, Block, Expr, Item, Span, Stmt};
use rh_lint::lexer::{lex, Token};

/// Statement bodies chosen to stress distinct lexer/parser paths:
/// method chains, turbofish, compound assignment, strings with
/// embedded punctuation, lifetimes, macros, nested groups, comments.
const STMTS: [&str; 12] = [
    "let total = rows.iter().map(|r| r.count).sum::<u64>();",
    "self.acc += other.weighted * 0.5;",
    "counter.fetch_add(1, Ordering::Relaxed);",
    "let label = \"brace } paren ) quote \\\" done\";",
    "let tag: &'static str = \"x\"; // trailing comment ; fn {",
    "rngs.draw_block(bank, 64).iter().for_each(|v| sink.push(*v));",
    "if total > 65_536 { return (total % 65_536) as u32; }",
    "let xs: Vec<(u64, u32)> = Vec::with_capacity(n);",
    "match kind { Kind::Hot => step(events), _ => 0 }",
    "total *= 2; /* block ; comment */ total -= 1;",
    "let c = '}'; let d = '\\'';",
    "assert_eq!(a, b, \"mismatch at {}\", idx);",
];

/// Item shells a statement gets wrapped in.
fn item(shape: usize, name_salt: u64, body: &str) -> String {
    let n = name_salt % 1000;
    match shape {
        0 => format!("pub fn free_{n}(events: &[u64]) -> u64 {{ {body} 0 }}\n"),
        1 => format!(
            "impl Lane_{n} {{\n    pub fn on_batch(&mut self, sink: &mut ActionSink) {{ {body} }}\n}}\n"
        ),
        2 => format!(
            "mod inner_{n} {{\n    pub fn helper<T: Clone>(x: T) -> T {{ {body} x }}\n}}\n"
        ),
        3 => format!(
            "trait Run_{n} {{\n    fn go(&self) -> u32;\n    fn dflt(&self) {{ {body} }}\n}}\n"
        ),
        4 => format!(
            "#[cfg(test)]\nmod tests_{n} {{\n    #[test]\n    fn t() {{ {body} }}\n}}\n"
        ),
        _ => format!("pub struct S_{n} {{ pub field: u64 }}\nconst K_{n}: u32 = 7;\n"),
    }
}

/// The tokens of the full-file lex that fall inside `span`, as
/// comparable (kind, text) pairs.
fn tokens_within(tokens: &[Token], span: Span) -> Vec<(String, String)> {
    tokens
        .iter()
        .filter(|t| span.start <= t.start && t.end <= span.end)
        .map(|t| (format!("{:?}", t.kind), t.text.clone()))
        .collect()
}

/// Asserts the round-trip property for one span, returning an error
/// message on violation (so `proptest!` reports the seed).
fn check_span(source: &str, tokens: &[Token], span: Span, what: &str) -> Result<(), String> {
    if span.start > span.end || span.end as usize > source.len() {
        return Err(format!("{what}: degenerate span {span:?}"));
    }
    // Token alignment: both edges must coincide with token edges of
    // the full-file lex (or the span is empty).
    if span.start != span.end {
        let starts = tokens.iter().any(|t| t.start == span.start);
        let ends = tokens.iter().any(|t| t.end == span.end);
        if !starts || !ends {
            return Err(format!("{what}: span {span:?} not token-aligned"));
        }
    }
    let slice = &source[span.start as usize..span.end as usize];
    let relexed: Vec<(String, String)> = lex(slice)
        .tokens
        .iter()
        .map(|t| (format!("{:?}", t.kind), t.text.clone()))
        .collect();
    let within = tokens_within(tokens, span);
    if relexed != within {
        return Err(format!(
            "{what}: span {span:?} re-lexes to {} tokens, full-file lex holds {}:\n  slice: {slice:?}",
            relexed.len(),
            within.len()
        ));
    }
    Ok(())
}

fn check_block(source: &str, tokens: &[Token], block: &Block) -> Result<(), String> {
    check_span(source, tokens, block.span, "block")?;
    for stmt in &block.stmts {
        check_stmt(source, tokens, stmt)?;
    }
    Ok(())
}

fn check_stmt(source: &str, tokens: &[Token], stmt: &Stmt) -> Result<(), String> {
    for expr in &stmt.exprs {
        check_expr(source, tokens, expr)?;
    }
    Ok(())
}

fn check_expr(source: &str, tokens: &[Token], expr: &Expr) -> Result<(), String> {
    check_span(source, tokens, expr.span, "expr")?;
    for arg in &expr.args {
        check_stmt(source, tokens, arg)?;
    }
    Ok(())
}

fn check_item(source: &str, tokens: &[Token], item: &Item) -> Result<(), String> {
    check_span(source, tokens, item.span, "item")?;
    if let Some(body) = &item.body {
        if !item.span.contains(&body.span) {
            return Err(format!(
                "fn `{}`: body span {:?} escapes item span {:?}",
                item.name, body.span, item.span
            ));
        }
        check_block(source, tokens, body)?;
    }
    for child in &item.children {
        if !item.span.contains(&child.span) {
            return Err(format!(
                "item `{}`: child `{}` span escapes parent",
                item.name, child.name
            ));
        }
        check_item(source, tokens, child)?;
    }
    Ok(())
}

fn check_ast(source: &str) -> Result<(), String> {
    let lexed = lex(source);
    let ast: Ast = parse_lexed(&lexed);
    for item in &ast.items {
        check_item(source, &lexed.tokens, item)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every AST node span in a generated source file re-lexes to its
    /// own tokens.
    #[test]
    fn ast_spans_relex_to_their_own_tokens(
        picks in proptest::collection::vec((0usize..6, 0usize..12, any::<u64>()), 1..8),
    ) {
        let mut source = String::new();
        for (shape, stmt, salt) in &picks {
            source.push_str(&item(*shape, *salt, STMTS[*stmt]));
        }
        if let Err(msg) = check_ast(&source) {
            prop_assert!(false, "{msg}\n--- source ---\n{source}");
        }
    }
}

/// The same property pinned against real workspace code: the linter's
/// own sources are the hardest fixture we ship.
#[test]
fn ast_spans_roundtrip_on_own_sources() {
    for file in ["src/lexer.rs", "src/ast.rs", "src/graph.rs", "src/rules.rs"] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(file);
        let source = std::fs::read_to_string(&path).unwrap();
        if let Err(msg) = check_ast(&source) {
            panic!("{file}: {msg}");
        }
    }
}
