//! D9 fixture: scope-by-reachability.  Two byte-identical narrowing
//! folds — one reachable from an `on_batch` lane kernel through an
//! intermediate step, one unreachable.  Only the reachable one may
//! trip D5: the finding count proves scoping is function-granular
//! reachability, not a file-level inventory.  Must trip exactly one
//! D5 finding (in `fold_reached`) and nothing else.

pub fn on_batch(events: &[u64], sink: &mut ActionSink) {
    let folded = step(events);
    sink.reserve(folded as usize);
}

fn step(events: &[u64]) -> u32 {
    fold_reached(events.len() as u64)
}

fn fold_reached(total: u64) -> u32 {
    (total % 65_536) as u32
}

pub fn fold_unreached(total: u64) -> u32 {
    (total % 65_536) as u32
}
