//! D2 fixture: wall-clock read outside PerfCounters/bench code.  Must
//! trip exactly one D2 finding and nothing else.
use std::time::Instant;

pub fn measure_run() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
