//! D8 fixture: order-dependent float accumulation on a merge path.
//! `merge` is a scope root, and the `+=` statement carries float
//! evidence, so the fold order changes the bits.  Must trip exactly
//! one D8 finding and nothing else.

pub fn merge(acc: &mut Stats, other: &Stats) {
    acc.weighted_mean += other.weighted_mean * 0.5;
    acc.samples = acc.samples.max(other.samples);
}
