//! D5 fixture: narrowing `as` cast inside counter scope.  `merge` is a
//! scope root (a metric fold), so the cast in its body is in derived
//! counter scope.  Must trip exactly one D5 finding and nothing else.

pub fn merge(total: u64, other: u64) -> u32 {
    ((total + other) % 65_536) as u32
}
