//! D5 fixture: narrowing `as` cast in counter arithmetic (linted with
//! `counter_scope` set).  Must trip exactly one D5 finding and nothing
//! else.

pub fn fold_counter(total: u64) -> u32 {
    (total % 65_536) as u32
}
