//! D7 fixture: RNG draws without a seeded lineage, and a `draw_block`
//! refill escaping its run.  Nothing in this file derives a seed from
//! `bank_seed`/`device_seed`/`seed_from_u64`, so `Orphan::roll` has no
//! provenance story; `Lane::stash` copies a refill into `self` state,
//! crossing run boundaries.  Must trip exactly two D7 findings and
//! nothing else.

pub struct Orphan {
    rng: StdRng,
}

impl Orphan {
    pub fn roll(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

pub struct Lane {
    saved: Vec<u64>,
}

impl Lane {
    pub fn seeded(seed: u64) -> Lane {
        let _rng = StdRng::seed_from_u64(seed);
        Lane {
            saved: Vec::with_capacity(64),
        }
    }

    pub fn stash(&mut self, rngs: &mut BankRngs, bank: u32) {
        self.saved = rngs.draw_block(bank, 64).to_vec();
    }
}
