//! D3 fixture: OS-entropy randomness.  Must trip exactly one D3
//! finding and nothing else.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
