//! D3 fixture: OS-entropy randomness.  Must trip exactly one D3
//! finding and nothing else.  (No draw call here — drawing from an
//! unseeded generator is D7's territory; the entropy *source* alone
//! is the D3 offense.)

pub fn jitter_source() -> ThreadRng {
    rand::thread_rng()
}
