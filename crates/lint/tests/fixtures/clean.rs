//! Clean fixture: the well-behaved counterpart of the d*.rs files —
//! ordered containers, annotated atomics, checked conversions,
//! preallocated buffers, seeded RNG lineages and integer merge folds.
//! It deliberately contains scope *roots* (`on_batch`, `merge`, a
//! seeding constructor) so the derived scopes are live here, and the
//! code inside them is the blessed idiom for each rule.  Must produce
//! zero findings.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn per_bank_rows(counts: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut rows = Vec::with_capacity(counts.len());
    for (bank, count) in counts.iter() {
        rows.push((*bank, *count));
    }
    rows
}

pub fn bump(counter: &AtomicUsize) -> usize {
    // lint: allow(D4) — fixture: claim uniqueness needs only RMW
    // atomicity; mirrors the audited dispatcher cursor.
    counter.fetch_add(1, Ordering::Relaxed)
}

/// A lane kernel: hot scope, yet allocation-free — the buffer is
/// preallocated and the fold is checked, not cast.
pub fn on_batch(events: &[u64], sink: &mut ActionSink) -> Vec<u32> {
    let mut tags = Vec::with_capacity(events.len());
    for (index, _event) in events.iter().enumerate() {
        tags.push(u32::try_from(index).expect("batch length fits u32"));
        sink.mark(index);
    }
    tags
}

/// A metric fold: merge scope, yet order-safe — integer accumulation
/// and a checked narrowing.
pub fn merge(total: u64, other: u64) -> u32 {
    let mut sum = total;
    sum += other;
    u32::try_from(sum % 65_536).expect("modulo a u32 bound always fits")
}

/// A seeded generator pool: its constructor derives every stream from
/// the run seed, so draws anywhere on the type have provenance.
pub struct Pool {
    rng: StdRng,
}

impl Pool {
    pub fn with_bank(run_seed: u64, bank: u32) -> Pool {
        Pool {
            rng: StdRng::seed_from_u64(bank_seed(run_seed, bank)),
        }
    }

    pub fn draw(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
