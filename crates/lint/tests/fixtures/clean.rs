//! Clean fixture: the well-behaved counterpart of the d*.rs files —
//! ordered containers, annotated atomics, checked conversions,
//! preallocated buffers.  Must produce zero findings even with
//! `counter_scope` and `hot_loop` set.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn per_bank_rows(counts: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut rows = Vec::with_capacity(counts.len());
    for (bank, count) in counts.iter() {
        rows.push((*bank, *count));
    }
    rows
}

pub fn bump(counter: &AtomicUsize) -> usize {
    // lint: allow(D4) — fixture: claim uniqueness needs only RMW
    // atomicity; mirrors the audited dispatcher cursor.
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn fold_counter(total: u64) -> u32 {
    u32::try_from(total % 65_536).expect("modulo a u32 bound always fits")
}
