//! D4 fixture: `Ordering::Relaxed` with no allow annotation.  Must
//! trip exactly one D4 finding and nothing else.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}
