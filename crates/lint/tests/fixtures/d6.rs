//! D6 fixture: allocation call in a hot-loop file (linted with
//! `hot_loop` set).  Must trip exactly one D6 finding and nothing
//! else.

pub fn drain_pending(pending: &[u64]) -> Vec<u64> {
    pending.iter().copied().collect()
}
