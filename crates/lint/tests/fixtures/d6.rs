//! D6 fixture: allocation call inside hot scope.  `on_batch` with an
//! `ActionSink` parameter is a lane-kernel root, so its body is in
//! derived hot scope.  Must trip exactly one D6 finding and nothing
//! else.

pub fn on_batch(pending: &[u64], sink: &mut ActionSink) -> Vec<u64> {
    let drained: Vec<u64> = pending.iter().copied().collect();
    sink.reserve(drained.len());
    drained
}
