//! D1 fixture: hash-ordered iteration feeding report rows.  Must trip
//! exactly one D1 finding and nothing else.
use std::collections::HashMap;

pub fn per_bank_rows(counts: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut rows = Vec::with_capacity(counts.len());
    for (bank, count) in counts.iter() {
        rows.push((*bank, *count));
    }
    rows
}
