//! # rh-hwmodel — hardware cost models for row-hammer mitigations
//!
//! The paper implements all nine techniques in VHDL and reports (a) FSM
//! clock cycles per observed `act`/`ref` command (Table II) and (b) LUT
//! usage on a Virtex UltraScale+ XCVU9P for DDR4- and DDR3-targeted
//! variants (Table III).  VHDL synthesis is not available in this
//! environment, so this crate substitutes two analytical models:
//!
//! * [`fsm`] / [`cycles`] — an *executable* model of the Fig. 2 and
//!   Fig. 3 finite state machines.  Each FSM state carries a micro-op
//!   latency (e.g. one history entry compared per cycle, two counter
//!   entries per cycle); walking the worst-case path yields the cycle
//!   counts, which reproduce Table II exactly at the paper's table sizes
//!   and — more importantly — *scale* with table sizes for ablations.
//! * [`area`] — a component-level LUT model: each technique is
//!   decomposed into registers, comparators, CAM bits, counters,
//!   multipliers, LFSRs and control logic, with per-component LUT
//!   coefficients fitted once against the paper's synthesis results
//!   (the fit is documented next to the coefficients).  The DDR3
//!   variants replicate the search/decision logic by the parallelism
//!   factor needed to fit the 320 MHz cycle budget, reproducing the
//!   paper's observation that only PARA and CRA fit DDR3 unchanged.
//!
//! [`budget`] checks both models against the timing budgets of
//! [`dram_sim::DramTiming`].
//!
//! ## Example
//!
//! ```
//! use rh_hwmodel::{cycles, HwParams, Technique};
//!
//! let params = HwParams::paper();
//! let c = cycles::fsm_cycles(Technique::LiPromi, &params);
//! assert_eq!(c.act, 37);  // Table II
//! assert_eq!(c.refresh, 3);
//! ```

pub mod area;
pub mod budget;
pub mod cycles;
pub mod energy;
pub mod fsm;
pub mod reference;
pub mod spec;

pub use area::{AreaBreakdown, Component};
pub use budget::BudgetCheck;
pub use cycles::{fsm_cycles, CyclePair};
pub use energy::EnergyModel;
pub use fsm::{CounterAssistedState, TimeVaryingState};
pub use spec::{fig2_machine, fig3_machine, StateMachine};

use serde::{Deserialize, Serialize};

/// All nine techniques of the paper's comparison, plus the CAT tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// PARA (Kim et al., 2014).
    Para,
    /// ProHit (Son et al., 2017).
    ProHit,
    /// MRLoc (You & Yang, 2019).
    MrLoc,
    /// TWiCe (Lee et al., 2019).
    TwiCe,
    /// CRA (Kim et al., 2015).
    Cra,
    /// CAT counter tree (Seyedzadeh et al., 2018) — §II extension.
    Cat,
    /// Graphene Misra–Gries tracker (Park et al., 2020) — extension.
    Graphene,
    /// TiVaPRoMi linear weighting.
    LiPromi,
    /// TiVaPRoMi logarithmic weighting.
    LoPromi,
    /// TiVaPRoMi hybrid weighting.
    LoLiPromi,
    /// TiVaPRoMi counter-assisted weighting.
    CaPromi,
}

impl Technique {
    /// The nine techniques of Fig. 4 / Table III, in Table III order.
    pub const TABLE3: [Technique; 9] = [
        Technique::ProHit,
        Technique::MrLoc,
        Technique::Para,
        Technique::TwiCe,
        Technique::Cra,
        Technique::CaPromi,
        Technique::LiPromi,
        Technique::LoPromi,
        Technique::LoLiPromi,
    ];

    /// Extension techniques beyond the paper's nine.
    pub const EXTENSIONS: [Technique; 2] = [Technique::Cat, Technique::Graphene];

    /// The four TiVaPRoMi variants (Table II order).
    pub const TIVAPROMI: [Technique; 4] = [
        Technique::CaPromi,
        Technique::LoLiPromi,
        Technique::LoPromi,
        Technique::LiPromi,
    ];

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Technique::Para => "PARA",
            Technique::ProHit => "ProHit",
            Technique::MrLoc => "MRLoc",
            Technique::TwiCe => "TWiCe",
            Technique::Cra => "CRA",
            Technique::Cat => "CAT",
            Technique::Graphene => "Graphene",
            Technique::LiPromi => "LiPRoMi",
            Technique::LoPromi => "LoPRoMi",
            Technique::LoLiPromi => "LoLiPRoMi",
            Technique::CaPromi => "CaPRoMi",
        }
    }
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural parameters the hardware models depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwParams {
    /// Banks served (one table set each).
    pub banks: u32,
    /// Row-address width in bits.
    pub row_bits: u32,
    /// Refresh-interval index width in bits.
    pub interval_bits: u32,
    /// TiVaPRoMi history entries per bank.
    pub history_entries: u32,
    /// CaPRoMi counter entries per bank.
    pub counter_entries: u32,
    /// TWiCe CAM entries per bank.
    pub twice_entries: u32,
    /// MRLoc queue entries per bank.
    pub mrloc_entries: u32,
    /// ProHit hot+cold entries per bank.
    pub prohit_entries: u32,
    /// CRA counters per bank (= rows).
    pub cra_counters: u32,
    /// CAT nodes per bank.
    pub cat_nodes: u32,
    /// `P_base` exponent (LFSR width).
    pub lfsr_bits: u32,
}

impl HwParams {
    /// The paper's evaluated configuration (Table I / §IV).
    pub fn paper() -> Self {
        HwParams {
            banks: 4,
            row_bits: 16,
            interval_bits: 13,
            history_entries: 32,
            counter_entries: 64,
            twice_entries: 595,
            mrloc_entries: 64,
            prohit_entries: 8,
            cra_counters: 65_536,
            cat_nodes: 256,
            lfsr_bits: 23,
        }
    }

    /// Returns a copy with a different history size (ablation).
    pub fn with_history_entries(mut self, entries: u32) -> Self {
        self.history_entries = entries;
        self
    }

    /// Returns a copy with a different counter-table size (ablation).
    pub fn with_counter_entries(mut self, entries: u32) -> Self {
        self.counter_entries = entries;
        self
    }
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_names_match_paper() {
        assert_eq!(Technique::Para.to_string(), "PARA");
        assert_eq!(Technique::CaPromi.to_string(), "CaPRoMi");
        assert_eq!(Technique::TABLE3.len(), 9);
        assert_eq!(Technique::TIVAPROMI.len(), 4);
    }

    #[test]
    fn paper_params_match_table_i() {
        let p = HwParams::paper();
        assert_eq!(p.history_entries, 32);
        assert_eq!(p.counter_entries, 64);
        assert_eq!(p.lfsr_bits, 23);
    }
}
