//! Cycle-budget verification: does a technique's FSM fit between
//! commands at a given DRAM generation's clock?

use crate::cycles::{fsm_cycles, CyclePair};
use crate::{HwParams, Technique};
use dram_sim::DramTiming;
use serde::{Deserialize, Serialize};

/// Result of checking one technique against one timing's budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetCheck {
    /// Technique checked.
    pub technique: Technique,
    /// The FSM's worst-case cycles.
    pub cycles: CyclePair,
    /// The available budget.
    pub budget: crate::cycles::CyclePair,
    /// Whether the `act` loop fits.
    pub act_fits: bool,
    /// Whether the `ref` loop fits.
    pub ref_fits: bool,
}

impl BudgetCheck {
    /// Checks `technique` against `timing`.
    ///
    /// ```
    /// use rh_hwmodel::{BudgetCheck, HwParams, Technique};
    /// use dram_sim::DramTiming;
    ///
    /// let check = BudgetCheck::run(Technique::CaPromi, &HwParams::paper(), &DramTiming::ddr4());
    /// assert!(check.fits()); // 50 ≤ 54 and 258 ≤ 420
    /// ```
    pub fn run(technique: Technique, params: &HwParams, timing: &DramTiming) -> Self {
        let cycles = fsm_cycles(technique, params);
        let b = timing.cycle_budget();
        let budget = CyclePair {
            act: b.act_cycles,
            refresh: b.ref_cycles,
        };
        BudgetCheck {
            technique,
            cycles,
            budget,
            act_fits: cycles.act <= budget.act,
            ref_fits: cycles.refresh <= budget.refresh,
        }
    }

    /// Whether both loops fit.
    pub fn fits(&self) -> bool {
        self.act_fits && self.ref_fits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_on_ddr4() {
        // "From the table, it is clear that no violations of the clock
        //  cycle limits occur."
        let params = HwParams::paper();
        let ddr4 = DramTiming::ddr4();
        for t in Technique::TIVAPROMI {
            assert!(BudgetCheck::run(t, &params, &ddr4).fits(), "{t}");
        }
    }

    #[test]
    fn tivapromi_misses_ddr3_budget_serially() {
        let params = HwParams::paper();
        let ddr3 = DramTiming::ddr3();
        for t in Technique::TIVAPROMI {
            assert!(!BudgetCheck::run(t, &params, &ddr3).fits(), "{t}");
        }
    }

    #[test]
    fn capromi_ref_dominates_its_act_margin() {
        let check = BudgetCheck::run(Technique::CaPromi, &HwParams::paper(), &DramTiming::ddr4());
        assert_eq!(check.cycles.refresh, 258);
        assert_eq!(check.budget.refresh, 420);
        assert!(check.ref_fits);
    }
}
