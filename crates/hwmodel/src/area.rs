//! Component-level LUT area model (Table III).
//!
//! Re-synthesising the paper's VHDL on a Virtex UltraScale+ XCVU9P is
//! not possible here, so the model decomposes each technique into the
//! datapath components its publication describes and assigns each a LUT
//! cost.  The per-component coefficients below were fitted once against
//! the paper's DDR4 synthesis results (Table III) and are documented at
//! their definitions; with them the DDR4 model lands within a few
//! percent of the published totals for every technique (the
//! `model_tracks_table_iii_ddr4` test pins the tolerance).
//!
//! For DDR3 the paper re-implements seven of the nine techniques with
//! more parallelism per cycle so they fit the 320 MHz budget
//! (14 cycles after `act`, 112 after `ref`).  The model captures this as
//! a per-technique replication factor on the searchable/decision
//! structures; where pure lane replication under-predicts the published
//! number (TWiCe's CAM and CaPRoMi's per-entry decision logic), the
//! fitted factor is used and flagged in the component name.

use crate::cycles::fsm_cycles;
use crate::{HwParams, Technique};
use dram_sim::DramGeneration;
use serde::Serialize;

/// One named component and its LUT cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Component {
    /// What the LUTs implement.
    pub name: &'static str,
    /// Estimated LUT count.
    pub luts: u64,
}

/// A technique's full area decomposition.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AreaBreakdown {
    /// Technique modelled.
    pub technique: Technique,
    /// Target generation (DDR4 = 1.2 GHz ASIC-style, DDR3 = 320 MHz
    /// FPGA with parallelised logic).
    pub generation: DramGeneration,
    /// The components.
    pub components: Vec<Component>,
}

impl AreaBreakdown {
    /// Total LUTs.
    pub fn total(&self) -> u64 {
        self.components.iter().map(|c| c.luts).sum()
    }
}

// ---- fitted coefficients -------------------------------------------------
// Register bit with load enable and read muxing into a serial-search
// datapath.
const LUT_PER_REG_BIT: u64 = 1;
// One CAM bit: storage + XNOR match + match-line AND contribution.
const LUT_PER_CAM_BIT: u64 = 2;
// One counter bit with increment and parallel compare (per-entry
// counters in TWiCe/CRA).
const LUT_PER_COUNTER_BIT: u64 = 2;
// LFSR bit (feedback taps + state).
const LUT_PER_LFSR_BIT: u64 = 2;
// Interrupt/buffer logic of the Fig. 1 memory-controller interface,
// shared by every technique.
const LUT_INTERFACE: u64 = 157;
// Central FSM control.
const LUT_CONTROL: u64 = 150;
// Per-bank table selection, write port and pointer bookkeeping.
const LUT_BANK_OVERHEAD: u64 = 210;

fn lfsr(bits: u32) -> u64 {
    u64::from(bits) * LUT_PER_LFSR_BIT
}

fn comparator(bits: u32) -> u64 {
    u64::from(bits)
}

/// DDR3 logic-replication factor: how many search/decision lanes the
/// 320 MHz budget forces, from the cycle model.
pub fn ddr3_parallelism(technique: Technique, params: &HwParams) -> u32 {
    let cycles = fsm_cycles(technique, params);
    let act = cycles.act.div_ceil(14);
    let refresh = cycles.refresh.div_ceil(112);
    act.max(refresh).max(1)
}

/// The LUT breakdown of `technique` for `generation`.
///
/// ```
/// use rh_hwmodel::{area, HwParams, Technique};
/// use dram_sim::DramGeneration;
///
/// let b = area::area(Technique::Para, &HwParams::paper(), DramGeneration::Ddr4);
/// assert_eq!(b.total(), 349); // PARA is the Table III reference point
/// ```
pub fn area(technique: Technique, params: &HwParams, generation: DramGeneration) -> AreaBreakdown {
    let banks = u64::from(params.banks);
    let row_bits = params.row_bits;
    let interval_bits = params.interval_bits;
    let mut components = Vec::new();

    match technique {
        Technique::Para => {
            components.push(Component {
                name: "lfsr",
                luts: lfsr(params.lfsr_bits),
            });
            components.push(Component {
                name: "probability comparator",
                luts: comparator(params.lfsr_bits),
            });
            components.push(Component {
                name: "neighbor select",
                luts: 3,
            });
            components.push(Component {
                name: "control fsm",
                luts: 120,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::LiPromi | Technique::LoPromi | Technique::LoLiPromi => {
            let history_bits =
                u64::from(params.history_entries) * u64::from(row_bits + interval_bits + 1);
            components.push(Component {
                name: "history tables (all banks)",
                luts: banks * history_bits * LUT_PER_REG_BIT,
            });
            components.push(Component {
                name: "per-bank table overhead",
                luts: banks * LUT_BANK_OVERHEAD,
            });
            components.push(Component {
                name: "search comparator",
                luts: comparator(row_bits),
            });
            let weight = match technique {
                // 13-bit subtractor + wrap mux.
                Technique::LiPromi => 30,
                // modified priority encoder + w=0 corner handling.
                Technique::LoPromi => 103,
                // both datapaths + hit-select mux.
                Technique::LoLiPromi => 163,
                _ => unreachable!(),
            };
            components.push(Component {
                name: "weight datapath",
                luts: weight,
            });
            components.push(Component {
                name: "lfsr",
                luts: lfsr(params.lfsr_bits),
            });
            components.push(Component {
                name: "decision comparator",
                luts: comparator(params.lfsr_bits),
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::CaPromi => {
            let history_bits =
                u64::from(params.history_entries) * u64::from(row_bits + interval_bits + 1);
            let counter_entry_bits = u64::from(row_bits) + 8 + 1 + 6 + 1;
            components.push(Component {
                name: "history tables (all banks)",
                luts: banks * history_bits * LUT_PER_REG_BIT,
            });
            components.push(Component {
                name: "counter tables (all banks)",
                luts: banks
                    * u64::from(params.counter_entries)
                    * counter_entry_bits
                    * LUT_PER_REG_BIT,
            });
            components.push(Component {
                // increment, lock compare and replace mux per entry.
                name: "per-entry counter logic",
                luts: banks * u64::from(params.counter_entries) * 25,
            });
            components.push(Component {
                name: "per-bank table overhead",
                luts: banks * 2 * LUT_BANK_OVERHEAD,
            });
            components.push(Component {
                name: "dual search comparators",
                luts: 2 * comparator(row_bits),
            });
            components.push(Component {
                name: "cnt × w_log multiplier",
                luts: 8 * u64::from(interval_bits + 1),
            });
            components.push(Component {
                name: "weight datapath",
                luts: 103,
            });
            components.push(Component {
                name: "lfsr",
                luts: lfsr(params.lfsr_bits),
            });
            components.push(Component {
                name: "decision comparator",
                luts: comparator(params.lfsr_bits),
            });
            components.push(Component {
                name: "control fsm",
                luts: 2 * LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::TwiCe => {
            let entries = u64::from(params.twice_entries);
            components.push(Component {
                name: "cam tags",
                luts: banks * entries * u64::from(row_bits) * LUT_PER_CAM_BIT,
            });
            components.push(Component {
                name: "per-entry counters",
                luts: banks * entries * 16 * LUT_PER_COUNTER_BIT,
            });
            components.push(Component {
                name: "per-entry life + prune compare",
                luts: banks * entries * 28,
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::Cra => {
            // The published number counts the full per-row counter array
            // (the design that motivates "too large to be integrated
            // into the memory controller").
            components.push(Component {
                name: "per-row counters",
                luts: banks * u64::from(params.cra_counters) * 17 * LUT_PER_REG_BIT,
            });
            components.push(Component {
                name: "per-row compare tree",
                luts: banks * u64::from(params.cra_counters) * 5,
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::Cat => {
            let nodes = u64::from(params.cat_nodes);
            components.push(Component {
                name: "tree node counters + pointers",
                luts: banks * nodes * 34,
            });
            components.push(Component {
                name: "walk/split logic",
                luts: 420,
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::Graphene => {
            // 47 entries of CAM tag + counter + the spillover register.
            components.push(Component {
                name: "mg cam tags",
                luts: banks * 47 * u64::from(row_bits) * LUT_PER_CAM_BIT,
            });
            components.push(Component {
                name: "mg counters",
                luts: banks * 47 * 18 * LUT_PER_COUNTER_BIT,
            });
            components.push(Component {
                name: "spillover + min logic",
                luts: 260,
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::ProHit => {
            let table_bits = u64::from(params.prohit_entries) * u64::from(row_bits + 1);
            components.push(Component {
                name: "hot/cold tables (all banks)",
                luts: banks * table_bits * LUT_PER_REG_BIT,
            });
            components.push(Component {
                name: "per-bank promote/demote muxing",
                luts: banks * 100,
            });
            components.push(Component {
                name: "search comparator",
                luts: comparator(row_bits),
            });
            components.push(Component {
                name: "lfsr",
                luts: lfsr(params.lfsr_bits),
            });
            components.push(Component {
                name: "decision comparator",
                luts: comparator(params.lfsr_bits),
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
        Technique::MrLoc => {
            // The queue maps to block RAM; LUTs carry pointers, search
            // lanes and the weighted-probability datapath.
            components.push(Component {
                name: "per-bank queue pointers/ports",
                luts: banks * 300,
            });
            components.push(Component {
                name: "dual search comparators",
                luts: 2 * comparator(row_bits),
            });
            components.push(Component {
                name: "age→probability datapath",
                luts: 120,
            });
            components.push(Component {
                name: "lfsr",
                luts: lfsr(params.lfsr_bits),
            });
            components.push(Component {
                name: "decision comparator",
                luts: comparator(params.lfsr_bits),
            });
            components.push(Component {
                name: "control fsm",
                luts: LUT_CONTROL,
            });
            components.push(Component {
                name: "mc interface",
                luts: LUT_INTERFACE,
            });
        }
    }

    if generation == DramGeneration::Ddr3 {
        let factor = ddr3_replication_factor(technique, params);
        if factor > 1.0 {
            let base: u64 = components.iter().map(|c| c.luts).sum();
            // LUT counts are ≪ 2^53; the float product is exact enough
            // and nonnegative (factor > 1.0 checked above).
            #[allow(clippy::cast_possible_truncation)]
            let extra = ((factor - 1.0) * base as f64) as u64;
            components.push(Component {
                name: "ddr3 parallelisation (replicated lanes)",
                luts: extra,
            });
        }
    }

    AreaBreakdown {
        technique,
        generation,
        components,
    }
}

/// Total-area multiplier of the DDR3 re-implementation relative to DDR4.
///
/// PARA and CRA fit the budget unchanged (factor 1).  For the others the
/// factor is fitted to the paper's DDR3 column; the pure
/// lane-replication lower bound from [`ddr3_parallelism`] is documented
/// in the test suite.
pub fn ddr3_replication_factor(technique: Technique, params: &HwParams) -> f64 {
    let p = ddr3_parallelism(technique, params);
    match technique {
        Technique::Para | Technique::Cra => 1.0,
        // Three table-read lanes; storage dominates, so the total grows
        // far slower than the lane count.
        Technique::LiPromi | Technique::LoPromi | Technique::LoLiPromi => 1.27,
        // Full per-entry parallel decision datapath (fitted).
        Technique::CaPromi => 4.65,
        // CAM + pruning retimed for 320 MHz (fitted; exceeds the XCVU9P).
        Technique::TwiCe => 13.38,
        Technique::ProHit => 2.59,
        Technique::MrLoc => 2.50,
        // No paper reference; use the lane count.
        Technique::Cat | Technique::Graphene => f64::from(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn model_tracks_table_iii_ddr4() {
        let params = HwParams::paper();
        for row in &reference::TABLE3 {
            let model = area(row.technique, &params, DramGeneration::Ddr4).total() as f64;
            let paper = row.luts_ddr4 as f64;
            let ratio = model / paper;
            assert!(
                (0.7..=1.4).contains(&ratio),
                "{}: model {model} vs paper {paper} (ratio {ratio:.2})",
                row.technique
            );
        }
    }

    #[test]
    fn model_tracks_table_iii_ddr3() {
        let params = HwParams::paper();
        for row in &reference::TABLE3 {
            let model = area(row.technique, &params, DramGeneration::Ddr3).total() as f64;
            let paper = row.luts_ddr3 as f64;
            let ratio = model / paper;
            assert!(
                (0.6..=1.5).contains(&ratio),
                "{}: model {model} vs paper {paper} (ratio {ratio:.2})",
                row.technique
            );
        }
    }

    #[test]
    fn para_is_the_smallest() {
        let params = HwParams::paper();
        let para = area(Technique::Para, &params, DramGeneration::Ddr4).total();
        for t in Technique::TABLE3 {
            assert!(
                area(t, &params, DramGeneration::Ddr4).total() >= para,
                "{t}"
            );
        }
    }

    #[test]
    fn tivapromi_sits_between_probabilistic_and_tabled_counters() {
        let params = HwParams::paper();
        let a = |t| area(t, &params, DramGeneration::Ddr4).total();
        for t in [
            Technique::LiPromi,
            Technique::LoPromi,
            Technique::LoLiPromi,
            Technique::CaPromi,
        ] {
            assert!(a(t) > a(Technique::Para));
            assert!(a(t) < a(Technique::TwiCe));
            assert!(a(t) < a(Technique::Cra));
        }
    }

    #[test]
    fn ddr3_never_shrinks() {
        let params = HwParams::paper();
        for t in Technique::TABLE3 {
            assert!(
                area(t, &params, DramGeneration::Ddr3).total()
                    >= area(t, &params, DramGeneration::Ddr4).total(),
                "{t}"
            );
        }
    }

    #[test]
    fn parallelism_is_driven_by_cycles() {
        let params = HwParams::paper();
        assert_eq!(ddr3_parallelism(Technique::Para, &params), 1);
        assert_eq!(ddr3_parallelism(Technique::Cra, &params), 1);
        assert_eq!(ddr3_parallelism(Technique::LiPromi, &params), 3);
        assert_eq!(ddr3_parallelism(Technique::CaPromi, &params), 4);
    }

    #[test]
    fn breakdown_components_are_nonempty_and_positive() {
        let params = HwParams::paper();
        for t in Technique::TABLE3 {
            let b = area(t, &params, DramGeneration::Ddr4);
            assert!(!b.components.is_empty());
            assert!(b.total() > 0);
        }
    }
}
