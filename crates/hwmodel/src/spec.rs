//! Transition-table specifications of the paper's FSMs — the Fig. 2 and
//! Fig. 3 state graphs as data, with structural checks.
//!
//! [`fsm`](crate::fsm) walks the worst-case paths for cycle counting;
//! this module captures the *full* transition structure (including the
//! negative-decision and same-window paths the walks skip) so the test
//! suite can verify spec-level properties the VHDL reviewers would
//! check by eye:
//!
//! * determinism — one successor per (state, event);
//! * reachability — every state is reachable from `Idle`;
//! * liveness — every state has a path back to `Idle` (no FSM loop can
//!   wedge between commands);
//! * conformance — the worst-case `act` path through the graph visits
//!   exactly the states the cycle model charges for.

use crate::fsm::{CounterAssistedState, TimeVaryingState};
use std::collections::{HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// Events of the Fig. 2 machine (labels from the figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TvEvent {
    /// `act` command observed.
    Act,
    /// `ref` command observed.
    Ref,
    /// `search_cm`: sequential table search finished.
    SearchComplete,
    /// Weight computation finished (implicit edge in the figure).
    WeightReady,
    /// `pos`: the probabilistic decision fired.
    Pos,
    /// `neg`: the probabilistic decision declined.
    Neg,
    /// Trigger bookkeeping finished (implicit edge).
    UpdateDone,
    /// `same_RW`: the refresh stayed within the current window.
    SameWindow,
    /// `new_RW`: a new refresh window started.
    NewWindow,
    /// Table reset finished (implicit edge).
    ResetDone,
}

/// Events of the Fig. 3 machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaEvent {
    /// `act` command observed.
    Act,
    /// `ref` command observed.
    Ref,
    /// `found`: the counter-table search matched.
    Found,
    /// `insert`: search missed; insert a new entry.
    Insert,
    /// `full`: the table was full — run the probabilistic replacement.
    Full,
    /// Insert found a free slot (implicit edge).
    SlotFree,
    /// `fail`: the probabilistic replacement hit a locked entry.
    Fail,
    /// `success`: the replacement evicted an unlocked entry.
    Success,
    /// `link` bookkeeping finished (history slot attached).
    Linked,
    /// Entry update finished.
    UpdateDone,
    /// Per-entry weight computed.
    WeightReady,
    /// Eq. 2 encoder output ready.
    LogReady,
    /// Linked history interval fetched.
    LinkFetched,
    /// `not_end`: more counter entries to decide.
    NotEnd,
    /// `end`: decision walk finished.
    End,
}

/// A deterministic finite state machine given as a transition list.
///
/// ```
/// use rh_hwmodel::spec::{fig2_machine, TvEvent};
/// use rh_hwmodel::TimeVaryingState;
///
/// let machine = fig2_machine();
/// assert!(machine.is_deterministic());
/// assert_eq!(
///     machine.step(TimeVaryingState::Idle, TvEvent::Act),
///     Some(TimeVaryingState::SearchInTable)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct StateMachine<S, E> {
    /// The idle/initial state.
    pub initial: S,
    /// `(from, event, to)` triples.
    pub transitions: Vec<(S, E, S)>,
}

impl<S, E> StateMachine<S, E>
where
    S: Copy + Eq + Hash + Debug,
    E: Copy + Eq + Hash + Debug,
{
    /// The successor of `state` on `event`, if defined.
    pub fn step(&self, state: S, event: E) -> Option<S> {
        self.transitions
            .iter()
            .find(|(from, e, _)| *from == state && *e == event)
            .map(|&(_, _, to)| to)
    }

    /// All states mentioned by the machine.
    pub fn states(&self) -> HashSet<S> {
        let mut states: HashSet<S> = HashSet::new();
        states.insert(self.initial);
        for &(from, _, to) in &self.transitions {
            states.insert(from);
            states.insert(to);
        }
        states
    }

    /// Whether every (state, event) pair has at most one successor.
    pub fn is_deterministic(&self) -> bool {
        let mut seen = HashSet::new();
        self.transitions
            .iter()
            .all(|&(from, event, _)| seen.insert((from, event)))
    }

    /// States reachable from the initial state.
    pub fn reachable(&self) -> HashSet<S> {
        let mut reached = HashSet::new();
        let mut queue = VecDeque::new();
        reached.insert(self.initial);
        queue.push_back(self.initial);
        while let Some(state) = queue.pop_front() {
            for &(from, _, to) in &self.transitions {
                if from == state && reached.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        reached
    }

    /// Whether every state can reach `target` (liveness: the FSM always
    /// returns to idle before the next command).
    pub fn all_reach(&self, target: S) -> bool {
        // Reverse reachability from `target`.
        let mut reaches = HashSet::new();
        reaches.insert(target);
        let mut changed = true;
        while changed {
            changed = false;
            for &(from, _, to) in &self.transitions {
                if reaches.contains(&to) && reaches.insert(from) {
                    changed = true;
                }
            }
        }
        self.states().iter().all(|s| reaches.contains(s))
    }

    /// Runs an event script from the initial state, returning the
    /// visited states (excluding the initial), or `None` if an event has
    /// no defined transition.
    pub fn run(&self, script: &[E]) -> Option<Vec<S>> {
        let mut state = self.initial;
        let mut visited = Vec::with_capacity(script.len());
        for &event in script {
            state = self.step(state, event)?;
            visited.push(state);
        }
        Some(visited)
    }
}

/// The Fig. 2 machine (LiPRoMi / LoPRoMi / LoLiPRoMi).
pub fn fig2_machine() -> StateMachine<TimeVaryingState, TvEvent> {
    use TimeVaryingState as S;
    use TvEvent as E;
    StateMachine {
        initial: S::Idle,
        transitions: vec![
            // act path
            (S::Idle, E::Act, S::SearchInTable),
            (S::SearchInTable, E::SearchComplete, S::CalculateWeight),
            (S::CalculateWeight, E::WeightReady, S::Decide),
            (S::Decide, E::Pos, S::ActivateNeighborAndUpdateTable),
            (S::Decide, E::Neg, S::Idle),
            (S::ActivateNeighborAndUpdateTable, E::UpdateDone, S::Idle),
            // ref path
            (S::Idle, E::Ref, S::UpdateRefreshInterval),
            (S::UpdateRefreshInterval, E::SameWindow, S::Idle),
            (S::UpdateRefreshInterval, E::NewWindow, S::ResetTable),
            (S::ResetTable, E::ResetDone, S::Idle),
        ],
    }
}

/// The Fig. 3 machine (CaPRoMi).
pub fn fig3_machine() -> StateMachine<CounterAssistedState, CaEvent> {
    use CaEvent as E;
    use CounterAssistedState as S;
    StateMachine {
        initial: S::Idle,
        transitions: vec![
            // act path: search, then hit-update or insert/replace+link
            (S::Idle, E::Act, S::SearchIncrease),
            (S::SearchIncrease, E::Found, S::Update),
            (S::SearchIncrease, E::Insert, S::Insert),
            (S::Insert, E::SlotFree, S::Link),
            (S::Insert, E::Full, S::Replace),
            (S::Replace, E::Fail, S::Idle),
            (S::Replace, E::Success, S::Link),
            (S::Link, E::Linked, S::Update),
            (S::Update, E::UpdateDone, S::Idle),
            // ref path: per-entry decision walk
            (S::Idle, E::Ref, S::FindLinked),
            (S::FindLinked, E::LinkFetched, S::Weight),
            (S::Weight, E::WeightReady, S::LogWeight),
            (S::LogWeight, E::LogReady, S::Decision),
            (S::Decision, E::NotEnd, S::FindLinked),
            (S::Decision, E::End, S::Idle),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{counter_assisted_act_walk, time_varying_act_walk};

    #[test]
    fn fig2_is_deterministic_reachable_and_live() {
        let m = fig2_machine();
        assert!(m.is_deterministic());
        assert_eq!(m.reachable(), m.states());
        assert!(m.all_reach(TimeVaryingState::Idle));
        assert_eq!(m.states().len(), 7);
    }

    #[test]
    fn fig3_is_deterministic_reachable_and_live() {
        let m = fig3_machine();
        assert!(m.is_deterministic());
        assert_eq!(m.reachable(), m.states());
        assert!(m.all_reach(CounterAssistedState::Idle));
        assert_eq!(m.states().len(), 10);
    }

    #[test]
    fn fig2_trigger_script_matches_the_cycle_walk() {
        use TimeVaryingState as S;
        use TvEvent as E;
        let m = fig2_machine();
        let visited = m
            .run(&[
                E::Act,
                E::SearchComplete,
                E::WeightReady,
                E::Pos,
                E::UpdateDone,
            ])
            .expect("valid script");
        assert_eq!(
            visited,
            vec![
                S::SearchInTable,
                S::CalculateWeight,
                S::Decide,
                S::ActivateNeighborAndUpdateTable,
                S::Idle
            ]
        );
        // Conformance: the states the cycle model charges for are
        // exactly the non-idle states of this path.
        let walk_states: Vec<S> = time_varying_act_walk(32, 1)
            .iter()
            .map(|s| s.state)
            .collect();
        for s in &walk_states {
            assert!(visited.contains(s), "{s:?} missing from the graph path");
        }
    }

    #[test]
    fn fig2_negative_decision_returns_to_idle() {
        use TvEvent as E;
        let m = fig2_machine();
        let visited = m
            .run(&[E::Act, E::SearchComplete, E::WeightReady, E::Neg])
            .expect("valid script");
        assert_eq!(visited.last(), Some(&TimeVaryingState::Idle));
    }

    #[test]
    fn fig3_replace_fail_drops_the_insertion() {
        use CaEvent as E;
        let m = fig3_machine();
        let visited = m
            .run(&[E::Act, E::Insert, E::Full, E::Fail])
            .expect("valid script");
        assert_eq!(visited.last(), Some(&CounterAssistedState::Idle));
    }

    #[test]
    fn fig3_decision_walk_loops_per_entry() {
        use CaEvent as E;
        use CounterAssistedState as S;
        let m = fig3_machine();
        // Two entries: the decision loop returns to FindLinked once.
        let visited = m
            .run(&[
                E::Ref,
                E::LinkFetched,
                E::WeightReady,
                E::LogReady,
                E::NotEnd,
                E::LinkFetched,
                E::WeightReady,
                E::LogReady,
                E::End,
            ])
            .expect("valid script");
        assert_eq!(visited.iter().filter(|&&s| s == S::Decision).count(), 2);
        assert_eq!(visited.last(), Some(&S::Idle));
        // Conformance with the cycle walk: the per-entry loop visits the
        // four states the ref walk charges four cycles per entry for.
        let walk_states: std::collections::HashSet<S> = counter_assisted_ref_states();
        for s in [S::FindLinked, S::Weight, S::LogWeight, S::Decision] {
            assert!(walk_states.contains(&s), "{s:?} not charged by the walk");
        }
    }

    fn counter_assisted_ref_states() -> std::collections::HashSet<CounterAssistedState> {
        crate::fsm::counter_assisted_ref_walk(4)
            .iter()
            .map(|s| s.state)
            .collect()
    }

    #[test]
    fn undefined_events_are_rejected() {
        use TvEvent as E;
        let m = fig2_machine();
        // Ref is not defined from the search state.
        assert!(m.run(&[E::Act, E::Ref]).is_none());
    }

    #[test]
    fn fig3_act_walk_states_are_on_the_graph() {
        let m = fig3_machine();
        let states = m.states();
        for step in counter_assisted_act_walk(64) {
            assert!(states.contains(&step.state), "{:?}", step.state);
        }
    }
}
