//! DRAM energy cost of mitigation traffic.
//!
//! Every extra activation a mitigation issues costs an ACT/PRE cycle of
//! DRAM core energy.  The model derives the per-activation energy from
//! JEDEC IDD current specs the same way DRAMPower-class tools do:
//!
//! ```text
//! E_act ≈ (IDD0 − IDD3N) · VDD · tRC
//! ```
//!
//! with DDR4-2400 datasheet-typical values (IDD0 ≈ 58 mA,
//! IDD3N ≈ 44 mA, VDD = 1.2 V, tRC = 45 ns) giving ≈ 0.76 nJ of core
//! energy per activate-precharge pair per device, ≈ 6 nJ across an
//! 8-device rank.  The absolute numbers are device-dependent; the model
//! exposes them as parameters and the experiments report *relative*
//! energy overhead, which only depends on the activation counts.

use serde::{Deserialize, Serialize};

/// Per-operation DRAM energy parameters.
///
/// ```
/// use rh_hwmodel::EnergyModel;
///
/// let e = EnergyModel::ddr4();
/// // PARA's 0.1 % overhead on a fully loaded bank costs ~0.1 % of the
/// // activation energy — microwatts against auto-refresh's milliwatts.
/// let ratio = e.overhead_fraction(1_000_000, 1_000);
/// assert!((ratio - 0.001).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one row activation (ACT + PRE) across the rank, in nJ.
    pub act_energy_nj: f64,
    /// Energy of one refresh command (tRFC) across the rank, in nJ.
    pub refresh_energy_nj: f64,
}

impl EnergyModel {
    /// DDR4-2400, one ×8 rank: IDD0-based activation energy and
    /// IDD5B-based refresh energy.
    pub fn ddr4() -> Self {
        EnergyModel {
            // 8 devices × (58 mA − 44 mA) × 1.2 V × 45 ns ≈ 6.0 nJ
            act_energy_nj: 6.0,
            // 8 devices × (190 mA − 44 mA) × 1.2 V × 350 ns ≈ 490 nJ
            refresh_energy_nj: 490.0,
        }
    }

    /// Energy consumed by `activations` row activations, in µJ.
    pub fn activation_energy_uj(&self, activations: u64) -> f64 {
        activations as f64 * self.act_energy_nj / 1000.0
    }

    /// Mitigation energy overhead as a fraction of workload activation
    /// energy — with a pure activation-count overhead this equals the
    /// activation overhead itself, which is exactly why Fig. 4's y-axis
    /// is also the energy story.
    pub fn overhead_fraction(&self, workload_acts: u64, mitigation_acts: u64) -> f64 {
        if workload_acts == 0 {
            0.0
        } else {
            mitigation_acts as f64 / workload_acts as f64
        }
    }

    /// Average mitigation power in µW given extra activations over a
    /// time span in seconds.
    pub fn mitigation_power_uw(&self, mitigation_acts: u64, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.activation_energy_uj(mitigation_acts) / seconds
        }
    }

    /// Baseline auto-refresh power in µW for a device refreshing every
    /// `interval_us` microseconds.
    pub fn refresh_power_uw(&self, interval_us: f64) -> f64 {
        self.refresh_energy_nj / 1000.0 / (interval_us * 1e-6)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_energy_scales_linearly() {
        let m = EnergyModel::ddr4();
        let one = m.activation_energy_uj(1);
        assert!((m.activation_energy_uj(1000) - 1000.0 * one).abs() < 1e-9);
        assert!((one - 0.006).abs() < 1e-9); // 6 nJ
    }

    #[test]
    fn overhead_fraction_matches_activation_ratio() {
        let m = EnergyModel::ddr4();
        assert!((m.overhead_fraction(1_000_000, 1_000) - 0.001).abs() < 1e-12);
        assert_eq!(m.overhead_fraction(0, 5), 0.0);
    }

    #[test]
    fn mitigation_power_example() {
        // PARA at 0.1 % of a fully loaded bank (165 acts / 7.8 µs ≈
        // 21 M acts/s): ≈ 21 K extra acts/s ≈ 127 µW.
        let m = EnergyModel::ddr4();
        let acts_per_sec = 165.0 / 7.8e-6;
        let extra = (acts_per_sec * 0.001) as u64;
        let power = m.mitigation_power_uw(extra, 1.0);
        assert!((100.0..200.0).contains(&power), "{power} µW");
    }

    #[test]
    fn refresh_power_dominates_mitigation_power() {
        // Auto-refresh at 7.8 µs is tens of mW; well above any
        // mitigation's extra-activation power — the paper's overhead
        // metric is about bandwidth/latency, not raw energy.
        let m = EnergyModel::ddr4();
        let refresh = m.refresh_power_uw(7.8);
        assert!(refresh > 10_000.0, "{refresh} µW");
        assert_eq!(m.mitigation_power_uw(1000, 0.0), 0.0);
    }
}
