//! Per-command FSM cycle counts (Table II) for all techniques.

use crate::fsm::{
    counter_assisted_act_walk, counter_assisted_ref_walk, time_varying_act_walk,
    time_varying_ref_walk, walk_cycles,
};
use crate::{HwParams, Technique};
use serde::{Deserialize, Serialize};

/// Worst-case FSM cycles after an `act` and after a `ref` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CyclePair {
    /// Cycles from `idle` back to `idle` after an `act`.
    pub act: u32,
    /// Cycles from `idle` back to `idle` after a `ref`.
    pub refresh: u32,
}

/// Worst-case cycles for `technique` at the given structural parameters.
///
/// The four TiVaPRoMi variants execute the Fig. 2 / Fig. 3 walks; the
/// baselines use serial-equivalent estimates from their publications
/// (PARA and CRA are single-digit-cycle stateless/parallel designs —
/// "only PARA and CRA could fit in the cycle budget of the low-frequency
/// DDR3 controller due to their simple internal structure"; ProHit and
/// MRLoc walk their tables; TWiCe matches in a CAM in a few cycles but
/// walks all entries for pruning on `ref`).
///
/// ```
/// use rh_hwmodel::{fsm_cycles, HwParams, Technique};
/// let p = HwParams::paper();
/// assert_eq!(fsm_cycles(Technique::CaPromi, &p).act, 50);     // Table II
/// assert_eq!(fsm_cycles(Technique::CaPromi, &p).refresh, 258);
/// ```
pub fn fsm_cycles(technique: Technique, params: &HwParams) -> CyclePair {
    match technique {
        Technique::LiPromi | Technique::LoPromi => CyclePair {
            act: walk_cycles(&time_varying_act_walk(params.history_entries, 1)),
            refresh: walk_cycles(&time_varying_ref_walk()),
        },
        Technique::LoLiPromi => CyclePair {
            // Both weights are computed speculatively during the search,
            // saving the calculate-weight cycle.
            act: walk_cycles(&time_varying_act_walk(params.history_entries, 0)),
            refresh: walk_cycles(&time_varying_ref_walk()),
        },
        Technique::CaPromi => CyclePair {
            act: walk_cycles(&counter_assisted_act_walk(params.counter_entries)),
            refresh: walk_cycles(&counter_assisted_ref_walk(params.counter_entries)),
        },
        // Stateless: one LFSR draw, one compare, one neighbor select.
        Technique::Para => CyclePair { act: 3, refresh: 1 },
        // Two victims, hot+cold searched one entry per cycle, plus table
        // update.
        Technique::ProHit => CyclePair {
            act: 2 * params.prohit_entries + 4,
            refresh: 2,
        },
        // Two victims, queue searched four entries per cycle, plus the
        // weighted-probability datapath.
        Technique::MrLoc => CyclePair {
            act: 2 * params.mrloc_entries.div_ceil(4) + 4,
            refresh: 1,
        },
        // CAM match is parallel; pruning walks the valid entries two per
        // cycle at every interval boundary.
        Technique::TwiCe => CyclePair {
            act: 4,
            refresh: params.twice_entries.div_ceil(2) + 2,
        },
        // Counter cache read-modify-write; the DRAM-side sweep is free.
        Technique::Cra => CyclePair { act: 3, refresh: 8 },
        // Tree walk: one level per cycle plus a possible split.
        Technique::Cat => CyclePair {
            act: 32 - params.cra_counters.leading_zeros() + 4,
            refresh: 2,
        },
        // Misra–Gries: CAM-style match plus the min/spillover compare.
        Technique::Graphene => CyclePair { act: 6, refresh: 2 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_is_reproduced_exactly() {
        let p = HwParams::paper();
        let rows: Vec<(Technique, u32, u32)> = Technique::TIVAPROMI
            .iter()
            .map(|&t| {
                let c = fsm_cycles(t, &p);
                (t, c.act, c.refresh)
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                (Technique::CaPromi, 50, 258),
                (Technique::LoLiPromi, 36, 3),
                (Technique::LoPromi, 37, 3),
                (Technique::LiPromi, 37, 3),
            ]
        );
    }

    #[test]
    fn ddr4_budgets_hold_for_all_techniques() {
        let p = HwParams::paper();
        for t in Technique::TABLE3 {
            let c = fsm_cycles(t, &p);
            assert!(c.act <= 54, "{t} act {}", c.act);
            assert!(c.refresh <= 420, "{t} ref {}", c.refresh);
        }
    }

    #[test]
    fn only_para_and_cra_fit_ddr3_unmodified() {
        // §IV: "Only PARA and CRA could fit in the cycle budget of the
        // low-frequency DDR3 controller."
        let p = HwParams::paper();
        let fits: Vec<Technique> = Technique::TABLE3
            .iter()
            .copied()
            .filter(|&t| {
                let c = fsm_cycles(t, &p);
                c.act <= 14 && c.refresh <= 112
            })
            .collect();
        assert_eq!(fits, vec![Technique::Para, Technique::Cra]);
    }

    #[test]
    fn cycles_scale_with_history_size() {
        let small = HwParams::paper().with_history_entries(8);
        let large = HwParams::paper().with_history_entries(128);
        assert!(
            fsm_cycles(Technique::LiPromi, &small).act < fsm_cycles(Technique::LiPromi, &large).act
        );
        // A 128-entry history would blow the DDR4 act budget — the
        // paper's 32 entries are also a timing choice.
        assert!(fsm_cycles(Technique::LiPromi, &large).act > 54);
    }
}
