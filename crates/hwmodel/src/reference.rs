//! The paper's published numbers (Tables II & III, §IV text), kept as
//! constants so every regenerator can print *paper vs. model/measured*
//! side by side and EXPERIMENTS.md can be produced mechanically.

use crate::Technique;

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Technique.
    pub technique: Technique,
    /// LUTs when targeting DDR4.
    pub luts_ddr4: u64,
    /// LUTs when targeting DDR3 (parallelised variants).
    pub luts_ddr3: u64,
    /// The "Vulnerable to Attack" column.
    pub vulnerable: bool,
    /// Activations overhead mean, percent.
    pub overhead_mean: f64,
    /// Activations overhead standard deviation, percent.
    pub overhead_std: f64,
    /// False-positive rate, percent.
    pub fpr: f64,
}

/// Table III as published.
pub const TABLE3: [Table3Row; 9] = [
    Table3Row {
        technique: Technique::ProHit,
        luts_ddr4: 1_653,
        luts_ddr3: 4_274,
        vulnerable: false,
        overhead_mean: 0.6,
        overhead_std: 0.019,
        fpr: 0.34,
    },
    Table3Row {
        technique: Technique::MrLoc,
        luts_ddr4: 1_865,
        luts_ddr3: 4_667,
        vulnerable: true,
        overhead_mean: 0.11,
        overhead_std: 0.012,
        fpr: 0.064,
    },
    Table3Row {
        technique: Technique::Para,
        luts_ddr4: 349,
        luts_ddr3: 349,
        vulnerable: true,
        overhead_mean: 0.1,
        overhead_std: 0.0084,
        fpr: 0.062,
    },
    Table3Row {
        technique: Technique::TwiCe,
        luts_ddr4: 258_356,
        luts_ddr3: 3_456_558,
        vulnerable: false,
        overhead_mean: 0.0037,
        overhead_std: 0.0001,
        fpr: 0.0,
    },
    Table3Row {
        technique: Technique::Cra,
        luts_ddr4: 5_694_107,
        luts_ddr3: 5_694_107,
        vulnerable: false,
        overhead_mean: 0.0037,
        overhead_std: 0.0001,
        fpr: 0.0,
    },
    Table3Row {
        technique: Technique::CaPromi,
        luts_ddr4: 21_061,
        luts_ddr3: 97_863,
        vulnerable: false,
        overhead_mean: 0.008,
        overhead_std: 0.00023,
        fpr: 0.007,
    },
    Table3Row {
        technique: Technique::LiPromi,
        luts_ddr4: 5_155,
        luts_ddr3: 6_586,
        vulnerable: true,
        overhead_mean: 0.012,
        overhead_std: 0.00034,
        fpr: 0.013,
    },
    Table3Row {
        technique: Technique::LoPromi,
        luts_ddr4: 5_228,
        luts_ddr3: 6_603,
        vulnerable: false,
        overhead_mean: 0.016,
        overhead_std: 0.00064,
        fpr: 0.010,
    },
    Table3Row {
        technique: Technique::LoLiPromi,
        luts_ddr4: 5_374,
        luts_ddr3: 6_701,
        vulnerable: false,
        overhead_mean: 0.014,
        overhead_std: 0.00027,
        fpr: 0.011,
    },
];

/// One column of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Column {
    /// Technique.
    pub technique: Technique,
    /// Cycles after an `act`.
    pub act: u32,
    /// Cycles after a `ref`.
    pub refresh: u32,
}

/// Table II as published (budgets: 54 cycles after `act`, 420 after
/// `ref`, both at 1.2 GHz).
pub const TABLE2: [Table2Column; 4] = [
    Table2Column {
        technique: Technique::CaPromi,
        act: 50,
        refresh: 258,
    },
    Table2Column {
        technique: Technique::LoLiPromi,
        act: 36,
        refresh: 3,
    },
    Table2Column {
        technique: Technique::LoPromi,
        act: 37,
        refresh: 3,
    },
    Table2Column {
        technique: Technique::LiPromi,
        act: 37,
        refresh: 3,
    },
];

/// §IV flooding-attack reference points: activation count of the first
/// extra activation under a flood of `act`s to one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodingPoint {
    /// Technique.
    pub technique: Technique,
    /// Approximate activation count at the first triggered extra
    /// activation, as reported in §IV.
    pub first_trigger_acts: u64,
}

/// "LoPRoMi and LoLiPRoMi issued an extra activation in the first 10 K
/// activations.  For CaPRoMi the extra activation is issued slightly
/// later (at 15 K activations) and for LiPRoMi it is significantly later
/// (around 40 K activations)."
pub const FLOODING: [FloodingPoint; 4] = [
    FloodingPoint {
        technique: Technique::LoPromi,
        first_trigger_acts: 10_000,
    },
    FloodingPoint {
        technique: Technique::LoLiPromi,
        first_trigger_acts: 10_000,
    },
    FloodingPoint {
        technique: Technique::CaPromi,
        first_trigger_acts: 15_000,
    },
    FloodingPoint {
        technique: Technique::LiPromi,
        first_trigger_acts: 40_000,
    },
];

/// The safety bound the flooding points are compared against: half of
/// the 139 K threshold, "to take the case into account where both
/// neighbors are aggressors".
pub const FLOODING_SAFETY_BOUND: u64 = 69_000;

/// Storage per bank in bytes, §IV text and Fig. 4 x-axis.
pub fn storage_bytes(technique: Technique) -> Option<f64> {
    match technique {
        Technique::Para => Some(0.0),
        Technique::LiPromi | Technique::LoPromi | Technique::LoLiPromi => Some(120.0),
        Technique::CaPromi => Some(374.0),
        _ => None, // not stated numerically in the paper
    }
}

/// Looks up the paper's Table III row for a technique.
pub fn table3_row(technique: Technique) -> Option<&'static Table3Row> {
    TABLE3.iter().find(|r| r.technique == technique)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_quoted_in_the_text_hold() {
        // "9×−27× reduced storage requirement than Tabled Counters":
        // TWiCe storage ≈ 27 × 120 B ≈ 9 × 374 B ≈ 3.3 KB.
        let loli = storage_bytes(Technique::LoLiPromi).unwrap();
        let ca = storage_bytes(Technique::CaPromi).unwrap();
        assert!((27.0 * loli - 3240.0).abs() < 1.0);
        assert!((9.0 * ca - 3366.0).abs() < 1.0);
    }

    #[test]
    fn lut_ratios_match_relative_column() {
        // Table III quotes ratios relative to PARA.
        let para = table3_row(Technique::Para).unwrap().luts_ddr4 as f64;
        let check = |t: Technique, ratio: f64| {
            let r = table3_row(t).unwrap().luts_ddr4 as f64 / para;
            assert!((r - ratio).abs() / ratio < 0.02, "{t}: {r} vs {ratio}");
        };
        check(Technique::ProHit, 4.7);
        check(Technique::MrLoc, 5.3);
        check(Technique::TwiCe, 740.0);
        check(Technique::Cra, 16_315.0);
        check(Technique::CaPromi, 60.0);
        check(Technique::LiPromi, 15.0);
    }

    #[test]
    fn flooding_points_are_all_below_the_bound() {
        for p in FLOODING {
            assert!(p.first_trigger_acts < FLOODING_SAFETY_BOUND);
        }
    }

    #[test]
    fn vulnerable_column_matches_paper() {
        let vulnerable: Vec<Technique> = TABLE3
            .iter()
            .filter(|r| r.vulnerable)
            .map(|r| r.technique)
            .collect();
        assert_eq!(
            vulnerable,
            vec![Technique::MrLoc, Technique::Para, Technique::LiPromi]
        );
    }
}
