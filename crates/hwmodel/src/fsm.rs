//! Executable models of the paper's FSMs (Fig. 2 and Fig. 3).
//!
//! Each state carries a micro-op latency; walking the worst-case path of
//! a command reproduces Table II.  Latency assumptions, taken from the
//! FSM descriptions in §III:
//!
//! * History-table search compares **one entry per cycle** ("we
//!   sequentially search the table"; the search is overlapped with the
//!   activate-to-activate gap).
//! * CaPRoMi's counter-table search compares **two entries per cycle**
//!   (the table is twice as large but must fit the same 54-cycle DDR4
//!   budget, so the VHDL doubles the comparator lanes).
//! * Weight calculation costs one cycle for the subtractor (linear) and
//!   one for the modified priority encoder (logarithmic).  LoLiPRoMi
//!   computes *both* candidate weights speculatively during the search
//!   and merely muxes on the hit signal, saving its calculate-weight
//!   cycle — which is why Table II reports 36 cycles for LoLiPRoMi
//!   versus 37 for LiPRoMi/LoPRoMi.
//! * CaPRoMi's `ref`-side decision walk costs four cycles per counter
//!   entry (find linked history slot, Eq. 1 weight, Eq. 2 encoder,
//!   probabilistic decision).

use serde::{Deserialize, Serialize};

/// States of the Fig. 2 FSM (LiPRoMi / LoPRoMi / LoLiPRoMi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeVaryingState {
    /// Waiting for a command.
    Idle,
    /// Sequential history-table search.
    SearchInTable,
    /// Weight computation (Eq. 1 / Eq. 2).
    CalculateWeight,
    /// Probabilistic decision (LFSR compare).
    Decide,
    /// Trigger path: raise `IRQ_RH` and update the history table.
    ActivateNeighborAndUpdateTable,
    /// `ref` path: bump the refresh-interval register.
    UpdateRefreshInterval,
    /// `ref` path on a new window: clear the history table.
    ResetTable,
}

/// States of the Fig. 3 FSM (CaPRoMi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterAssistedState {
    /// Waiting for a command.
    Idle,
    /// Counter-table search / increment (two entries per cycle).
    SearchIncrease,
    /// Insert a new entry.
    Insert,
    /// Table full: probabilistic replacement.
    Replace,
    /// Link the entry to its history-table slot.
    Link,
    /// Entry bookkeeping after a hit.
    Update,
    /// `ref` path: per-entry weight computation.
    Weight,
    /// `ref` path: Eq. 2 priority encoder.
    LogWeight,
    /// `ref` path: find the linked history interval.
    FindLinked,
    /// `ref` path: probabilistic decision.
    Decision,
}

/// One step of a worst-case FSM walk: the state and the cycles spent in
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step<S> {
    /// The state visited.
    pub state: S,
    /// Cycles spent in the state.
    pub cycles: u32,
}

/// Worst-case walk of the Fig. 2 FSM for an `act` command.
///
/// `log_weight_cycle` is 1 for LiPRoMi/LoPRoMi (a dedicated
/// calculate-weight cycle) and 0 for LoLiPRoMi (speculative computation
/// during the search).
pub fn time_varying_act_walk(
    history_entries: u32,
    calc_cycles: u32,
) -> Vec<Step<TimeVaryingState>> {
    vec![
        Step {
            state: TimeVaryingState::SearchInTable,
            cycles: history_entries,
        },
        Step {
            state: TimeVaryingState::CalculateWeight,
            cycles: calc_cycles,
        },
        Step {
            state: TimeVaryingState::Decide,
            cycles: 2,
        },
        Step {
            state: TimeVaryingState::ActivateNeighborAndUpdateTable,
            cycles: 2,
        },
    ]
}

/// Worst-case walk of the Fig. 2 FSM for a `ref` command (new window:
/// update interval, detect wrap, reset table).
pub fn time_varying_ref_walk() -> Vec<Step<TimeVaryingState>> {
    vec![
        Step {
            state: TimeVaryingState::UpdateRefreshInterval,
            cycles: 1,
        },
        Step {
            state: TimeVaryingState::Idle,
            cycles: 1,
        }, // window compare
        Step {
            state: TimeVaryingState::ResetTable,
            cycles: 1,
        },
    ]
}

/// Worst-case walk of the Fig. 3 FSM for an `act` command: search misses,
/// the table is full, the probabilistic replacement runs, and the entry
/// is linked against the history table.
pub fn counter_assisted_act_walk(counter_entries: u32) -> Vec<Step<CounterAssistedState>> {
    vec![
        Step {
            state: CounterAssistedState::SearchIncrease,
            cycles: counter_entries.div_ceil(2),
        },
        Step {
            state: CounterAssistedState::Insert,
            cycles: 4,
        },
        Step {
            state: CounterAssistedState::Replace,
            cycles: 6,
        },
        Step {
            state: CounterAssistedState::Link,
            cycles: 4,
        },
        Step {
            state: CounterAssistedState::Update,
            cycles: 4,
        },
    ]
}

/// Worst-case walk of the Fig. 3 FSM for a `ref` command: the decision
/// loop visits every counter entry (four cycles each), bracketed by one
/// setup and one teardown cycle.
pub fn counter_assisted_ref_walk(counter_entries: u32) -> Vec<Step<CounterAssistedState>> {
    let mut steps = vec![Step {
        state: CounterAssistedState::Idle,
        cycles: 1,
    }];
    steps.push(Step {
        state: CounterAssistedState::FindLinked,
        cycles: counter_entries,
    });
    steps.push(Step {
        state: CounterAssistedState::Weight,
        cycles: counter_entries,
    });
    steps.push(Step {
        state: CounterAssistedState::LogWeight,
        cycles: counter_entries,
    });
    steps.push(Step {
        state: CounterAssistedState::Decision,
        cycles: counter_entries,
    });
    steps.push(Step {
        state: CounterAssistedState::Idle,
        cycles: 1,
    });
    steps
}

/// Sums the cycles of a walk.
pub fn walk_cycles<S>(walk: &[Step<S>]) -> u32 {
    walk.iter().map(|s| s.cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn li_lo_act_walk_is_37_cycles() {
        assert_eq!(walk_cycles(&time_varying_act_walk(32, 1)), 37);
    }

    #[test]
    fn loli_act_walk_is_36_cycles() {
        assert_eq!(walk_cycles(&time_varying_act_walk(32, 0)), 36);
    }

    #[test]
    fn time_varying_ref_walk_is_3_cycles() {
        assert_eq!(walk_cycles(&time_varying_ref_walk()), 3);
    }

    #[test]
    fn capromi_act_walk_is_50_cycles() {
        assert_eq!(walk_cycles(&counter_assisted_act_walk(64)), 50);
    }

    #[test]
    fn capromi_ref_walk_is_258_cycles() {
        assert_eq!(walk_cycles(&counter_assisted_ref_walk(64)), 258);
    }

    #[test]
    fn walks_scale_with_table_sizes() {
        assert_eq!(walk_cycles(&time_varying_act_walk(64, 1)), 69);
        assert_eq!(walk_cycles(&counter_assisted_act_walk(128)), 82);
        assert_eq!(walk_cycles(&counter_assisted_ref_walk(16)), 66);
    }

    #[test]
    fn act_walk_visits_expected_states() {
        let walk = time_varying_act_walk(32, 1);
        assert_eq!(walk[0].state, TimeVaryingState::SearchInTable);
        assert_eq!(
            walk.last().unwrap().state,
            TimeVaryingState::ActivateNeighborAndUpdateTable
        );
    }
}
