//! Set-associative cache hierarchy — the filter between CPU accesses
//! and DRAM activations.
//!
//! Table I simulates 4 cores with 64 KB L1 and 256 KB L2 caches; the
//! attacker defeats them with cache flushing (`CLFLUSH`), which is what
//! makes row hammering possible from software.  This module provides
//! LRU set-associative caches and a two-level hierarchy so the
//! access-level workload model in [`crate::cpu`] produces its DRAM
//! activation stream the same way the paper's gem5 setup did: only
//! cache *misses* (and flushed lines) reach the memory controller.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Table I's L1: 64 KB, 64 B lines, 8-way.
    pub fn paper_l1() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Table I's L2: 256 KB, 64 B lines, 8-way.
    pub fn paper_l2() -> Self {
        CacheConfig {
            capacity_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.capacity_bytes / self.line_bytes / self.ways
    }
}

/// An LRU set-associative cache over line addresses.
///
/// ```
/// use mem_trace::cache::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::paper_l1());
/// assert!(!cache.access(0x100)); // cold miss
/// assert!(cache.access(0x100)); // hit
/// cache.flush(0x100);           // CLFLUSH
/// assert!(!cache.access(0x100)); // miss again
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set tag stacks, most recently used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero ways or a
    /// capacity that is not a multiple of `line_bytes × ways`).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0 && config.line_bytes > 0, "degenerate cache");
        assert!(config.sets() > 0, "cache smaller than one set");
        Cache {
            sets: vec![Vec::with_capacity(config.ways as usize); config.sets() as usize],
            config,
            hits: 0,
            misses: 0,
        }
    }

    // Reduced modulo the set count, which itself came from a usize.
    #[allow(clippy::cast_possible_truncation)]
    fn set_index(&self, line: u64) -> usize {
        (line % u64::from(self.config.sets())) as usize
    }

    /// Accesses `line`; returns `true` on a hit.  Misses insert the line
    /// (LRU eviction).
    pub fn access(&mut self, line: u64) -> bool {
        let set = self.set_index(line);
        let stack = &mut self.sets[set];
        if let Some(pos) = stack.iter().position(|&t| t == line) {
            stack.remove(pos);
            stack.insert(0, line);
            self.hits += 1;
            true
        } else {
            stack.insert(0, line);
            stack.truncate(self.config.ways as usize);
            self.misses += 1;
            false
        }
    }

    /// Probes without updating recency or statistics.
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Removes `line` (the attacker's `CLFLUSH`).
    pub fn flush(&mut self, line: u64) {
        let set = self.set_index(line);
        self.sets[set].retain(|&t| t != line);
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

/// A two-level inclusive hierarchy (per core, as in Table I).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
}

impl CacheHierarchy {
    /// Table I's per-core hierarchy.
    pub fn paper() -> Self {
        CacheHierarchy {
            l1: Cache::new(CacheConfig::paper_l1()),
            l2: Cache::new(CacheConfig::paper_l2()),
        }
    }

    /// Accesses a line; returns `true` if the access missed *both*
    /// levels and therefore reaches DRAM.
    pub fn access_misses_to_dram(&mut self, line: u64) -> bool {
        if self.l1.access(line) {
            return false;
        }
        if self.l2.access(line) {
            return false; // L2 hit fills L1 (already inserted above)
        }
        true
    }

    /// Flushes a line from both levels (`CLFLUSH` semantics).
    pub fn flush(&mut self, line: u64) {
        self.l1.flush(line);
        self.l2.flush(line);
    }

    /// The L1 level.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 level.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1().sets(), 128);
        assert_eq!(CacheConfig::paper_l2().sets(), 512);
    }

    #[test]
    fn lru_evicts_oldest() {
        let config = CacheConfig {
            capacity_bytes: 2 * 64,
            line_bytes: 64,
            ways: 2,
        };
        let mut c = Cache::new(config); // 1 set, 2 ways
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn hit_rate_tracks_reuse() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        for _ in 0..10 {
            c.access(42);
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 9);
        assert!((c.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn flush_forces_next_access_to_miss() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        c.access(7);
        c.flush(7);
        assert!(!c.contains(7));
        assert!(!c.access(7));
    }

    #[test]
    fn hierarchy_filters_two_levels() {
        let mut h = CacheHierarchy::paper();
        assert!(h.access_misses_to_dram(100)); // cold
        assert!(!h.access_misses_to_dram(100)); // L1 hit
                                                // Evict from tiny L1 by conflict, keep in L2: lines mapping to
                                                // the same L1 set are 128 apart.
        for k in 1..=8 {
            h.access_misses_to_dram(100 + k * 128);
        }
        assert!(!h.l1().contains(100));
        // L2 still has it: no DRAM access.
        assert!(!h.access_misses_to_dram(100));
    }

    #[test]
    fn hierarchy_flush_reaches_both_levels() {
        let mut h = CacheHierarchy::paper();
        h.access_misses_to_dram(5);
        h.flush(5);
        assert!(h.access_misses_to_dram(5));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let config = CacheConfig {
            capacity_bytes: 4 * 64,
            line_bytes: 64,
            ways: 1,
        };
        let mut c = Cache::new(config); // 4 sets, direct mapped
        c.access(0);
        c.access(1);
        c.access(2);
        c.access(3);
        for line in 0..4 {
            assert!(c.contains(line));
        }
        c.access(4); // conflicts with 0 only
        assert!(!c.contains(0));
        assert!(c.contains(1));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_ways_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 64,
            line_bytes: 64,
            ways: 0,
        });
    }
}
