//! # mem-trace — synthetic DRAM activation traces
//!
//! The paper drives its evaluation with gem5 memory traces of a mixed
//! SPEC CPU2006 workload plus attacker code (Table I: 175 M activations
//! over 1.56 M refresh intervals, ~40 activations per bank-interval
//! including aggressor bursts, 1→20 aggressors per targeted bank).  gem5
//! and SPEC are not redistributable here, so this crate generates
//! *synthetic traces calibrated to the same statistics* — the only thing
//! a memory-controller-level mitigation can observe is the
//! `(bank, row, time)` activation stream, so matching its first-order
//! statistics exercises the identical decision paths.
//!
//! * [`SpecLikeWorkload`] — phased, Zipf-skewed benign traffic.
//! * [`attack`] — single-sided, double-sided, multi-aggressor-ramp and
//!   flooding attacker generators, each labelling its events as
//!   aggressor accesses (ground truth for false-positive accounting).
//! * [`MixedTrace`] — merges benign and attacker streams under the
//!   per-interval activation budget of the DDR4 timing.
//! * [`TraceStats`] — calibration statistics (mean/max per interval,
//!   aggressor share, top-k row coverage).
//!
//! ## Example
//!
//! ```
//! use mem_trace::{SpecLikeWorkload, TraceSource, WorkloadConfig};
//! use dram_sim::Geometry;
//!
//! let geometry = Geometry::scaled_down(64); // small, for the doctest
//! let mut workload = SpecLikeWorkload::new(WorkloadConfig::paper(&geometry), 42);
//! let mut events = Vec::new();
//! workload.next_interval(&mut events);
//! // Benign traffic only: nothing is labelled as an aggressor access.
//! assert!(events.iter().all(|e| !e.aggressor));
//! ```

pub mod attack;
pub mod batch;
pub mod cache;
pub mod cpu;
pub mod event;
pub mod mix;
pub mod serial;
pub mod stats;
pub mod workload;
pub mod zipf;

pub use attack::{AttackConfig, AttackKind, Attacker, PHASE_SHIFT_SLOTS};
pub use batch::{EventBatch, DEFAULT_BATCH_EVENTS};
pub use cache::{Cache, CacheConfig, CacheHierarchy};
pub use cpu::{CoreBehavior, CpuWorkload, CpuWorkloadConfig};
pub use event::{IdleTrace, ReplayTrace, ShardError, TraceEvent, TraceSource, TraceSplit};
pub use mix::MixedTrace;
pub use serial::{read_jsonl, write_jsonl};
pub use stats::TraceStats;
pub use workload::{SpecLikeWorkload, WorkloadConfig};
pub use zipf::Zipf;
