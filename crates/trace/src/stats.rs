//! Trace statistics — used to validate the synthetic generators against
//! the paper's reported trace characteristics (Table I and the CaPRoMi
//! sizing argument: average ≈ 40 activations per bank-interval including
//! aggressors, maximum ≤ 165).

use crate::event::{TraceEvent, TraceSource};
use dram_sim::{BankId, RowAddr};
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total activations.
    pub total_activations: u64,
    /// Activations labelled as attacker accesses.
    pub aggressor_activations: u64,
    /// Number of refresh intervals covered.
    pub intervals: u64,
    /// Number of banks that saw traffic.
    pub banks: u32,
    /// Maximum activations observed in any single bank-interval.
    pub max_per_bank_interval: u32,
    /// Per-(bank,row) activation counts.  Ordered so that every
    /// traversal (and anything serialized from it) has structural,
    /// not hash-seeded, order.
    pub row_counts: BTreeMap<(BankId, RowAddr), u64>,
}

impl TraceStats {
    /// Consumes a trace source and accumulates its statistics.
    ///
    /// ```
    /// use mem_trace::{ReplayTrace, TraceEvent, TraceStats};
    /// use dram_sim::{BankId, RowAddr};
    ///
    /// let trace = ReplayTrace::new(vec![vec![
    ///     TraceEvent::benign(BankId(0), RowAddr(1)),
    ///     TraceEvent::attack(BankId(0), RowAddr(2)),
    /// ]]);
    /// let stats = TraceStats::collect(trace);
    /// assert_eq!(stats.total_activations, 2);
    /// assert!((stats.aggressor_share() - 0.5).abs() < 1e-12);
    /// ```
    pub fn collect<S: TraceSource>(mut source: S) -> Self {
        let mut stats = TraceStats::default();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut per_bank: BTreeMap<BankId, u32> = BTreeMap::new();
        let mut seen_banks: BTreeSet<BankId> = BTreeSet::new();
        loop {
            events.clear();
            if !source.next_interval(&mut events) {
                break;
            }
            stats.intervals += 1;
            per_bank.clear();
            for e in &events {
                stats.total_activations += 1;
                if e.aggressor {
                    stats.aggressor_activations += 1;
                }
                *per_bank.entry(e.bank).or_insert(0) += 1;
                *stats.row_counts.entry((e.bank, e.row)).or_insert(0) += 1;
                seen_banks.insert(e.bank);
            }
            for &count in per_bank.values() {
                stats.max_per_bank_interval = stats.max_per_bank_interval.max(count);
            }
        }
        stats.banks = u32::try_from(seen_banks.len()).expect("bank count fits u32");
        stats
    }

    /// Mean activations per bank per interval.
    pub fn mean_per_bank_interval(&self) -> f64 {
        if self.intervals == 0 || self.banks == 0 {
            0.0
        } else {
            self.total_activations as f64 / (self.intervals as f64 * f64::from(self.banks))
        }
    }

    /// Fraction of activations issued by the attacker.
    pub fn aggressor_share(&self) -> f64 {
        if self.total_activations == 0 {
            0.0
        } else {
            self.aggressor_activations as f64 / self.total_activations as f64
        }
    }

    /// Fraction of all activations landing on the `k` most-activated
    /// rows of each bank (averaged over banks, weighted by traffic) —
    /// the locality figure the history-table sizing exploits.
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        if self.total_activations == 0 {
            return 0.0;
        }
        let mut per_bank: BTreeMap<BankId, Vec<u64>> = BTreeMap::new();
        for (&(bank, _), &count) in &self.row_counts {
            per_bank.entry(bank).or_default().push(count);
        }
        let mut covered = 0u64;
        for counts in per_bank.values_mut() {
            counts.sort_unstable_by(|a, b| b.cmp(a));
            covered += counts.iter().take(k).sum::<u64>();
        }
        covered as f64 / self.total_activations as f64
    }

    /// Number of distinct rows touched across all banks.
    pub fn distinct_rows(&self) -> usize {
        self.row_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplayTrace;

    fn event(bank: u32, row: u32, aggressor: bool) -> TraceEvent {
        TraceEvent {
            bank: BankId(bank),
            row: RowAddr(row),
            aggressor,
        }
    }

    #[test]
    fn counts_and_means() {
        let trace = ReplayTrace::new(vec![
            vec![event(0, 1, false), event(0, 1, false), event(1, 2, true)],
            vec![event(0, 3, false)],
        ]);
        let s = TraceStats::collect(trace);
        assert_eq!(s.total_activations, 4);
        assert_eq!(s.aggressor_activations, 1);
        assert_eq!(s.intervals, 2);
        assert_eq!(s.banks, 2);
        assert_eq!(s.max_per_bank_interval, 2);
        assert_eq!(s.distinct_rows(), 3);
        assert!((s.mean_per_bank_interval() - 1.0).abs() < 1e-12);
        assert!((s.aggressor_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn top_k_coverage_orders_rows() {
        let trace = ReplayTrace::new(vec![vec![
            event(0, 1, false),
            event(0, 1, false),
            event(0, 1, false),
            event(0, 2, false),
        ]]);
        let s = TraceStats::collect(trace);
        assert!((s.top_k_coverage(1) - 0.75).abs() < 1e-12);
        assert!((s.top_k_coverage(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_zeros() {
        let s = TraceStats::collect(ReplayTrace::new(Vec::<Vec<TraceEvent>>::new()));
        assert_eq!(s.total_activations, 0);
        assert_eq!(s.mean_per_bank_interval(), 0.0);
        assert_eq!(s.aggressor_share(), 0.0);
        assert_eq!(s.top_k_coverage(5), 0.0);
    }
}
