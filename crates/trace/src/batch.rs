//! Fixed-size event batches: the chunked delivery format of the hot
//! path.
//!
//! [`EventBatch`] is a structure-of-arrays buffer of `(bank, row,
//! aggressor, tick)` activations covering one or more *whole* refresh
//! intervals.  Interval boundaries are marked in-band as a cumulative
//! offset list, so the consumer can walk `segment(i)` ranges and issue
//! the device refresh between them exactly as the one-interval-at-a-time
//! API did.  Batches are filled by [`crate::TraceSource::next_batch`]
//! and target `target_events` activations (default
//! [`DEFAULT_BATCH_EVENTS`]); the target is soft — intervals are never
//! split across batches, so a single heavy interval may overshoot it.

use crate::event::TraceEvent;
use dram_sim::{BankId, RowAddr};
use std::ops::Range;

/// Default soft capacity of a batch, in events.
///
/// Large enough to amortise per-batch dispatch over thousands of
/// activations, small enough that a batch of four `Vec`s stays within
/// L2-cache reach (~2 K events ≈ 26 KiB of SoA payload).
pub const DEFAULT_BATCH_EVENTS: usize = 2048;

/// A structure-of-arrays buffer of activations spanning whole refresh
/// intervals, with the interval boundaries marked in-band.
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    banks: Vec<BankId>,
    rows: Vec<RowAddr>,
    aggressors: Vec<bool>,
    /// Per-event interval ordinal *within this batch* (the index of the
    /// boundary the event precedes).
    ticks: Vec<u32>,
    /// Cumulative event count at the end of each interval.  Two equal
    /// consecutive entries encode an empty interval — the refresh still
    /// ticks, no activations arrive.
    boundaries: Vec<usize>,
    /// Staging area reused by the default one-interval-at-a-time shim,
    /// kept here so repeated `next_batch` calls allocate nothing.
    scratch: Vec<TraceEvent>,
    target_events: usize,
}

impl EventBatch {
    /// An empty batch with the default soft capacity.
    pub fn new() -> Self {
        Self::with_target_events(DEFAULT_BATCH_EVENTS)
    }

    /// An empty batch targeting `target_events` activations per fill
    /// (clamped to at least 1).
    pub fn with_target_events(target_events: usize) -> Self {
        EventBatch {
            banks: Vec::new(),
            rows: Vec::new(),
            aggressors: Vec::new(),
            ticks: Vec::new(),
            boundaries: Vec::new(),
            scratch: Vec::new(),
            target_events: target_events.max(1),
        }
    }

    /// The soft per-fill capacity, in events.
    pub fn target_events(&self) -> usize {
        self.target_events.max(1)
    }

    /// Whether the batch has reached its soft capacity.
    pub fn is_full(&self) -> bool {
        self.banks.len() >= self.target_events()
    }

    /// Drops all events and boundaries (capacity is kept).
    pub fn clear(&mut self) {
        self.banks.clear();
        self.rows.clear();
        self.aggressors.clear();
        self.ticks.clear();
        self.boundaries.clear();
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether the batch holds no events (it may still hold empty
    /// intervals — check [`EventBatch::intervals`]).
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// Number of whole refresh intervals the batch covers.
    pub fn intervals(&self) -> usize {
        self.boundaries.len()
    }

    /// The event-index range of interval `interval` (within the batch).
    pub fn segment(&self, interval: usize) -> Range<usize> {
        let end = self.boundaries[interval];
        let start = if interval == 0 {
            0
        } else {
            self.boundaries[interval - 1]
        };
        start..end
    }

    /// Bank of event `i`.
    #[inline]
    pub fn bank(&self, i: usize) -> BankId {
        self.banks[i]
    }

    /// Row of event `i`.
    #[inline]
    pub fn row(&self, i: usize) -> RowAddr {
        self.rows[i]
    }

    /// Ground-truth aggressor label of event `i`.
    #[inline]
    pub fn aggressor(&self, i: usize) -> bool {
        self.aggressors[i]
    }

    /// Interval ordinal (within the batch) of event `i`.
    #[inline]
    pub fn tick(&self, i: usize) -> u32 {
        self.ticks[i]
    }

    /// Event `i` reassembled into the array-of-structs form.
    pub fn event(&self, i: usize) -> TraceEvent {
        TraceEvent {
            bank: self.banks[i],
            row: self.rows[i],
            aggressor: self.aggressors[i],
        }
    }

    /// The three event columns as parallel slices `(banks, rows,
    /// aggressors)` — the consumer's zero-bounds-check walk.
    pub fn columns(&self) -> (&[BankId], &[RowAddr], &[bool]) {
        (&self.banks, &self.rows, &self.aggressors)
    }

    /// Run-length-grouped per-bank view of the events at `range`: yields
    /// `(bank, subrange)` pairs where every event in `subrange` hits
    /// `bank`, and the subranges partition `range` in order.
    ///
    /// This is the lane layout the batched decision kernels walk: a
    /// bank-sharded (or single-bank) column is one run, so per-bank
    /// state — the bank's RNG stream, history table, counter lane — is
    /// hoisted once per run instead of being re-resolved per event.
    /// Because runs preserve event order within each bank, any per-bank
    /// stream consumed run-by-run sees exactly the sequence the scalar
    /// one-event-at-a-time walk would produce.
    pub fn bank_runs(&self, range: Range<usize>) -> BankRuns<'_> {
        BankRuns {
            banks: &self.banks,
            cursor: range.start,
            end: range.end,
        }
    }
}

/// Iterator over `(bank, event-index range)` runs of consecutive
/// same-bank events; see [`EventBatch::bank_runs`].
#[derive(Debug)]
pub struct BankRuns<'a> {
    banks: &'a [BankId],
    cursor: usize,
    end: usize,
}

impl Iterator for BankRuns<'_> {
    type Item = (BankId, Range<usize>);

    #[inline]
    fn next(&mut self) -> Option<(BankId, Range<usize>)> {
        if self.cursor >= self.end {
            return None;
        }
        let start = self.cursor;
        let bank = self.banks[start];
        let mut j = start + 1;
        while j < self.end && self.banks[j] == bank {
            j += 1;
        }
        self.cursor = j;
        Some((bank, start..j))
    }
}

impl EventBatch {
    /// Appends one event to the interval currently being filled.
    ///
    /// The native fast path for sources that merge directly into the
    /// batch: push events, then close the interval with
    /// [`EventBatch::end_interval`] (every pushed event must be closed
    /// by a boundary before the batch is consumed).
    #[inline]
    // Hot path: the tick is the interval ordinal, bounded by the run's
    // interval count, far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    pub fn push_event(&mut self, bank: BankId, row: RowAddr, aggressor: bool) {
        self.banks.push(bank);
        self.rows.push(row);
        self.aggressors.push(aggressor);
        self.ticks.push(self.boundaries.len() as u32);
    }

    /// Closes the interval currently being filled (possibly empty).
    #[inline]
    pub fn end_interval(&mut self) {
        self.boundaries.push(self.banks.len());
    }

    /// Appends one whole interval's events and closes its boundary.
    pub fn push_interval(&mut self, events: &[TraceEvent]) {
        let tick = u32::try_from(self.boundaries.len()).expect("interval ordinal fits u32");
        self.banks.reserve(events.len());
        for e in events {
            self.banks.push(e.bank);
            self.rows.push(e.row);
            self.aggressors.push(e.aggressor);
            self.ticks.push(tick);
        }
        self.boundaries.push(self.banks.len());
    }

    /// Appends one whole interval from recorded SoA columns and closes
    /// its boundary — the memcpy path for replaying captured column
    /// data without reassembling per-event structs.
    ///
    /// # Panics
    ///
    /// Panics if the column lengths disagree.
    pub fn push_interval_columns(
        &mut self,
        banks: &[BankId],
        rows: &[RowAddr],
        aggressors: &[bool],
    ) {
        assert_eq!(banks.len(), rows.len(), "column lengths must agree");
        assert_eq!(banks.len(), aggressors.len(), "column lengths must agree");
        let tick = u32::try_from(self.boundaries.len()).expect("interval ordinal fits u32");
        self.banks.extend_from_slice(banks);
        self.rows.extend_from_slice(rows);
        self.aggressors.extend_from_slice(aggressors);
        self.ticks.resize(self.banks.len(), tick);
        self.boundaries.push(self.banks.len());
    }

    /// Appends `n` event-free intervals (refresh ticks with no
    /// activations) — the fast path for idle bank shards.
    pub fn push_empty_intervals(&mut self, n: u64) {
        let len = self.banks.len();
        for _ in 0..n {
            self.boundaries.push(len);
        }
    }

    /// Takes the internal staging buffer (cleared) for a
    /// one-interval-at-a-time fill; pair with
    /// [`EventBatch::restore_scratch`].
    pub fn take_scratch(&mut self) -> Vec<TraceEvent> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch
    }

    /// Returns a staging buffer taken with [`EventBatch::take_scratch`]
    /// so its allocation is reused by the next fill.
    pub fn restore_scratch(&mut self, scratch: Vec<TraceEvent>) {
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(bank: u32, row: u32) -> TraceEvent {
        TraceEvent::benign(BankId(bank), RowAddr(row))
    }

    #[test]
    fn boundaries_partition_events_into_segments() {
        let mut batch = EventBatch::new();
        batch.push_interval(&[ev(0, 1), ev(1, 2)]);
        batch.push_interval(&[]);
        batch.push_interval(&[ev(0, 3)]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.intervals(), 3);
        assert_eq!(batch.segment(0), 0..2);
        assert_eq!(batch.segment(1), 2..2);
        assert_eq!(batch.segment(2), 2..3);
        assert_eq!(batch.event(2), ev(0, 3));
        assert_eq!(batch.tick(0), 0);
        assert_eq!(batch.tick(2), 2);
    }

    #[test]
    fn empty_intervals_tick_without_events() {
        let mut batch = EventBatch::new();
        batch.push_empty_intervals(4);
        assert!(batch.is_empty());
        assert_eq!(batch.intervals(), 4);
        assert_eq!(batch.segment(3), 0..0);
    }

    #[test]
    fn capacity_is_soft_and_clamped() {
        let mut batch = EventBatch::with_target_events(0);
        assert_eq!(batch.target_events(), 1);
        batch.push_interval(&[ev(0, 1), ev(0, 2), ev(0, 3)]);
        // A single interval may overshoot the soft target; it is never
        // split.
        assert_eq!(batch.len(), 3);
        assert!(batch.is_full());
        batch.clear();
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.intervals(), 0);
    }

    #[test]
    fn bank_runs_partition_a_segment_in_order() {
        let mut batch = EventBatch::new();
        batch.push_interval(&[ev(0, 1), ev(0, 2), ev(1, 3), ev(0, 4), ev(2, 5), ev(2, 6)]);
        let runs: Vec<(BankId, Range<usize>)> = batch.bank_runs(batch.segment(0)).collect();
        assert_eq!(
            runs,
            vec![
                (BankId(0), 0..2),
                (BankId(1), 2..3),
                (BankId(0), 3..4),
                (BankId(2), 4..6),
            ]
        );
        // The runs partition the range: contiguous, in order, no gaps.
        let mut cursor = 0;
        for (_, run) in &runs {
            assert_eq!(run.start, cursor);
            cursor = run.end;
        }
        assert_eq!(cursor, batch.len());
        // A sub-range (the engine's chunked replay) yields runs clipped
        // to it, and an empty range yields nothing.
        let runs: Vec<(BankId, Range<usize>)> = batch.bank_runs(1..4).collect();
        assert_eq!(runs, vec![(BankId(0), 1..2), (BankId(1), 2..3), (BankId(0), 3..4)]);
        assert_eq!(batch.bank_runs(2..2).count(), 0);
    }

    #[test]
    fn scratch_round_trips_without_leaking_events() {
        let mut batch = EventBatch::new();
        let mut scratch = batch.take_scratch();
        scratch.push(ev(0, 9));
        batch.push_interval(&scratch);
        batch.restore_scratch(scratch);
        // The staged events live in the batch, and the returned scratch
        // comes back cleared on the next take.
        assert_eq!(batch.take_scratch().len(), 0);
        assert_eq!(batch.len(), 1);
    }
}
