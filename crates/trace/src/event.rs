//! Trace events and the interval-batched trace source abstraction.

use dram_sim::{BankId, RowAddr};
use serde::{Deserialize, Serialize};

/// One row activation in the trace.
///
/// `aggressor` is ground-truth labelling from the generator: the access
/// belongs to attacker code.  Mitigations never see this flag — it is
/// used only by the metrics layer to separate true from false positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Bank being activated.
    pub bank: BankId,
    /// Row being activated.
    pub row: RowAddr,
    /// Whether this access was issued by attacker code.
    pub aggressor: bool,
}

impl TraceEvent {
    /// A benign workload access.
    pub fn benign(bank: BankId, row: RowAddr) -> Self {
        TraceEvent {
            bank,
            row,
            aggressor: false,
        }
    }

    /// An attacker access.
    pub fn attack(bank: BankId, row: RowAddr) -> Self {
        TraceEvent {
            bank,
            row,
            aggressor: true,
        }
    }
}

/// A source of activations, delivered one refresh interval at a time.
///
/// The driving harness alternates `next_interval` (activations) with the
/// device's refresh command, mirroring how the memory controller
/// interleaves traffic with auto-refresh.
pub trait TraceSource {
    /// Appends this interval's activations to `out`, in issue order.
    ///
    /// Returns `false` when the trace is exhausted (nothing appended).
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool;

    /// A hint of the number of intervals this source will produce, if
    /// bounded.
    fn intervals_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        (**self).next_interval(out)
    }

    fn intervals_hint(&self) -> Option<u64> {
        (**self).intervals_hint()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        (**self).next_interval(out)
    }

    fn intervals_hint(&self) -> Option<u64> {
        (**self).intervals_hint()
    }
}

/// A trace source that can be split into deterministic per-bank
/// sub-streams.
///
/// DRAM banks are independent: no disturbance couples them, and every
/// mitigation keeps per-bank state, so a run can be *sharded by bank* —
/// each bank's sub-stream driven through its own mitigation instance and
/// device view — and merged afterwards with bit-identical results.  The
/// contract that makes this sound:
///
/// * `bank_shard(b)` must be called on a **fresh** (not yet consumed)
///   source, and returns a fresh source producing exactly the events the
///   parent would emit for bank `b`, in the parent's per-bank order;
/// * the shard ticks the **same number of intervals** as the parent
///   (banks with no traffic still tick — see [`IdleTrace`]);
/// * the shard is a pure function of the parent's configuration and
///   `b` — independent of worker count or scheduling.  Generators with
///   randomness derive per-bank sub-streams via
///   [`dram_sim::bank_seed`].
///
/// Shards implement `TraceSplit` themselves so composite sources (for
/// example [`crate::MixedTrace`]) can shard their parts recursively.
pub trait TraceSplit: TraceSource + Send {
    /// This source's bank-`bank` sub-stream, from the beginning.
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit>;
}

impl<S: TraceSplit + ?Sized> TraceSplit for Box<S> {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        (**self).bank_shard(bank)
    }
}

/// A source that produces no events but ticks a fixed number of
/// intervals — the bank shard of a source that never touches that bank.
/// Keeping idle banks ticking preserves interval alignment, so every
/// shard of a run simulates the same number of refresh intervals.
#[derive(Debug, Clone)]
pub struct IdleTrace {
    remaining: u64,
    total: u64,
}

impl IdleTrace {
    /// An idle source ticking `intervals` times.
    pub fn new(intervals: u64) -> Self {
        IdleTrace {
            remaining: intervals,
            total: intervals,
        }
    }
}

impl TraceSource for IdleTrace {
    fn next_interval(&mut self, _out: &mut Vec<TraceEvent>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

impl TraceSplit for IdleTrace {
    fn bank_shard(&self, _bank: BankId) -> Box<dyn TraceSplit> {
        Box::new(IdleTrace::new(self.total))
    }
}

/// A pre-recorded trace replayed interval by interval.
///
/// ```
/// use mem_trace::{ReplayTrace, TraceEvent, TraceSource};
/// use dram_sim::{BankId, RowAddr};
///
/// let intervals = vec![
///     vec![TraceEvent::benign(BankId(0), RowAddr(1))],
///     vec![],
/// ];
/// let mut replay = ReplayTrace::new(intervals);
/// let mut out = Vec::new();
/// assert!(replay.next_interval(&mut out));
/// assert_eq!(out.len(), 1);
/// out.clear();
/// assert!(replay.next_interval(&mut out)); // empty interval still ticks
/// assert!(!replay.next_interval(&mut out)); // exhausted
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayTrace {
    intervals: std::collections::VecDeque<Vec<TraceEvent>>,
    total: u64,
}

impl ReplayTrace {
    /// Wraps a list of per-interval event batches.
    pub fn new<I>(intervals: I) -> Self
    where
        I: IntoIterator<Item = Vec<TraceEvent>>,
    {
        let intervals: std::collections::VecDeque<_> = intervals.into_iter().collect();
        let total = intervals.len() as u64;
        ReplayTrace { intervals, total }
    }
}

impl TraceSource for ReplayTrace {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        match self.intervals.pop_front() {
            Some(batch) => {
                out.extend(batch);
                true
            }
            None => false,
        }
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

impl TraceSplit for ReplayTrace {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        Box::new(ReplayTrace::new(self.intervals.iter().map(|batch| {
            batch
                .iter()
                .filter(|e| e.bank == bank)
                .copied()
                .collect::<Vec<_>>()
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_label() {
        assert!(!TraceEvent::benign(BankId(0), RowAddr(1)).aggressor);
        assert!(TraceEvent::attack(BankId(0), RowAddr(1)).aggressor);
    }

    #[test]
    fn idle_trace_ticks_without_events() {
        let mut idle = IdleTrace::new(3);
        assert_eq!(idle.intervals_hint(), Some(3));
        let mut out = Vec::new();
        let mut n = 0;
        while idle.next_interval(&mut out) {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(out.is_empty());
    }

    #[test]
    fn replay_shard_filters_by_bank_and_keeps_interval_count() {
        let trace = ReplayTrace::new(vec![
            vec![
                TraceEvent::benign(BankId(0), RowAddr(1)),
                TraceEvent::attack(BankId(1), RowAddr(2)),
            ],
            vec![TraceEvent::benign(BankId(1), RowAddr(3))],
        ]);
        let mut shard = trace.bank_shard(BankId(1));
        assert_eq!(shard.intervals_hint(), Some(2));
        let mut out = Vec::new();
        assert!(shard.next_interval(&mut out));
        assert_eq!(out, vec![TraceEvent::attack(BankId(1), RowAddr(2))]);
        out.clear();
        assert!(shard.next_interval(&mut out));
        assert_eq!(out, vec![TraceEvent::benign(BankId(1), RowAddr(3))]);
        assert!(!shard.next_interval(&mut out));
    }

    #[test]
    fn replay_reports_hint_and_exhausts() {
        let mut t = ReplayTrace::new(vec![vec![], vec![]]);
        assert_eq!(t.intervals_hint(), Some(2));
        let mut out = Vec::new();
        assert!(t.next_interval(&mut out));
        assert!(t.next_interval(&mut out));
        assert!(!t.next_interval(&mut out));
        assert!(out.is_empty());
    }
}
