//! Trace events and the interval-batched trace source abstraction.

use crate::batch::EventBatch;
use dram_sim::{BankId, RowAddr};
use serde::{Deserialize, Serialize};

/// One row activation in the trace.
///
/// `aggressor` is ground-truth labelling from the generator: the access
/// belongs to attacker code.  Mitigations never see this flag — it is
/// used only by the metrics layer to separate true from false positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Bank being activated.
    pub bank: BankId,
    /// Row being activated.
    pub row: RowAddr,
    /// Whether this access was issued by attacker code.
    pub aggressor: bool,
}

impl TraceEvent {
    /// A benign workload access.
    pub fn benign(bank: BankId, row: RowAddr) -> Self {
        TraceEvent {
            bank,
            row,
            aggressor: false,
        }
    }

    /// An attacker access.
    pub fn attack(bank: BankId, row: RowAddr) -> Self {
        TraceEvent {
            bank,
            row,
            aggressor: true,
        }
    }
}

/// Why a trace source cannot be split into per-bank sub-streams.
///
/// Sharding by bank is only sound when banks are *independent* in the
/// generator: each bank's sub-stream must be a pure function of the
/// configuration and the bank id.  Sources whose banks share mutable
/// state (one RNG, one cache hierarchy, a feedback loop) cannot honour
/// that contract, and must say so through this typed error instead of a
/// doc-only caveat, so the harness and the fleet layer can refuse a
/// sharded run loudly rather than produce schedule-dependent results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// The source type that refused to shard, e.g. `"CpuWorkload"`.
    pub source: String,
    /// Why per-bank sub-streams would be unsound for this source.
    pub reason: String,
}

impl ShardError {
    /// A new error naming the refusing source and the coupling that
    /// makes per-bank sharding unsound for it.
    pub fn new(source: impl Into<String>, reason: impl Into<String>) -> Self {
        ShardError {
            source: source.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cannot be sharded by bank: {}",
            self.source, self.reason
        )
    }
}

impl std::error::Error for ShardError {}

/// A source of activations, delivered one refresh interval at a time.
///
/// The driving harness alternates `next_interval` (activations) with the
/// device's refresh command, mirroring how the memory controller
/// interleaves traffic with auto-refresh.
pub trait TraceSource {
    /// Appends this interval's activations to `out`, in issue order.
    ///
    /// Returns `false` when the trace is exhausted (nothing appended).
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool;

    /// A hint of the number of intervals this source will produce, if
    /// bounded.
    fn intervals_hint(&self) -> Option<u64> {
        None
    }

    /// Whether this source may be split into per-bank sub-streams.
    ///
    /// Returns `Ok(())` for sources whose banks are independent (the
    /// default — it covers every [`TraceSplit`] implementor and every
    /// single-bank source, where the question never arises).  Sources
    /// whose banks share mutable state override this to return a
    /// [`ShardError`] naming the coupling, so callers that want to
    /// shard — [`crate::TraceSplit`] users, the harness engine, the
    /// fleet layer — can fail with a typed error *before* running
    /// instead of silently producing schedule-dependent results.
    fn shard_support(&self) -> Result<(), ShardError> {
        Ok(())
    }

    /// The most intervals this source may deliver in one batch.
    ///
    /// Sources that *react* to what the consumer did with earlier
    /// intervals (closed-loop attackers reading a feedback board) must
    /// return `1`: prefetching interval `n+1` before the mitigation has
    /// processed interval `n` would decouple the loop.  Open-loop
    /// generators keep the default unbounded value.  Composite sources
    /// take the minimum over their parts.
    fn max_batch_intervals(&self) -> u64 {
        u64::MAX
    }

    /// Fills `batch` (cleared first) with up to `max_intervals` whole
    /// refresh intervals of activations, stopping early once the
    /// batch's soft event capacity is reached.  Returns `false` when
    /// the trace is exhausted (no interval delivered).
    ///
    /// The default implementation is a one-interval-at-a-time shim over
    /// [`TraceSource::next_interval`], so every existing source —
    /// including externally-driven ones like `CpuWorkload` — batches
    /// without changes.  The number of intervals per fill is bounded by
    /// `max_intervals`, by [`TraceSource::max_batch_intervals`], and by
    /// the batch's event target (so sparse traces cannot grow the
    /// boundary list without bound).
    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        batch.clear();
        let cap = max_intervals
            .min(self.max_batch_intervals())
            .min(batch.target_events() as u64);
        let mut delivered = 0u64;
        let mut scratch = batch.take_scratch();
        while delivered < cap && !batch.is_full() {
            scratch.clear();
            if !self.next_interval(&mut scratch) {
                break;
            }
            batch.push_interval(&scratch);
            delivered += 1;
        }
        batch.restore_scratch(scratch);
        delivered > 0
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        (**self).next_interval(out)
    }

    fn intervals_hint(&self) -> Option<u64> {
        (**self).intervals_hint()
    }

    fn shard_support(&self) -> Result<(), ShardError> {
        (**self).shard_support()
    }

    fn max_batch_intervals(&self) -> u64 {
        (**self).max_batch_intervals()
    }

    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        (**self).next_batch(batch, max_intervals)
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        (**self).next_interval(out)
    }

    fn intervals_hint(&self) -> Option<u64> {
        (**self).intervals_hint()
    }

    fn shard_support(&self) -> Result<(), ShardError> {
        (**self).shard_support()
    }

    fn max_batch_intervals(&self) -> u64 {
        (**self).max_batch_intervals()
    }

    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        (**self).next_batch(batch, max_intervals)
    }
}

/// A trace source that can be split into deterministic per-bank
/// sub-streams.
///
/// DRAM banks are independent: no disturbance couples them, and every
/// mitigation keeps per-bank state, so a run can be *sharded by bank* —
/// each bank's sub-stream driven through its own mitigation instance and
/// device view — and merged afterwards with bit-identical results.  The
/// contract that makes this sound:
///
/// * `bank_shard(b)` must be called on a **fresh** (not yet consumed)
///   source, and returns a fresh source producing exactly the events the
///   parent would emit for bank `b`, in the parent's per-bank order;
/// * the shard ticks the **same number of intervals** as the parent
///   (banks with no traffic still tick — see [`IdleTrace`]);
/// * the shard is a pure function of the parent's configuration and
///   `b` — independent of worker count or scheduling.  Generators with
///   randomness derive per-bank sub-streams via
///   [`dram_sim::bank_seed`].
///
/// Shards implement `TraceSplit` themselves so composite sources (for
/// example [`crate::MixedTrace`]) can shard their parts recursively.
pub trait TraceSplit: TraceSource + Send {
    /// This source's bank-`bank` sub-stream, from the beginning.
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit>;
}

impl<S: TraceSplit + ?Sized> TraceSplit for Box<S> {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        (**self).bank_shard(bank)
    }
}

/// A source that produces no events but ticks a fixed number of
/// intervals — the bank shard of a source that never touches that bank.
/// Keeping idle banks ticking preserves interval alignment, so every
/// shard of a run simulates the same number of refresh intervals.
#[derive(Debug, Clone)]
pub struct IdleTrace {
    remaining: u64,
    total: u64,
}

impl IdleTrace {
    /// An idle source ticking `intervals` times.
    pub fn new(intervals: u64) -> Self {
        IdleTrace {
            remaining: intervals,
            total: intervals,
        }
    }
}

impl TraceSource for IdleTrace {
    fn next_interval(&mut self, _out: &mut Vec<TraceEvent>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        // Idle bank shards are the common case of a sharded run: ticks
        // only, no events, no scratch round-trip.
        batch.clear();
        let n = self
            .remaining
            .min(max_intervals)
            .min(batch.target_events() as u64);
        if n == 0 {
            return false;
        }
        self.remaining -= n;
        batch.push_empty_intervals(n);
        true
    }
}

impl TraceSplit for IdleTrace {
    fn bank_shard(&self, _bank: BankId) -> Box<dyn TraceSplit> {
        Box::new(IdleTrace::new(self.total))
    }
}

/// A pre-recorded trace replayed interval by interval.
///
/// ```
/// use mem_trace::{ReplayTrace, TraceEvent, TraceSource};
/// use dram_sim::{BankId, RowAddr};
///
/// let intervals = vec![
///     vec![TraceEvent::benign(BankId(0), RowAddr(1))],
///     vec![],
/// ];
/// let mut replay = ReplayTrace::new(intervals);
/// let mut out = Vec::new();
/// assert!(replay.next_interval(&mut out));
/// assert_eq!(out.len(), 1);
/// out.clear();
/// assert!(replay.next_interval(&mut out)); // empty interval still ticks
/// assert!(!replay.next_interval(&mut out)); // exhausted
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayTrace {
    intervals: std::collections::VecDeque<Vec<TraceEvent>>,
    total: u64,
}

impl ReplayTrace {
    /// Wraps a list of per-interval event batches.
    pub fn new<I>(intervals: I) -> Self
    where
        I: IntoIterator<Item = Vec<TraceEvent>>,
    {
        let intervals: std::collections::VecDeque<_> = intervals.into_iter().collect();
        let total = intervals.len() as u64;
        ReplayTrace { intervals, total }
    }
}

impl TraceSource for ReplayTrace {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        match self.intervals.pop_front() {
            Some(batch) => {
                out.extend(batch);
                true
            }
            None => false,
        }
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        // Recorded intervals go straight into the SoA buffer, skipping
        // the shim's staging copy.
        batch.clear();
        let cap = max_intervals.min(batch.target_events() as u64);
        let mut delivered = 0u64;
        while delivered < cap && !batch.is_full() {
            match self.intervals.pop_front() {
                Some(events) => {
                    batch.push_interval(&events);
                    delivered += 1;
                }
                None => break,
            }
        }
        delivered > 0
    }
}

impl TraceSplit for ReplayTrace {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        Box::new(ReplayTrace::new(self.intervals.iter().map(|batch| {
            batch
                .iter()
                .filter(|e| e.bank == bank)
                .copied()
                .collect::<Vec<_>>()
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_label() {
        assert!(!TraceEvent::benign(BankId(0), RowAddr(1)).aggressor);
        assert!(TraceEvent::attack(BankId(0), RowAddr(1)).aggressor);
    }

    #[test]
    fn idle_trace_ticks_without_events() {
        let mut idle = IdleTrace::new(3);
        assert_eq!(idle.intervals_hint(), Some(3));
        let mut out = Vec::new();
        let mut n = 0;
        while idle.next_interval(&mut out) {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(out.is_empty());
    }

    #[test]
    fn replay_shard_filters_by_bank_and_keeps_interval_count() {
        let trace = ReplayTrace::new(vec![
            vec![
                TraceEvent::benign(BankId(0), RowAddr(1)),
                TraceEvent::attack(BankId(1), RowAddr(2)),
            ],
            vec![TraceEvent::benign(BankId(1), RowAddr(3))],
        ]);
        let mut shard = trace.bank_shard(BankId(1));
        assert_eq!(shard.intervals_hint(), Some(2));
        let mut out = Vec::new();
        assert!(shard.next_interval(&mut out));
        assert_eq!(out, vec![TraceEvent::attack(BankId(1), RowAddr(2))]);
        out.clear();
        assert!(shard.next_interval(&mut out));
        assert_eq!(out, vec![TraceEvent::benign(BankId(1), RowAddr(3))]);
        assert!(!shard.next_interval(&mut out));
    }

    #[test]
    fn default_batch_shim_matches_interval_delivery() {
        let intervals = vec![
            vec![TraceEvent::benign(BankId(0), RowAddr(1))],
            vec![],
            vec![
                TraceEvent::attack(BankId(1), RowAddr(2)),
                TraceEvent::benign(BankId(0), RowAddr(3)),
            ],
        ];
        // Drive the *shim* (not ReplayTrace's override) through a
        // wrapper that only implements next_interval.
        struct Shimmed(ReplayTrace);
        impl TraceSource for Shimmed {
            fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
                self.0.next_interval(out)
            }
        }
        let mut shimmed = Shimmed(ReplayTrace::new(intervals.clone()));
        let mut batch = EventBatch::new();
        assert!(shimmed.next_batch(&mut batch, u64::MAX));
        assert_eq!(batch.intervals(), 3);
        let flattened: Vec<_> = (0..batch.len()).map(|i| batch.event(i)).collect();
        let expected: Vec<_> = intervals.iter().flatten().copied().collect();
        assert_eq!(flattened, expected);
        assert_eq!(batch.segment(1), 1..1);
        assert!(!shimmed.next_batch(&mut batch, u64::MAX));
    }

    #[test]
    fn batch_respects_max_intervals_and_source_cap() {
        struct OnePerBatch(ReplayTrace);
        impl TraceSource for OnePerBatch {
            fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
                self.0.next_interval(out)
            }
            fn max_batch_intervals(&self) -> u64 {
                1
            }
        }
        let intervals = vec![vec![], vec![], vec![]];
        let mut capped = OnePerBatch(ReplayTrace::new(intervals.clone()));
        let mut batch = EventBatch::new();
        let mut fills = 0;
        while capped.next_batch(&mut batch, u64::MAX) {
            assert_eq!(batch.intervals(), 1);
            fills += 1;
        }
        assert_eq!(fills, 3);

        // The caller's limit binds too, on the override path.
        let mut replay = ReplayTrace::new(intervals);
        assert!(replay.next_batch(&mut batch, 2));
        assert_eq!(batch.intervals(), 2);
    }

    #[test]
    fn idle_batch_ticks_in_bulk() {
        let mut idle = IdleTrace::new(5);
        let mut batch = EventBatch::new();
        assert!(idle.next_batch(&mut batch, 3));
        assert_eq!(batch.intervals(), 3);
        assert!(batch.is_empty());
        assert!(idle.next_batch(&mut batch, u64::MAX));
        assert_eq!(batch.intervals(), 2);
        assert!(!idle.next_batch(&mut batch, u64::MAX));
    }

    #[test]
    fn replay_reports_hint_and_exhausts() {
        let mut t = ReplayTrace::new(vec![vec![], vec![]]);
        assert_eq!(t.intervals_hint(), Some(2));
        let mut out = Vec::new();
        assert!(t.next_interval(&mut out));
        assert!(t.next_interval(&mut out));
        assert!(!t.next_interval(&mut out));
        assert!(out.is_empty());
    }
}
