//! Trace events and the interval-batched trace source abstraction.

use dram_sim::{BankId, RowAddr};
use serde::{Deserialize, Serialize};

/// One row activation in the trace.
///
/// `aggressor` is ground-truth labelling from the generator: the access
/// belongs to attacker code.  Mitigations never see this flag — it is
/// used only by the metrics layer to separate true from false positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Bank being activated.
    pub bank: BankId,
    /// Row being activated.
    pub row: RowAddr,
    /// Whether this access was issued by attacker code.
    pub aggressor: bool,
}

impl TraceEvent {
    /// A benign workload access.
    pub fn benign(bank: BankId, row: RowAddr) -> Self {
        TraceEvent {
            bank,
            row,
            aggressor: false,
        }
    }

    /// An attacker access.
    pub fn attack(bank: BankId, row: RowAddr) -> Self {
        TraceEvent {
            bank,
            row,
            aggressor: true,
        }
    }
}

/// A source of activations, delivered one refresh interval at a time.
///
/// The driving harness alternates `next_interval` (activations) with the
/// device's refresh command, mirroring how the memory controller
/// interleaves traffic with auto-refresh.
pub trait TraceSource {
    /// Appends this interval's activations to `out`, in issue order.
    ///
    /// Returns `false` when the trace is exhausted (nothing appended).
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool;

    /// A hint of the number of intervals this source will produce, if
    /// bounded.
    fn intervals_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        (**self).next_interval(out)
    }

    fn intervals_hint(&self) -> Option<u64> {
        (**self).intervals_hint()
    }
}

/// A pre-recorded trace replayed interval by interval.
///
/// ```
/// use mem_trace::{ReplayTrace, TraceEvent, TraceSource};
/// use dram_sim::{BankId, RowAddr};
///
/// let intervals = vec![
///     vec![TraceEvent::benign(BankId(0), RowAddr(1))],
///     vec![],
/// ];
/// let mut replay = ReplayTrace::new(intervals);
/// let mut out = Vec::new();
/// assert!(replay.next_interval(&mut out));
/// assert_eq!(out.len(), 1);
/// out.clear();
/// assert!(replay.next_interval(&mut out)); // empty interval still ticks
/// assert!(!replay.next_interval(&mut out)); // exhausted
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayTrace {
    intervals: std::collections::VecDeque<Vec<TraceEvent>>,
    total: u64,
}

impl ReplayTrace {
    /// Wraps a list of per-interval event batches.
    pub fn new<I>(intervals: I) -> Self
    where
        I: IntoIterator<Item = Vec<TraceEvent>>,
    {
        let intervals: std::collections::VecDeque<_> = intervals.into_iter().collect();
        let total = intervals.len() as u64;
        ReplayTrace { intervals, total }
    }
}

impl TraceSource for ReplayTrace {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        match self.intervals.pop_front() {
            Some(batch) => {
                out.extend(batch);
                true
            }
            None => false,
        }
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_label() {
        assert!(!TraceEvent::benign(BankId(0), RowAddr(1)).aggressor);
        assert!(TraceEvent::attack(BankId(0), RowAddr(1)).aggressor);
    }

    #[test]
    fn replay_reports_hint_and_exhausts() {
        let mut t = ReplayTrace::new(vec![vec![], vec![]]);
        assert_eq!(t.intervals_hint(), Some(2));
        let mut out = Vec::new();
        assert!(t.next_interval(&mut out));
        assert!(t.next_interval(&mut out));
        assert!(!t.next_interval(&mut out));
        assert!(out.is_empty());
    }
}
