//! Access-level CPU workload model: cores → caches → DRAM activations.
//!
//! The interval-level [`crate::SpecLikeWorkload`] asserts the DRAM
//! activation statistics directly; this module *derives* them the way
//! the paper's gem5 setup did — 4 cores (Table I) issue memory accesses
//! against per-core 64 KB L1 / 256 KB L2 hierarchies, and only the
//! misses reach DRAM.  The attacker core hammers its aggressor lines
//! with `CLFLUSH` between accesses, so every one of its accesses
//! activates a row (the Kim et al. attack loop).
//!
//! The resulting activation stream shows the same qualitative structure
//! the direct generator is calibrated to: cache-filtered benign traffic
//! with a small set of high-activation-rate rows (streaming arrays,
//! cache-thrashing working sets), plus full-rate aggressor rows.

use crate::cache::CacheHierarchy;
use crate::event::{ShardError, TraceEvent, TraceSource};
use crate::zipf::Zipf;
use dram_sim::{BankId, Geometry, RowAddr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a benign core generates line addresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoreBehavior {
    /// Zipf-distributed reuse over a working set of lines (pointer-chasing
    /// / hot-data codes): high cache hit rate, few DRAM activations.
    WorkingSet {
        /// Working-set size in cache lines.
        lines: u32,
        /// Zipf exponent of line popularity.
        zipf_exponent: f64,
    },
    /// Sequential streaming over a large array (stream/copy kernels):
    /// every line is a compulsory miss, activations sweep rows in order.
    Streaming {
        /// Length of the streamed array in lines before wrapping.
        length_lines: u32,
    },
    /// The attacker: hammer a fixed set of aggressor rows with CLFLUSH
    /// before every access, so each access activates.
    Attacker {
        /// Hammered rows.
        aggressor_rows: u32,
        /// First aggressor row (spaced two apart, as in the attack
        /// generators).
        base_row: u32,
    },
}

/// Configuration of the access-level model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuWorkloadConfig {
    /// DRAM geometry (for address mapping).
    pub rows_per_bank: u32,
    /// Banks (line addresses interleave across them).
    pub banks: u32,
    /// Cache lines per DRAM row (8 KB row / 64 B line = 128).
    pub lines_per_row: u32,
    /// Accesses each core issues per refresh interval (Table I:
    /// 1.6 G instructions / 1.56 M intervals / 4 cores, memory-access
    /// fraction folded in).
    pub accesses_per_core_interval: u32,
    /// The cores.
    pub cores: Vec<CoreBehavior>,
    /// Refresh intervals to generate.
    pub intervals: u64,
}

impl CpuWorkloadConfig {
    /// A Table I-like 4-core mix: two working-set cores, one streaming
    /// core, one attacker.
    pub fn paper(geometry: &Geometry, intervals: u64) -> Self {
        CpuWorkloadConfig {
            rows_per_bank: geometry.rows_per_bank(),
            banks: geometry.banks(),
            lines_per_row: 128,
            // 60 accesses per core per 7.8 µs interval keeps the
            // resulting *activation* stream within the DDR4 per-bank
            // bound of 165 (benign misses spread over 4 banks plus the
            // attacker's flush stream on one bank).
            accesses_per_core_interval: 60,
            cores: vec![
                CoreBehavior::WorkingSet {
                    lines: 3000,
                    zipf_exponent: 1.1,
                },
                CoreBehavior::WorkingSet {
                    lines: 20_000,
                    zipf_exponent: 0.9,
                },
                CoreBehavior::Streaming {
                    length_lines: 1 << 20,
                },
                CoreBehavior::Attacker {
                    aggressor_rows: 2,
                    base_row: 30_000,
                },
            ],
            intervals,
        }
    }
}

/// Per-core runtime state.
#[derive(Debug)]
struct CoreState {
    behavior: CoreBehavior,
    hierarchy: CacheHierarchy,
    zipf: Option<Zipf>,
    /// Working-set base line / streaming cursor / attacker rotation.
    cursor: u64,
    base_line: u64,
}

/// The cache-filtered workload (a [`TraceSource`] of DRAM activations).
///
/// ```
/// use mem_trace::cpu::{CpuWorkload, CpuWorkloadConfig};
/// use mem_trace::TraceSource;
/// use dram_sim::Geometry;
///
/// let geometry = Geometry::paper();
/// let mut cpu = CpuWorkload::new(CpuWorkloadConfig::paper(&geometry, 4), 7);
/// let mut out = Vec::new();
/// cpu.next_interval(&mut out);
/// // Benign accesses are cache-filtered; the attacker's all activate.
/// assert!(out.iter().any(|e| e.aggressor));
/// ```
#[derive(Debug)]
pub struct CpuWorkload {
    config: CpuWorkloadConfig,
    cores: Vec<CoreState>,
    rng: StdRng,
    interval: u64,
}

impl CpuWorkload {
    /// Creates the model with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if there are no cores or the geometry is degenerate.
    pub fn new(config: CpuWorkloadConfig, seed: u64) -> Self {
        assert!(!config.cores.is_empty(), "need at least one core");
        assert!(config.banks > 0 && config.rows_per_bank > 0 && config.lines_per_row > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let total_lines = u64::from(config.banks)
            * u64::from(config.rows_per_bank)
            * u64::from(config.lines_per_row);
        let cores = config
            .cores
            .iter()
            .map(|&behavior| {
                let zipf = match behavior {
                    CoreBehavior::WorkingSet {
                        lines,
                        zipf_exponent,
                    } => Some(Zipf::new(lines as usize, zipf_exponent)),
                    _ => None,
                };
                CoreState {
                    behavior,
                    hierarchy: CacheHierarchy::paper(),
                    zipf,
                    cursor: 0,
                    base_line: rng.random_range(0..total_lines / 2),
                }
            })
            .collect();
        CpuWorkload {
            config,
            cores,
            rng,
            interval: 0,
        }
    }

    /// Maps a global line address to `(bank, row)`: lines interleave
    /// across banks, then fill rows.
    // Both quantities are reduced modulo a u32 bound, so they fit u32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn decode(&self, line: u64) -> (BankId, RowAddr) {
        let banks = u64::from(self.config.banks);
        let bank = (line % banks) as u32;
        let row = ((line / banks) / u64::from(self.config.lines_per_row))
            % u64::from(self.config.rows_per_bank);
        (BankId(bank), RowAddr(row as u32))
    }

    /// Per-core cache filtering: fraction of core `index`'s accesses
    /// that reached DRAM.
    pub fn core_dram_fraction(&self, index: usize) -> f64 {
        let core = &self.cores[index];
        let issued = core.hierarchy.l1().hits() + core.hierarchy.l1().misses();
        if issued == 0 {
            0.0
        } else {
            core.hierarchy.l2().misses() as f64 / issued as f64
        }
    }

    /// Aggregate L2 miss rate across benign cores (calibration metric).
    pub fn benign_dram_access_fraction(&self) -> f64 {
        let mut to_dram = 0u64;
        let mut total = 0u64;
        for core in &self.cores {
            if matches!(core.behavior, CoreBehavior::Attacker { .. }) {
                continue;
            }
            to_dram += core.hierarchy.l2().misses();
            total += core.hierarchy.l1().hits() + core.hierarchy.l1().misses();
        }
        if total == 0 {
            0.0
        } else {
            to_dram as f64 / total as f64
        }
    }
}

impl TraceSource for CpuWorkload {
    /// `CpuWorkload` is *not* bank-shardable: the cores draw from one
    /// shared RNG, and each core's cache hierarchy filters accesses that
    /// interleave across every bank, so a per-bank sub-stream is not a
    /// pure function of the configuration and the bank id.  Multi-bank
    /// runs of this source must execute sequentially.
    fn shard_support(&self) -> Result<(), ShardError> {
        Err(ShardError::new(
            "CpuWorkload",
            "cores share one RNG and per-core cache hierarchies span all \
             banks, so per-bank sub-streams are not independent",
        ))
    }

    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        if self.interval >= self.config.intervals {
            return false;
        }
        let per_core = self.config.accesses_per_core_interval;
        let lines_per_row = u64::from(self.config.lines_per_row);
        let banks = u64::from(self.config.banks);
        for core_idx in 0..self.cores.len() {
            for _ in 0..per_core {
                let core = &mut self.cores[core_idx];
                let (line, aggressor) = match core.behavior {
                    CoreBehavior::WorkingSet { .. } => {
                        let rank = core
                            .zipf
                            .as_ref()
                            .expect("working-set core has a zipf")
                            .sample(&mut self.rng) as u64;
                        (core.base_line + rank, false)
                    }
                    CoreBehavior::Streaming { length_lines } => {
                        let line = core.base_line + core.cursor;
                        core.cursor = (core.cursor + 1) % u64::from(length_lines);
                        (line, false)
                    }
                    CoreBehavior::Attacker {
                        aggressor_rows,
                        base_row,
                    } => {
                        // Round-robin over aggressor rows; CLFLUSH makes
                        // every access a DRAM activation.
                        let k = core.cursor % u64::from(aggressor_rows.max(1));
                        core.cursor += 1;
                        let row = u64::from(base_row) + 2 * k;
                        // Line 0 of the row in bank 0.
                        let line = row * lines_per_row * banks;
                        core.hierarchy.flush(line);
                        (line, true)
                    }
                };
                let to_dram = {
                    let core = &mut self.cores[core_idx];
                    core.hierarchy.access_misses_to_dram(line)
                };
                if to_dram {
                    let (bank, row) = self.decode(line);
                    out.push(TraceEvent {
                        bank,
                        row,
                        aggressor,
                    });
                }
            }
        }
        self.interval += 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.config.intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    fn workload(intervals: u64) -> CpuWorkload {
        CpuWorkload::new(CpuWorkloadConfig::paper(&Geometry::paper(), intervals), 3)
    }

    #[test]
    fn caches_filter_benign_accesses() {
        let mut w = workload(400);
        let mut out = Vec::new();
        while w.next_interval(&mut out) {}
        // The aggregate benign DRAM fraction is pulled up by the
        // streaming core (compulsory misses); overall it stays below
        // unfiltered, and the cache-resident working-set core is almost
        // fully filtered.
        let fraction = w.benign_dram_access_fraction();
        assert!(fraction < 0.7, "benign DRAM fraction {fraction}");
        assert!(fraction > 0.05);
        // Core 0's 3000-line working set fits in its 4096-line L2.
        let resident = w.core_dram_fraction(0);
        assert!(resident < 0.15, "resident core DRAM fraction {resident}");
        // The streaming core misses everything.
        let streaming = w.core_dram_fraction(2);
        assert!(streaming > 0.95, "streaming core fraction {streaming}");
    }

    #[test]
    fn attacker_accesses_always_activate() {
        let mut w = workload(50);
        let mut out = Vec::new();
        while w.next_interval(&mut out) {}
        let attacks = out.iter().filter(|e| e.aggressor).count() as u64;
        // 60 accesses per interval × 50 intervals, all activating.
        assert_eq!(attacks, 60 * 50);
        // And they land on the configured aggressor rows.
        assert!(out
            .iter()
            .filter(|e| e.aggressor)
            .all(|e| e.row == RowAddr(30_000) || e.row == RowAddr(30_002)));
    }

    #[test]
    fn streaming_core_sweeps_rows_in_order() {
        let config = CpuWorkloadConfig {
            cores: vec![CoreBehavior::Streaming {
                length_lines: 1 << 20,
            }],
            ..CpuWorkloadConfig::paper(&Geometry::paper(), 4)
        };
        let mut w = CpuWorkload::new(config, 1);
        let mut out = Vec::new();
        while w.next_interval(&mut out) {}
        // Streaming misses every line: 60 × 4 activations.
        assert_eq!(out.len(), 240);
        // Consecutive lines interleave across banks.
        let banks: std::collections::HashSet<BankId> = out.iter().map(|e| e.bank).collect();
        assert_eq!(banks.len(), 4);
    }

    #[test]
    fn decode_is_within_geometry() {
        let w = workload(1);
        for line in [0u64, 1, 12_345, 1 << 30] {
            let (bank, row) = w.decode(line);
            assert!(bank.0 < 4);
            assert!(row.0 < 65_536);
        }
    }

    #[test]
    fn activation_stream_is_row_concentrated() {
        // The property the direct generator asserts, derived here: the
        // busiest rows (aggressors + stream head) dominate activations.
        let mut w = workload(100);
        let stats = TraceStats::collect(&mut w);
        assert!(
            stats.top_k_coverage(32) > 0.5,
            "{}",
            stats.top_k_coverage(32)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut w = CpuWorkload::new(CpuWorkloadConfig::paper(&Geometry::paper(), 20), seed);
            let mut out = Vec::new();
            while w.next_interval(&mut out) {}
            out
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn activation_rate_respects_the_ddr4_bound() {
        let mut w = workload(100);
        let stats = TraceStats::collect(&mut w);
        assert!(
            stats.max_per_bank_interval <= 165,
            "max {}",
            stats.max_per_bank_interval
        );
    }
}
