//! Row-hammer attacker generators.
//!
//! The paper's attacker "has aggressors increasing gradually from 1 to 20
//! aggressors per targeted bank" and hammers with cache flushing, i.e. at
//! the maximum rate the bank will accept.  The generators here produce
//! exactly the activation patterns such code emits; every event is
//! labelled `aggressor = true` so the metrics layer has ground truth.

use crate::event::{IdleTrace, TraceEvent, TraceSource, TraceSplit};
use dram_sim::{BankId, RowAddr};
use serde::{Deserialize, Serialize};

/// The attack pattern to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Hammer a single aggressor row (victims: both its neighbors).
    SingleSided {
        /// The hammered row.
        aggressor: RowAddr,
    },
    /// Hammer both neighbors of one victim row.
    DoubleSided {
        /// The victim row between the two aggressors.
        victim: RowAddr,
    },
    /// The paper's evaluation attack: the number of simultaneously
    /// hammered aggressors ramps linearly from 1 to `max_aggressors`
    /// over the attack duration.  Aggressors sit at
    /// `base_row, base_row+2, base_row+4, …`, so consecutive aggressors
    /// flank shared victims (a many-sided attack).
    MultiAggressorRamp {
        /// First aggressor row.
        base_row: RowAddr,
        /// Final number of aggressors per targeted bank (paper: 20).
        max_aggressors: u32,
    },
    /// Flooding: one row hammered at the attacker's full budget —
    /// the §IV stress test against LiPRoMi's slow weight ramp.
    Flooding {
        /// The flooded row.
        row: RowAddr,
    },
    /// Decoy-assisted double-sided hammering (TRRespass-style): both
    /// neighbors of `victim` are hammered while `decoys` far-away rows
    /// are interleaved to churn recency/insertion-based tracker state
    /// (MRLoc's queue, ProHit's cold table, CaPRoMi's counter table).
    /// The budget is shared round-robin, so more decoys mean a slower
    /// hammer — the attacker's fundamental trade-off.
    DecoyAssisted {
        /// The victim row between the two aggressors.
        victim: RowAddr,
        /// Number of decoy rows (placed 10 000 rows above the victim).
        decoys: u32,
    },
    /// Phase-shifted many-sided ramp: the aggressor count ramps exactly
    /// like [`AttackKind::MultiAggressorRamp`], but the whole aggressor
    /// block relocates to a different row region every
    /// `shift_intervals` intervals, cycling through four disjoint
    /// positions.  Relocation costs the attacker almost nothing — a
    /// victim's disturbance counter is cleared by its once-per-window
    /// auto-refresh anyway — while any *cross-window* per-row tracker
    /// state (TWiCe lifetime counts, Graphene epoch tables, CaPRoMi
    /// counters, MRLoc queue residency) is built against rows the
    /// attack no longer touches.
    PhaseShifted {
        /// First aggressor row of position 0; positions `p` start at
        /// `base_row + p * 2 * max_aggressors`.
        base_row: RowAddr,
        /// Final number of aggressors per targeted bank.
        max_aggressors: u32,
        /// Intervals between relocations (typically one refresh
        /// window); `0` disables relocation.
        shift_intervals: u64,
    },
    /// Profiling sweep (the exploit subsystem's phase-1 pattern): a
    /// double-sided hammer whose victim slides across a span of rows,
    /// dwelling `dwell_intervals` on each victim before advancing and
    /// wrapping at the end of the span.  The per-victim hammer budget is
    /// therefore `dwell_intervals * acts_per_interval` — the knob an
    /// attacker turns to separate weak rows (which flip inside the
    /// dwell) from strong ones (which don't), building a weak-cell map
    /// from nothing but observed flips.
    ProfilingSweep {
        /// First victim row of the sweep.
        base_row: RowAddr,
        /// Number of consecutive victim rows covered before wrapping.
        span_rows: u32,
        /// Intervals spent on each victim before advancing (`0` acts
        /// as 1).
        dwell_intervals: u64,
    },
    /// Refresh-synchronized burst: `pairs` adjacent aggressors (spaced
    /// two apart, flanking shared victims) are hammered only during the
    /// first `duty_intervals` of every `period_intervals`-long period,
    /// offset by `phase`.  Aligning the duty cycle with the victims'
    /// refresh slot concentrates the entire budget into the stretch
    /// where a time-varying mitigation's selection probability is still
    /// ramping up from its post-refresh floor — the attack spends
    /// nothing while the defender is most likely to sample it.
    RefreshSyncBurst {
        /// First aggressor row.
        base_row: RowAddr,
        /// Number of aggressor rows (spaced two apart).
        pairs: u32,
        /// Active intervals at the start of each period.
        duty_intervals: u64,
        /// Period length in intervals (typically one refresh window);
        /// `0` means always active.
        period_intervals: u64,
        /// Offset of the duty window within the period.
        phase: u64,
    },
}

/// Number of disjoint aggressor-block positions
/// [`AttackKind::PhaseShifted`] cycles through.
pub const PHASE_SHIFT_SLOTS: u64 = 4;

/// A parameterised attacker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// The pattern.
    pub kind: AttackKind,
    /// Banks under attack (the paper attacks each targeted bank
    /// independently with the same pattern).
    pub target_banks: Vec<BankId>,
    /// Attacker activation budget per targeted bank per refresh interval
    /// (bounded by the DDR4 165 minus whatever the benign mix uses).
    pub acts_per_interval: u32,
    /// Interval at which the attack starts.
    pub start_interval: u64,
    /// Total trace length in intervals.
    pub intervals: u64,
    /// For [`AttackKind::MultiAggressorRamp`]: how many intervals each
    /// aggressor-count step lasts.  `0` spreads the ramp linearly over
    /// the whole attack duration.  The paper ramps 1→20 aggressors over
    /// ≈190 refresh windows, i.e. each step holds for ≈9.5 windows, so
    /// short runs should hold each step for at least one window —
    /// otherwise the low-aggressor phases are too brief for their
    /// (strongest) attacks to develop.
    pub ramp_hold_intervals: u64,
}

impl AttackConfig {
    /// The paper's ramping attack on `banks`, lasting `intervals`, with
    /// each aggressor-count step held for at least one refresh window of
    /// `intervals_per_window` intervals.
    ///
    /// The budget of 24 activations per bank-interval keeps the mixed
    /// trace near the paper's ≈40 activations per bank-interval average
    /// while still flipping bits unprotected in the 1–2-aggressor
    /// phases (a victim needs ≥ 17 disturbances per interval sustained
    /// over its refresh window to reach 139 K).
    pub fn paper_ramp(banks: u32, intervals: u64, intervals_per_window: u64) -> Self {
        AttackConfig {
            kind: AttackKind::MultiAggressorRamp {
                base_row: RowAddr(30_000),
                max_aggressors: 20,
            },
            target_banks: (0..banks).map(BankId).collect(),
            acts_per_interval: 24,
            start_interval: 0,
            intervals,
            ramp_hold_intervals: (intervals / 20).max(intervals_per_window),
        }
    }

    /// A flooding attack against one bank.
    pub fn flooding(row: RowAddr, intervals: u64) -> Self {
        AttackConfig {
            kind: AttackKind::Flooding { row },
            target_banks: vec![BankId(0)],
            acts_per_interval: 137,
            start_interval: 0,
            intervals,
            ramp_hold_intervals: 0,
        }
    }
}

/// The attacker trace source.
///
/// ```
/// use mem_trace::{AttackConfig, AttackKind, Attacker, TraceSource};
/// use dram_sim::{BankId, RowAddr};
///
/// let config = AttackConfig {
///     kind: AttackKind::DoubleSided { victim: RowAddr(100) },
///     target_banks: vec![BankId(0)],
///     acts_per_interval: 10,
///     start_interval: 0,
///     intervals: 1,
///     ramp_hold_intervals: 0,
/// };
/// let mut attacker = Attacker::new(config);
/// let mut out = Vec::new();
/// attacker.next_interval(&mut out);
/// assert_eq!(out.len(), 10);
/// assert!(out.iter().all(|e| e.aggressor));
/// assert!(out.iter().all(|e| e.row == RowAddr(99) || e.row == RowAddr(101)));
/// ```
#[derive(Debug, Clone)]
pub struct Attacker {
    config: AttackConfig,
    interval: u64,
    /// Round-robin offset so the budget rotates fairly across aggressors
    /// when it does not divide evenly.
    rotation: u32,
}

impl Attacker {
    /// Creates the attacker for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `target_banks` is empty or the budget is zero.
    pub fn new(config: AttackConfig) -> Self {
        assert!(
            !config.target_banks.is_empty(),
            "attack needs a target bank"
        );
        assert!(
            config.acts_per_interval > 0,
            "attack budget must be nonzero"
        );
        Attacker {
            config,
            interval: 0,
            rotation: 0,
        }
    }

    /// The aggressor rows active at `interval`.
    pub fn aggressors_at(&self, interval: u64) -> Vec<RowAddr> {
        match self.config.kind {
            AttackKind::SingleSided { aggressor } => vec![aggressor],
            AttackKind::DoubleSided { victim } => {
                vec![RowAddr(victim.0.saturating_sub(1)), RowAddr(victim.0 + 1)]
            }
            AttackKind::Flooding { row } => vec![row],
            AttackKind::DecoyAssisted { victim, decoys } => {
                let mut rows = vec![RowAddr(victim.0.saturating_sub(1)), RowAddr(victim.0 + 1)];
                rows.extend((0..decoys).map(|d| RowAddr(victim.0 + 10_000 + 2 * d)));
                rows
            }
            AttackKind::MultiAggressorRamp {
                base_row,
                max_aggressors,
            } => {
                let k = self.ramp_count(interval, max_aggressors);
                (0..k.max(1)).map(|j| RowAddr(base_row.0 + 2 * j)).collect()
            }
            AttackKind::PhaseShifted {
                base_row,
                max_aggressors,
                shift_intervals,
            } => {
                let k = self.ramp_count(interval, max_aggressors);
                let elapsed = interval.saturating_sub(self.config.start_interval);
                let slot = match shift_intervals {
                    0 => 0,
                    s => (elapsed / s) % PHASE_SHIFT_SLOTS,
                };
                let slot = u32::try_from(slot).expect("slot index below PHASE_SHIFT_SLOTS");
                let base = base_row.0 + slot * 2 * max_aggressors;
                (0..k.max(1)).map(|j| RowAddr(base + 2 * j)).collect()
            }
            AttackKind::ProfilingSweep {
                base_row,
                span_rows,
                dwell_intervals,
            } => {
                let elapsed = interval.saturating_sub(self.config.start_interval);
                let step = elapsed / dwell_intervals.max(1);
                let offset = u32::try_from(step % u64::from(span_rows.max(1)))
                    .expect("offset is below span_rows");
                let victim = base_row.0 + offset;
                vec![RowAddr(victim.saturating_sub(1)), RowAddr(victim + 1)]
            }
            AttackKind::RefreshSyncBurst {
                base_row,
                pairs,
                duty_intervals,
                period_intervals,
                phase,
            } => {
                let elapsed = interval.saturating_sub(self.config.start_interval);
                let active = match period_intervals {
                    0 => true,
                    p => (elapsed + p - phase % p) % p < duty_intervals,
                };
                if active {
                    (0..pairs.max(1))
                        .map(|j| RowAddr(base_row.0 + 2 * j))
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// The ramping aggressor count at `interval`, guaranteed to reach
    /// `max_aggressors` in the final interval of the attack.
    ///
    /// The stepped schedule holds each count for `ramp_hold_intervals`
    /// (preserving the long low-aggressor phases — the strongest part
    /// of the attack), but is clamped from the end so the staircase
    /// never schedules a step too late for the remaining counts to each
    /// get at least one interval before the attack ends.  On a short
    /// run the old schedule stalled below the maximum — the off-by-one
    /// pinned by the proptests in `tests/ramp.rs`.
    fn ramp_count(&self, interval: u64, max_aggressors: u32) -> u32 {
        let elapsed = interval.saturating_sub(self.config.start_interval);
        let duration = self
            .config
            .intervals
            .saturating_sub(self.config.start_interval);
        let span = u64::from(max_aggressors.saturating_sub(1));
        if duration <= 1 || span == 0 {
            return max_aggressors;
        }
        let elapsed = elapsed.min(duration - 1);
        let hold = self.config.ramp_hold_intervals;
        let max = u64::from(max_aggressors);
        let count = match elapsed.checked_div(hold) {
            Some(steps) => {
                // Stepped ramp, with a deadline floor: by interval `e`
                // the count must be at least `max - (remaining
                // intervals)` or the tail of the staircase cannot fit.
                let stepped = 1 + steps.min(span);
                let deadline = max.saturating_sub(duration - 1 - elapsed);
                stepped.max(deadline).min(max)
            }
            // No hold: linear ramp over the whole duration; exact at
            // both ends.
            None => 1 + elapsed * span / (duration - 1),
        };
        u32::try_from(count).expect("ramp count is bounded by max_aggressors")
    }

    /// All rows that are potential victims of this attack (the physical
    /// neighbors of every aggressor that can ever be active) — used by
    /// the reliability analysis.
    pub fn victim_rows(&self) -> Vec<RowAddr> {
        // The sweep makes every row in its span the victim at some
        // interval (each is also an aggressor at *other* intervals, but
        // the usual aggressor exclusion is per-instant, not across
        // time), so the victim set is the span itself.
        if let AttackKind::ProfilingSweep {
            base_row, span_rows, ..
        } = self.config.kind
        {
            return (0..span_rows.max(1))
                .map(|d| RowAddr(base_row.0 + d))
                .collect();
        }
        let mut aggressors = self.aggressors_at(self.config.intervals.saturating_sub(1));
        aggressors.extend(self.aggressors_at(self.config.start_interval));
        match self.config.kind {
            // The aggressor block relocates over time: union the full
            // block over every position it can occupy.
            AttackKind::PhaseShifted {
                base_row,
                max_aggressors,
                shift_intervals,
            } if shift_intervals > 0 => {
                for slot in 0..u32::try_from(PHASE_SHIFT_SLOTS).expect("slot count fits u32") {
                    let base = base_row.0 + slot * 2 * max_aggressors;
                    aggressors.extend((0..max_aggressors.max(1)).map(|j| RowAddr(base + 2 * j)));
                }
            }
            // The burst may be off-duty at the sampled intervals: take
            // the full aggressor set directly.
            AttackKind::RefreshSyncBurst {
                base_row, pairs, ..
            } => {
                aggressors.extend((0..pairs.max(1)).map(|j| RowAddr(base_row.0 + 2 * j)));
            }
            _ => {}
        }
        let mut victims: Vec<RowAddr> = aggressors
            .iter()
            .flat_map(|a| [RowAddr(a.0.saturating_sub(1)), RowAddr(a.0 + 1)])
            .collect();
        victims.sort_unstable();
        victims.dedup();
        // A row that is itself an aggressor is being refreshed by the
        // attack and is not a meaningful victim.
        let aggr: std::collections::HashSet<RowAddr> = aggressors.into_iter().collect();
        victims.retain(|v| !aggr.contains(v));
        victims
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }
}

impl TraceSource for Attacker {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        if self.interval >= self.config.intervals {
            return false;
        }
        if self.interval >= self.config.start_interval {
            let aggressors = self.aggressors_at(self.interval);
            let n = u32::try_from(aggressors.len()).expect("aggressor count fits u32");
            // An empty set (a burst pattern off-duty) emits nothing and
            // leaves the rotation untouched.
            if n > 0 {
                for &bank in &self.config.target_banks {
                    for shot in 0..self.config.acts_per_interval {
                        let idx = (shot + self.rotation) % n;
                        out.push(TraceEvent::attack(bank, aggressors[idx as usize]));
                    }
                }
                self.rotation = (self.rotation + self.config.acts_per_interval) % n;
            }
        }
        self.interval += 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.config.intervals)
    }
}

impl TraceSplit for Attacker {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        if self.config.target_banks.contains(&bank) {
            // The attacker is deterministic and emits the identical
            // aggressor block to every targeted bank (the rotation
            // advances once per interval, after all banks), so the
            // bank-`bank` sub-stream is the same attack with a single
            // target.
            let mut config = self.config.clone();
            config.target_banks = vec![bank];
            Box::new(Attacker::new(config))
        } else {
            Box::new(IdleTrace::new(self.config.intervals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sided_hammers_one_row() {
        let mut a = Attacker::new(AttackConfig {
            kind: AttackKind::SingleSided {
                aggressor: RowAddr(5),
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 4,
            start_interval: 0,
            intervals: 3,
            ramp_hold_intervals: 0,
        });
        let mut out = Vec::new();
        while a.next_interval(&mut out) {}
        assert_eq!(out.len(), 12);
        assert!(out.iter().all(|e| e.row == RowAddr(5) && e.aggressor));
    }

    #[test]
    fn double_sided_splits_budget_evenly() {
        let mut a = Attacker::new(AttackConfig {
            kind: AttackKind::DoubleSided {
                victim: RowAddr(100),
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 10,
            start_interval: 0,
            intervals: 10,
            ramp_hold_intervals: 0,
        });
        let mut out = Vec::new();
        while a.next_interval(&mut out) {}
        let left = out.iter().filter(|e| e.row == RowAddr(99)).count();
        let right = out.iter().filter(|e| e.row == RowAddr(101)).count();
        assert_eq!(left, 50);
        assert_eq!(right, 50);
    }

    #[test]
    fn ramp_grows_from_one_to_max() {
        let a = Attacker::new(AttackConfig::paper_ramp(1, 1000, 0));
        assert_eq!(a.aggressors_at(0).len(), 1);
        assert_eq!(a.aggressors_at(999).len(), 20);
        let mid = a.aggressors_at(500).len();
        assert!((9..=12).contains(&mid), "midpoint count {mid}");
        // Aggressors are spaced two apart (shared victims between them).
        let rows = a.aggressors_at(999);
        for w in rows.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 2);
        }
    }

    #[test]
    fn victims_flank_aggressors() {
        let a = Attacker::new(AttackConfig {
            kind: AttackKind::SingleSided {
                aggressor: RowAddr(5),
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 1,
            start_interval: 0,
            intervals: 1,
            ramp_hold_intervals: 0,
        });
        assert_eq!(a.victim_rows(), vec![RowAddr(4), RowAddr(6)]);
    }

    #[test]
    fn ramp_victims_exclude_aggressors() {
        let a = Attacker::new(AttackConfig::paper_ramp(1, 100, 0));
        let victims = a.victim_rows();
        let aggressors = a.aggressors_at(99);
        for v in &victims {
            assert!(!aggressors.contains(v));
        }
        // The interleaved victims 30001, 30003, … are all present.
        assert!(victims.contains(&RowAddr(30_001)));
        assert!(victims.contains(&RowAddr(30_039)));
    }

    #[test]
    fn start_interval_delays_attack() {
        let mut a = Attacker::new(AttackConfig {
            kind: AttackKind::Flooding { row: RowAddr(7) },
            target_banks: vec![BankId(0)],
            acts_per_interval: 5,
            start_interval: 2,
            intervals: 4,
            ramp_hold_intervals: 0,
        });
        let mut out = Vec::new();
        a.next_interval(&mut out);
        a.next_interval(&mut out);
        assert!(out.is_empty());
        a.next_interval(&mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn multiple_banks_each_get_full_budget() {
        let mut a = Attacker::new(AttackConfig {
            kind: AttackKind::Flooding { row: RowAddr(7) },
            target_banks: vec![BankId(0), BankId(2)],
            acts_per_interval: 3,
            start_interval: 0,
            intervals: 1,
            ramp_hold_intervals: 0,
        });
        let mut out = Vec::new();
        a.next_interval(&mut out);
        assert_eq!(out.iter().filter(|e| e.bank == BankId(0)).count(), 3);
        assert_eq!(out.iter().filter(|e| e.bank == BankId(2)).count(), 3);
    }

    #[test]
    #[should_panic(expected = "target bank")]
    fn empty_targets_rejected() {
        let _ = Attacker::new(AttackConfig {
            kind: AttackKind::Flooding { row: RowAddr(7) },
            target_banks: vec![],
            acts_per_interval: 3,
            start_interval: 0,
            intervals: 1,
            ramp_hold_intervals: 0,
        });
    }

    #[test]
    fn short_ramp_still_reaches_max_aggressors() {
        // A hold too long for the duration must not stall the ramp: the
        // schedule compresses to linear and hits max in the final
        // interval (this is the off-by-one the redteam search tripped
        // over with quick-scale durations).
        let a = Attacker::new(AttackConfig {
            kind: AttackKind::MultiAggressorRamp {
                base_row: RowAddr(100),
                max_aggressors: 20,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 4,
            start_interval: 0,
            intervals: 256,
            ramp_hold_intervals: 128,
        });
        assert_eq!(a.aggressors_at(0).len(), 1);
        assert_eq!(a.aggressors_at(255).len(), 20);
    }

    #[test]
    fn phase_shifted_relocates_block_each_window() {
        let a = Attacker::new(AttackConfig {
            kind: AttackKind::PhaseShifted {
                base_row: RowAddr(1000),
                max_aggressors: 4,
                shift_intervals: 100,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 4,
            start_interval: 0,
            intervals: 400,
            ramp_hold_intervals: 0,
        });
        // Position 0 in the first window, position 1 in the second, and
        // wrap-around after PHASE_SHIFT_SLOTS windows.
        assert_eq!(a.aggressors_at(0)[0], RowAddr(1000));
        assert_eq!(a.aggressors_at(100)[0], RowAddr(1008));
        assert_eq!(a.aggressors_at(399)[0], RowAddr(1024));
        // The final interval still reaches max_aggressors.
        assert_eq!(a.aggressors_at(399).len(), 4);
        // Victims cover every position the block can occupy.
        let victims = a.victim_rows();
        assert!(victims.contains(&RowAddr(1001)));
        assert!(victims.contains(&RowAddr(1009)));
        assert!(victims.contains(&RowAddr(1025)));
    }

    #[test]
    fn refresh_sync_burst_is_silent_off_duty() {
        let mut a = Attacker::new(AttackConfig {
            kind: AttackKind::RefreshSyncBurst {
                base_row: RowAddr(200),
                pairs: 2,
                duty_intervals: 3,
                period_intervals: 10,
                phase: 0,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 6,
            start_interval: 0,
            intervals: 20,
            ramp_hold_intervals: 0,
        });
        let mut per_interval = Vec::new();
        let mut out = Vec::new();
        loop {
            out.clear();
            if !a.next_interval(&mut out) {
                break;
            }
            per_interval.push(out.len());
        }
        // 3 active intervals per 10-interval period, 2 periods.
        assert_eq!(per_interval.iter().filter(|&&n| n > 0).count(), 6);
        assert_eq!(per_interval.iter().sum::<usize>(), 6 * 6);
        assert!(per_interval[0] > 0 && per_interval[3] == 0);
        // The burst victims are known even when sampled off-duty.
        assert!(a.victim_rows().contains(&RowAddr(201)));
    }

    #[test]
    fn burst_phase_delays_duty_window() {
        let a = Attacker::new(AttackConfig {
            kind: AttackKind::RefreshSyncBurst {
                base_row: RowAddr(200),
                pairs: 1,
                duty_intervals: 2,
                period_intervals: 8,
                phase: 3,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 1,
            start_interval: 0,
            intervals: 8,
            ramp_hold_intervals: 0,
        });
        let active: Vec<u64> = (0..8).filter(|&i| !a.aggressors_at(i).is_empty()).collect();
        assert_eq!(active, vec![3, 4]);
    }

    #[test]
    fn profiling_sweep_dwells_then_advances_and_wraps() {
        let a = Attacker::new(AttackConfig {
            kind: AttackKind::ProfilingSweep {
                base_row: RowAddr(100),
                span_rows: 3,
                dwell_intervals: 2,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 4,
            start_interval: 0,
            intervals: 12,
            ramp_hold_intervals: 0,
        });
        // Two intervals on victim 100, then 101, 102, and wrap to 100.
        assert_eq!(a.aggressors_at(0), vec![RowAddr(99), RowAddr(101)]);
        assert_eq!(a.aggressors_at(1), vec![RowAddr(99), RowAddr(101)]);
        assert_eq!(a.aggressors_at(2), vec![RowAddr(100), RowAddr(102)]);
        assert_eq!(a.aggressors_at(4), vec![RowAddr(101), RowAddr(103)]);
        assert_eq!(a.aggressors_at(6), vec![RowAddr(99), RowAddr(101)]);
        // Every row of the span is a victim.
        assert_eq!(
            a.victim_rows(),
            vec![RowAddr(100), RowAddr(101), RowAddr(102)]
        );
    }

    #[test]
    fn profiling_sweep_zero_dwell_acts_as_one() {
        let a = Attacker::new(AttackConfig {
            kind: AttackKind::ProfilingSweep {
                base_row: RowAddr(10),
                span_rows: 2,
                dwell_intervals: 0,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 2,
            start_interval: 0,
            intervals: 4,
            ramp_hold_intervals: 0,
        });
        assert_eq!(a.aggressors_at(0), vec![RowAddr(9), RowAddr(11)]);
        assert_eq!(a.aggressors_at(1), vec![RowAddr(10), RowAddr(12)]);
        assert_eq!(a.aggressors_at(2), vec![RowAddr(9), RowAddr(11)]);
    }

    #[test]
    fn decoy_assisted_shares_budget_with_decoys() {
        let mut a = Attacker::new(AttackConfig {
            kind: AttackKind::DecoyAssisted {
                victim: RowAddr(100),
                decoys: 2,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 8,
            start_interval: 0,
            intervals: 10,
            ramp_hold_intervals: 0,
        });
        let mut out = Vec::new();
        while a.next_interval(&mut out) {}
        // 4 rows round-robin over 80 shots: 20 each.
        for row in [99u32, 101, 10_100, 10_102] {
            let n = out.iter().filter(|e| e.row == RowAddr(row)).count();
            assert_eq!(n, 20, "row {row}");
        }
        // The hammer pair gets only half the budget — the decoy cost.
        let pair: usize = out
            .iter()
            .filter(|e| e.row == RowAddr(99) || e.row == RowAddr(101))
            .count();
        assert_eq!(pair, 40);
    }
}
