//! A small deterministic Zipf sampler.
//!
//! Row popularity in real memory traces is heavily skewed: a few hot
//! rows (stack, hot heap pages, code) absorb most activations.  The
//! workload generator models this with a Zipf distribution over the hot
//! set; the skew is what makes TiVaPRoMi's 32-entry history table
//! effective, so it is a first-class calibration knob.

use rand::rngs::StdRng;
use rand::RngExt;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ (k + 1)^-s`.
///
/// ```
/// use mem_trace::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut counts = vec![0u32; 100];
/// for _ in 0..10_000 {
///     counts[zipf.sample(&mut rng)] += 1;
/// }
/// assert!(counts[0] > counts[50]); // rank 0 is the hottest
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[k] = P(rank ≤ k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first rank whose cdf ≥ u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (single rank).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of the `k` hottest ranks — used to calibrate the
    /// workload's top-k coverage against the paper's trace statistics.
    pub fn top_k_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.cdf.len()) - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let z = Zipf::new(64, 1.2);
        for w in z.cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(z.len(), 64);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        assert!((z.top_k_mass(1) - 0.25).abs() < 1e-12);
        assert!((z.top_k_mass(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn samples_follow_skew() {
        let z = Zipf::new(50, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Empirical top-8 share should be near the analytic mass.
        let top8: u32 = counts[..8].iter().sum();
        let empirical = f64::from(top8) / 50_000.0;
        assert!((empirical - z.top_k_mass(8)).abs() < 0.02);
    }

    #[test]
    fn sample_never_exceeds_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
