//! Trace (de)serialization: one JSON object per interval, newline
//! delimited — easy to inspect, diff and replay.

use crate::event::{ReplayTrace, TraceEvent, TraceSource};
use std::io::{self, BufRead, Write};

/// Writes a trace source as JSON lines (one array of events per
/// interval) to `writer`.
///
/// A `&mut` reference can be passed for `writer` (see
/// [`std::io::Write`]'s blanket impl for `&mut W`).
///
/// # Errors
///
/// Returns any I/O or serialization error.
///
/// ```
/// use mem_trace::{read_jsonl, write_jsonl, ReplayTrace, TraceEvent};
/// use dram_sim::{BankId, RowAddr};
///
/// # fn main() -> std::io::Result<()> {
/// let trace = ReplayTrace::new(vec![vec![TraceEvent::benign(BankId(0), RowAddr(1))], vec![]]);
/// let mut buffer = Vec::new();
/// write_jsonl(trace, &mut buffer)?;
/// let replay = read_jsonl(buffer.as_slice())?;
/// let stats = mem_trace::TraceStats::collect(replay);
/// assert_eq!(stats.total_activations, 1);
/// assert_eq!(stats.intervals, 2);
/// # Ok(())
/// # }
/// ```
pub fn write_jsonl<S, W>(mut source: S, mut writer: W) -> io::Result<()>
where
    S: TraceSource,
    W: Write,
{
    let mut events: Vec<TraceEvent> = Vec::new();
    loop {
        events.clear();
        if !source.next_interval(&mut events) {
            return Ok(());
        }
        serde_json::to_writer(&mut writer, &events)?;
        writer.write_all(b"\n")?;
    }
}

/// Reads a JSON-lines trace back into a [`ReplayTrace`].
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns any I/O error, or an [`io::ErrorKind::InvalidData`] error if a
/// line is not a valid event array.
pub fn read_jsonl<R: BufRead>(reader: R) -> io::Result<ReplayTrace> {
    let mut intervals = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let events: Vec<TraceEvent> = serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        intervals.push(events);
    }
    Ok(ReplayTrace::new(intervals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{BankId, RowAddr};

    #[test]
    fn roundtrip_preserves_events_and_interval_boundaries() {
        let intervals = vec![
            vec![
                TraceEvent::benign(BankId(0), RowAddr(1)),
                TraceEvent::attack(BankId(1), RowAddr(9)),
            ],
            vec![],
            vec![TraceEvent::benign(BankId(0), RowAddr(2))],
        ];
        let mut buffer = Vec::new();
        write_jsonl(ReplayTrace::new(intervals.clone()), &mut buffer).unwrap();

        let mut replay = read_jsonl(buffer.as_slice()).unwrap();
        let mut out = Vec::new();
        let mut got = Vec::new();
        while {
            out.clear();
            replay.next_interval(&mut out)
        } {
            got.push(out.clone());
        }
        assert_eq!(got, intervals);
    }

    #[test]
    fn invalid_line_is_rejected() {
        let err = read_jsonl("not json\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let replay = read_jsonl("\n\n[]\n".as_bytes()).unwrap();
        assert_eq!(replay.intervals_hint(), Some(1));
    }
}
