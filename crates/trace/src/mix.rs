//! Merging benign and attacker streams under the bank bandwidth budget.

use crate::event::{TraceEvent, TraceSource};
use dram_sim::BankId;

/// Interleaves any number of trace sources, enforcing the per-bank
/// per-interval activation cap of the DRAM timing.
///
/// Events from the sources are interleaved round-robin (modelling the
/// memory controller arbitrating between cores), and any events beyond a
/// bank's cap are dropped — on real hardware that traffic would simply
/// slip into later intervals; dropping keeps interval alignment while
/// preserving rates, which is what the mitigations observe.
///
/// The mix ends when *all* sources are exhausted.
///
/// ```
/// use mem_trace::{MixedTrace, ReplayTrace, TraceEvent, TraceSource};
/// use dram_sim::{BankId, RowAddr};
///
/// let a = ReplayTrace::new(vec![vec![TraceEvent::benign(BankId(0), RowAddr(1))]]);
/// let b = ReplayTrace::new(vec![vec![TraceEvent::attack(BankId(0), RowAddr(2))]]);
/// let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 165);
/// let mut out = Vec::new();
/// assert!(mix.next_interval(&mut out));
/// assert_eq!(out.len(), 2);
/// assert!(!mix.next_interval(&mut out));
/// ```
pub struct MixedTrace {
    sources: Vec<Box<dyn TraceSource + Send>>,
    max_acts_per_bank_interval: u32,
    buffers: Vec<Vec<TraceEvent>>,
    /// Events dropped so far by the bandwidth cap (diagnostic).
    dropped: u64,
}

impl std::fmt::Debug for MixedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedTrace")
            .field("sources", &self.sources.len())
            .field(
                "max_acts_per_bank_interval",
                &self.max_acts_per_bank_interval,
            )
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl MixedTrace {
    /// Combines `sources` under a per-bank-per-interval cap.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or the cap is zero.
    pub fn new(sources: Vec<Box<dyn TraceSource + Send>>, max_acts_per_bank_interval: u32) -> Self {
        assert!(!sources.is_empty(), "mix needs at least one source");
        assert!(max_acts_per_bank_interval > 0, "cap must be nonzero");
        let buffers = sources.iter().map(|_| Vec::new()).collect();
        MixedTrace {
            sources,
            max_acts_per_bank_interval,
            buffers,
            dropped: 0,
        }
    }

    /// Events dropped by the bandwidth cap so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSource for MixedTrace {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        let mut any = false;
        for (source, buffer) in self.sources.iter_mut().zip(&mut self.buffers) {
            buffer.clear();
            if source.next_interval(buffer) {
                any = true;
            }
        }
        if !any {
            return false;
        }

        // Round-robin interleave, respecting each bank's cap.
        let mut per_bank: std::collections::HashMap<BankId, u32> = std::collections::HashMap::new();
        let mut cursors = vec![0usize; self.buffers.len()];
        loop {
            let mut progressed = false;
            for (buffer, cursor) in self.buffers.iter().zip(&mut cursors) {
                if *cursor < buffer.len() {
                    let event = buffer[*cursor];
                    *cursor += 1;
                    progressed = true;
                    let used = per_bank.entry(event.bank).or_insert(0);
                    if *used < self.max_acts_per_bank_interval {
                        *used += 1;
                        out.push(event);
                    } else {
                        self.dropped += 1;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        self.sources
            .iter()
            .map(|s| s.intervals_hint())
            .collect::<Option<Vec<_>>>()
            .map(|hints| hints.into_iter().max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplayTrace;
    use dram_sim::RowAddr;

    fn burst(bank: u32, row: u32, n: usize, aggressor: bool) -> Vec<TraceEvent> {
        (0..n)
            .map(|_| TraceEvent {
                bank: BankId(bank),
                row: RowAddr(row),
                aggressor,
            })
            .collect()
    }

    #[test]
    fn cap_drops_excess_per_bank() {
        let a = ReplayTrace::new(vec![burst(0, 1, 100, false)]);
        let b = ReplayTrace::new(vec![burst(0, 2, 100, true)]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 150);
        let mut out = Vec::new();
        mix.next_interval(&mut out);
        assert_eq!(out.len(), 150);
        assert_eq!(mix.dropped(), 50);
        // Round-robin interleave: both sources are represented fairly.
        let attacks = out.iter().filter(|e| e.aggressor).count();
        assert_eq!(attacks, 75);
    }

    #[test]
    fn caps_are_per_bank() {
        let a = ReplayTrace::new(vec![burst(0, 1, 10, false)]);
        let b = ReplayTrace::new(vec![burst(1, 2, 10, false)]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 10);
        let mut out = Vec::new();
        mix.next_interval(&mut out);
        assert_eq!(out.len(), 20);
        assert_eq!(mix.dropped(), 0);
    }

    #[test]
    fn runs_until_longest_source_ends() {
        let a = ReplayTrace::new(vec![burst(0, 1, 1, false)]);
        let b = ReplayTrace::new(vec![
            burst(0, 2, 1, false),
            burst(0, 2, 1, false),
            burst(0, 2, 1, false),
        ]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 165);
        assert_eq!(mix.intervals_hint(), Some(3));
        let mut out = Vec::new();
        let mut n = 0;
        while mix.next_interval(&mut out) {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_mix_rejected() {
        let _ = MixedTrace::new(vec![], 10);
    }
}
