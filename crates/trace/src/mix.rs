//! Merging benign and attacker streams under the bank bandwidth budget.

use crate::batch::EventBatch;
use crate::event::{TraceEvent, TraceSource, TraceSplit};
use dram_sim::BankId;
use std::collections::BTreeMap;

/// Interleaves any number of trace sources, enforcing the per-bank
/// per-interval activation cap of the DRAM timing.
///
/// Within each bank, events from the sources are interleaved round-robin
/// (modelling the memory controller arbitrating between cores), and any
/// events beyond the bank's cap are dropped — on real hardware that
/// traffic would simply slip into later intervals; dropping keeps
/// interval alignment while preserving rates, which is what the
/// mitigations observe.  Arbitration and the cap are applied *per bank*
/// (banks emitted in ascending id order), so a bank's merged sub-stream —
/// including which of its events the cap drops — depends only on that
/// bank's traffic.  That keeps the mix shardable: see [`TraceSplit`].
///
/// The mix ends when *all* sources are exhausted.
///
/// ```
/// use mem_trace::{MixedTrace, ReplayTrace, TraceEvent, TraceSource};
/// use dram_sim::{BankId, RowAddr};
///
/// let a = ReplayTrace::new(vec![vec![TraceEvent::benign(BankId(0), RowAddr(1))]]);
/// let b = ReplayTrace::new(vec![vec![TraceEvent::attack(BankId(0), RowAddr(2))]]);
/// let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 165);
/// let mut out = Vec::new();
/// assert!(mix.next_interval(&mut out));
/// assert_eq!(out.len(), 2);
/// assert!(!mix.next_interval(&mut out));
/// ```
pub struct MixedTrace {
    sources: Vec<Box<dyn TraceSplit>>,
    max_acts_per_bank_interval: u32,
    buffers: Vec<Vec<TraceEvent>>,
    /// Persistent per-bank, per-source merge lanes reused by the
    /// batched delivery path ([`MixedTrace::next_batch`]), indexed by
    /// bank id.  `next_interval` deliberately keeps its original
    /// allocate-per-interval merge: it is the pre-batch reference the
    /// throughput bench compares against.
    lanes: Vec<Vec<Vec<TraceEvent>>>,
    /// Events dropped so far by the bandwidth cap (diagnostic).
    dropped: u64,
}

impl std::fmt::Debug for MixedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedTrace")
            .field("sources", &self.sources.len())
            .field(
                "max_acts_per_bank_interval",
                &self.max_acts_per_bank_interval,
            )
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl MixedTrace {
    /// Combines `sources` under a per-bank-per-interval cap.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or the cap is zero.
    pub fn new(sources: Vec<Box<dyn TraceSplit>>, max_acts_per_bank_interval: u32) -> Self {
        assert!(!sources.is_empty(), "mix needs at least one source");
        assert!(max_acts_per_bank_interval > 0, "cap must be nonzero");
        let buffers = sources.iter().map(|_| Vec::new()).collect();
        MixedTrace {
            sources,
            max_acts_per_bank_interval,
            buffers,
            lanes: Vec::new(),
            dropped: 0,
        }
    }

    /// Events dropped by the bandwidth cap so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merges one interval of all sources directly into `batch` and
    /// closes its boundary — the same bank-major round-robin merge as
    /// [`MixedTrace::next_interval`] (bit-identical event order and cap
    /// drops), but through persistent lane buffers and the batch's SoA
    /// columns, so the steady state allocates nothing.
    fn merge_interval_into(&mut self, batch: &mut EventBatch) -> bool {
        let mut any = false;
        for (source, buffer) in self.sources.iter_mut().zip(&mut self.buffers) {
            buffer.clear();
            if source.next_interval(buffer) {
                any = true;
            }
        }
        if !any {
            return false;
        }

        let source_count = self.buffers.len();
        for bank_lanes in &mut self.lanes {
            for lane in bank_lanes.iter_mut() {
                lane.clear();
            }
        }
        for (index, buffer) in self.buffers.iter().enumerate() {
            for &event in buffer {
                let bank = event.bank.index();
                if bank >= self.lanes.len() {
                    self.lanes
                        .resize_with(bank + 1, || vec![Vec::new(); source_count]);
                }
                self.lanes[bank][index].push(event);
            }
        }
        // Lane indices ascend by bank id, matching the BTreeMap's
        // ascending-key iteration; banks with no traffic this interval
        // contribute nothing.
        for bank_lanes in &self.lanes {
            let mut used = 0u32;
            let mut cursors = [0usize; 8];
            let mut cursors_spill;
            let cursors: &mut [usize] = if source_count <= cursors.len() {
                &mut cursors[..source_count]
            } else {
                cursors_spill = vec![0usize; source_count];
                &mut cursors_spill
            };
            loop {
                let mut progressed = false;
                for (lane, cursor) in bank_lanes.iter().zip(cursors.iter_mut()) {
                    if *cursor < lane.len() {
                        let event = lane[*cursor];
                        *cursor += 1;
                        progressed = true;
                        if used < self.max_acts_per_bank_interval {
                            used += 1;
                            batch.push_event(event.bank, event.row, event.aggressor);
                        } else {
                            self.dropped += 1;
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        batch.end_interval();
        true
    }
}

impl TraceSource for MixedTrace {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        let mut any = false;
        for (source, buffer) in self.sources.iter_mut().zip(&mut self.buffers) {
            buffer.clear();
            if source.next_interval(buffer) {
                any = true;
            }
        }
        if !any {
            return false;
        }

        // Split each source's batch by bank, preserving per-source order.
        let mut lanes: BTreeMap<BankId, Vec<Vec<TraceEvent>>> = BTreeMap::new();
        for (index, buffer) in self.buffers.iter().enumerate() {
            for &event in buffer {
                lanes
                    .entry(event.bank)
                    .or_insert_with(|| vec![Vec::new(); self.buffers.len()])[index]
                    .push(event);
            }
        }
        // Bank-major emission: per bank, round-robin across the sources
        // under the cap.  Nothing outside a bank's own lanes influences
        // what is kept or dropped for it.
        for lanes in lanes.into_values() {
            let mut used = 0u32;
            let mut cursors = vec![0usize; lanes.len()];
            loop {
                let mut progressed = false;
                for (lane, cursor) in lanes.iter().zip(&mut cursors) {
                    if *cursor < lane.len() {
                        let event = lane[*cursor];
                        *cursor += 1;
                        progressed = true;
                        if used < self.max_acts_per_bank_interval {
                            used += 1;
                            out.push(event);
                        } else {
                            self.dropped += 1;
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        self.sources
            .iter()
            .map(|s| s.intervals_hint())
            .collect::<Option<Vec<_>>>()
            .map(|hints| hints.into_iter().max().unwrap_or(0))
    }

    fn max_batch_intervals(&self) -> u64 {
        // The tightest part binds: a feedback-coupled attacker in the
        // mix caps the whole mix at its look-ahead.
        self.sources
            .iter()
            .map(|s| s.max_batch_intervals())
            .min()
            .unwrap_or(u64::MAX)
    }

    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        // Native batched delivery: merge each interval straight into
        // the batch's SoA columns through persistent lane buffers,
        // skipping both the per-interval lane allocations and the
        // AoS staging copy the default shim would pay.
        batch.clear();
        let cap = max_intervals
            .min(self.max_batch_intervals())
            .min(batch.target_events() as u64);
        let mut delivered = 0u64;
        while delivered < cap && !batch.is_full() {
            if !self.merge_interval_into(batch) {
                break;
            }
            delivered += 1;
        }
        delivered > 0
    }
}

impl TraceSplit for MixedTrace {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        Box::new(MixedTrace::new(
            self.sources.iter().map(|s| s.bank_shard(bank)).collect(),
            self.max_acts_per_bank_interval,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplayTrace;
    use dram_sim::RowAddr;

    fn burst(bank: u32, row: u32, n: usize, aggressor: bool) -> Vec<TraceEvent> {
        (0..n)
            .map(|_| TraceEvent {
                bank: BankId(bank),
                row: RowAddr(row),
                aggressor,
            })
            .collect()
    }

    #[test]
    fn cap_drops_excess_per_bank() {
        let a = ReplayTrace::new(vec![burst(0, 1, 100, false)]);
        let b = ReplayTrace::new(vec![burst(0, 2, 100, true)]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 150);
        let mut out = Vec::new();
        mix.next_interval(&mut out);
        assert_eq!(out.len(), 150);
        assert_eq!(mix.dropped(), 50);
        // Round-robin interleave: both sources are represented fairly.
        let attacks = out.iter().filter(|e| e.aggressor).count();
        assert_eq!(attacks, 75);
    }

    #[test]
    fn caps_are_per_bank() {
        let a = ReplayTrace::new(vec![burst(0, 1, 10, false)]);
        let b = ReplayTrace::new(vec![burst(1, 2, 10, false)]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 10);
        let mut out = Vec::new();
        mix.next_interval(&mut out);
        assert_eq!(out.len(), 20);
        assert_eq!(mix.dropped(), 0);
    }

    #[test]
    fn runs_until_longest_source_ends() {
        let a = ReplayTrace::new(vec![burst(0, 1, 1, false)]);
        let b = ReplayTrace::new(vec![
            burst(0, 2, 1, false),
            burst(0, 2, 1, false),
            burst(0, 2, 1, false),
        ]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 165);
        assert_eq!(mix.intervals_hint(), Some(3));
        let mut out = Vec::new();
        let mut n = 0;
        while mix.next_interval(&mut out) {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn banks_emitted_in_ascending_order() {
        let a = ReplayTrace::new(vec![[burst(1, 5, 2, false), burst(0, 1, 2, false)].concat()]);
        let b = ReplayTrace::new(vec![burst(0, 2, 2, true)]);
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], 165);
        let mut out = Vec::new();
        mix.next_interval(&mut out);
        let banks: Vec<u32> = out.iter().map(|e| e.bank.0).collect();
        assert_eq!(banks, vec![0, 0, 0, 0, 1, 1]);
        // Within bank 0 the two sources alternate.
        assert_eq!(
            out[..4].iter().map(|e| e.aggressor).collect::<Vec<_>>(),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn shard_matches_bank_filter_of_parent() {
        let a = ReplayTrace::new(vec![
            [burst(0, 1, 80, false), burst(1, 3, 80, false)].concat(),
            burst(1, 4, 5, false),
        ]);
        let b = ReplayTrace::new(vec![burst(0, 2, 80, true), burst(0, 2, 3, true)]);
        let mix = MixedTrace::new(vec![Box::new(a.clone()), Box::new(b.clone())], 100);
        let mut shard = MixedTrace::new(vec![Box::new(a), Box::new(b)], 100).bank_shard(BankId(0));

        let mut full = MixedTrace::new(
            vec![
                mix.sources[0].bank_shard(BankId(0)),
                mix.sources[1].bank_shard(BankId(0)),
            ],
            100,
        );
        // The shard (recursive per-source shards) equals the bank-0
        // subsequence of the parent, interval by interval, drops included.
        let mut parent = mix;
        let mut parent_out = Vec::new();
        let mut shard_out = Vec::new();
        let mut full_out = Vec::new();
        loop {
            parent_out.clear();
            shard_out.clear();
            full_out.clear();
            let p = parent.next_interval(&mut parent_out);
            let s = shard.next_interval(&mut shard_out);
            let f = full.next_interval(&mut full_out);
            assert_eq!(p, s);
            assert_eq!(p, f);
            if !p {
                break;
            }
            let filtered: Vec<TraceEvent> = parent_out
                .iter()
                .filter(|e| e.bank == BankId(0))
                .copied()
                .collect();
            assert_eq!(filtered, shard_out);
            assert_eq!(filtered, full_out);
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_mix_rejected() {
        let _ = MixedTrace::new(vec![], 10);
    }
}
