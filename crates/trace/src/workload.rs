//! The SPEC-like benign workload generator.
//!
//! Calibration targets (Table I and §IV of the paper):
//!
//! * ≈ 28 activations per bank per refresh interval on average for the
//!   benign mix (so that benign + ramping attacker traffic averages the
//!   paper's ≈ 40 per bank-interval and totals ≈ 175 M activations over
//!   1.56 M intervals on 4 banks);
//! * bursty per-interval counts bounded by the DDR4 maximum of 165;
//! * strong row-popularity skew: caches filter most locality, but
//!   row-buffer-level hot rows (stack, hot heap, code pages) still absorb
//!   the bulk of activations — the generator uses phased working sets
//!   with Zipf-distributed popularity.

use crate::event::{TraceEvent, TraceSource, TraceSplit};
use crate::zipf::Zipf;
use dram_sim::{bank_seed, BankId, Geometry, RowAddr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the benign workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of banks receiving traffic.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Mean activations per bank per refresh interval (Poisson).
    pub mean_acts_per_interval: f64,
    /// Hard per-bank-per-interval cap (DDR4: 165).
    pub max_acts_per_interval: u32,
    /// Size of each phase's hot working set (rows per bank).  The
    /// default of 8 models post-cache residual row activity: caches
    /// absorb most locality, so only a handful of rows per bank sustain
    /// high *activation* rates — which is also what makes the paper's
    /// 32-entry history table sufficient ("the best optimization based
    /// on the simulated memory traces").
    pub hot_rows: usize,
    /// Zipf exponent over the hot set.
    pub zipf_exponent: f64,
    /// Probability that an access goes to the hot set (vs. a uniformly
    /// random cold row).
    pub locality: f64,
    /// Phase length in refresh intervals: the hot set is re-drawn at
    /// every phase boundary, modelling program phases in the SPEC mix.
    pub phase_intervals: u64,
    /// Number of refresh intervals to generate.
    pub intervals: u64,
}

impl WorkloadConfig {
    /// The calibrated paper-like configuration for `geometry`, sized to
    /// run for 16 refresh windows (scale the `intervals` field up for
    /// full-length runs).
    pub fn paper(geometry: &Geometry) -> Self {
        WorkloadConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            mean_acts_per_interval: 28.0,
            max_acts_per_interval: 165,
            hot_rows: 8,
            zipf_exponent: 1.1,
            locality: 0.95,
            phase_intervals: u64::from(geometry.intervals_per_window()) * 2,
            intervals: u64::from(geometry.intervals_per_window()) * 16,
        }
    }

    /// Returns a copy with a different total length.
    pub fn with_intervals(mut self, intervals: u64) -> Self {
        self.intervals = intervals;
        self
    }

    /// Returns a copy with a different mean activation rate.
    pub fn with_mean_rate(mut self, mean: f64) -> Self {
        self.mean_acts_per_interval = mean;
        self
    }

    /// Returns a copy with different locality parameters (ablation).
    pub fn with_locality(mut self, locality: f64, zipf_exponent: f64) -> Self {
        self.locality = locality;
        self.zipf_exponent = zipf_exponent;
        self
    }
}

/// Per-bank generator state: each bank owns its working set *and* its
/// pseudo-random stream (derived from the run seed and the bank id via
/// [`bank_seed`]), so a bank's event stream is a pure function of
/// `(seed, bank, interval)` — independent of which other banks exist.
/// That is what makes the workload bank-shardable.
#[derive(Debug)]
struct BankState {
    id: BankId,
    hot_set: Vec<RowAddr>,
    rng: StdRng,
}

impl BankState {
    fn new(config: &WorkloadConfig, seed: u64, id: BankId) -> Self {
        let mut rng = StdRng::seed_from_u64(bank_seed(seed, id));
        let hot_set = SpecLikeWorkload::draw_hot_set(config, &mut rng);
        BankState { id, hot_set, rng }
    }
}

/// The phased, Zipf-skewed benign workload.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct SpecLikeWorkload {
    config: WorkloadConfig,
    zipf: Zipf,
    banks: Vec<BankState>,
    seed: u64,
    interval: u64,
}

impl SpecLikeWorkload {
    /// Creates the generator with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero banks or rows,
    /// `hot_rows` of zero, or a locality outside `[0, 1]`).
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        Self::validate(&config);
        let banks = (0..config.banks)
            .map(|b| BankState::new(&config, seed, BankId(b)))
            .collect();
        SpecLikeWorkload {
            zipf: Zipf::new(config.hot_rows, config.zipf_exponent),
            config,
            banks,
            seed,
            interval: 0,
        }
    }

    fn validate(config: &WorkloadConfig) {
        assert!(
            config.banks > 0 && config.rows_per_bank > 0,
            "empty geometry"
        );
        assert!(config.hot_rows > 0, "hot set must be nonempty");
        assert!(
            (0.0..=1.0).contains(&config.locality),
            "locality must be a probability"
        );
    }

    fn draw_hot_set(config: &WorkloadConfig, rng: &mut StdRng) -> Vec<RowAddr> {
        // Hot rows are distinct and non-adjacent: they model different
        // hot pages, and two adjacent hot rows would double-disturb the
        // row between them — benign traffic alone must never approach
        // the flip threshold.
        let mut set: Vec<RowAddr> = Vec::with_capacity(config.hot_rows);
        while set.len() < config.hot_rows {
            let candidate = RowAddr(rng.random_range(0..config.rows_per_bank));
            if set.iter().all(|r| r.0.abs_diff(candidate.0) > 1) {
                set.push(candidate);
            }
        }
        set
    }

    /// Draws a Poisson count with the configured mean (Knuth's method —
    /// the mean is small, so this is fast and allocation-free).
    fn poisson(config: &WorkloadConfig, rng: &mut StdRng) -> u32 {
        let l = (-config.mean_acts_per_interval).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k >= config.max_acts_per_interval {
                return config.max_acts_per_interval;
            }
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The current hot set of a bank (diagnostic/calibration).
    ///
    /// # Panics
    ///
    /// Panics if this instance does not generate traffic for `bank`
    /// (out of range, or restricted away by [`TraceSplit::bank_shard`]).
    pub fn hot_set(&self, bank: BankId) -> &[RowAddr] {
        &self
            .banks
            .iter()
            .find(|b| b.id == bank)
            .expect("bank not generated by this instance")
            .hot_set
    }
}

impl TraceSource for SpecLikeWorkload {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        if self.interval >= self.config.intervals {
            return false;
        }
        let redraw = self.interval > 0 && self.interval.is_multiple_of(self.config.phase_intervals);
        // Bank-major emission: each bank's events come from its own
        // stream, in bank order, so the per-bank sub-sequence never
        // depends on the other banks' draws.
        for bank in &mut self.banks {
            // Phase boundary: re-draw this bank's working set.
            if redraw {
                bank.hot_set = Self::draw_hot_set(&self.config, &mut bank.rng);
            }
            let n = Self::poisson(&self.config, &mut bank.rng);
            for _ in 0..n {
                let hot: bool = bank.rng.random_bool(self.config.locality);
                let row = if hot {
                    let rank = self.zipf.sample(&mut bank.rng);
                    bank.hot_set[rank]
                } else {
                    RowAddr(bank.rng.random_range(0..self.config.rows_per_bank))
                };
                out.push(TraceEvent::benign(bank.id, row));
            }
        }
        self.interval += 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.config.intervals)
    }
}

impl TraceSplit for SpecLikeWorkload {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        if self.banks.iter().any(|b| b.id == bank) {
            Box::new(SpecLikeWorkload {
                zipf: Zipf::new(self.config.hot_rows, self.config.zipf_exponent),
                config: self.config,
                banks: vec![BankState::new(&self.config, self.seed, bank)],
                seed: self.seed,
                interval: 0,
            })
        } else {
            Box::new(crate::event::IdleTrace::new(self.config.intervals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig::paper(&Geometry::scaled_down(64)).with_intervals(500)
    }

    #[test]
    fn produces_configured_interval_count() {
        let mut w = SpecLikeWorkload::new(config(), 1);
        let mut out = Vec::new();
        let mut n = 0;
        while w.next_interval(&mut out) {
            n += 1;
        }
        assert_eq!(n, 500);
        assert_eq!(w.intervals_hint(), Some(500));
    }

    #[test]
    fn mean_rate_is_near_target() {
        let cfg = config();
        let mut w = SpecLikeWorkload::new(cfg, 2);
        let mut out = Vec::new();
        while w.next_interval(&mut out) {}
        let per_bank_interval = out.len() as f64 / (500.0 * f64::from(cfg.banks));
        assert!(
            (per_bank_interval - 28.0).abs() < 2.0,
            "mean {per_bank_interval}"
        );
    }

    #[test]
    fn respects_per_interval_cap() {
        let cfg = config().with_mean_rate(150.0);
        let mut w = SpecLikeWorkload::new(cfg, 3);
        let mut out = Vec::new();
        while {
            out.clear();
            w.next_interval(&mut out)
        } {
            assert!(out.len() as u32 <= cfg.max_acts_per_interval * cfg.banks);
        }
    }

    #[test]
    fn all_events_are_benign_and_in_range() {
        let cfg = config();
        let mut w = SpecLikeWorkload::new(cfg, 4);
        let mut out = Vec::new();
        while w.next_interval(&mut out) {}
        for e in &out {
            assert!(!e.aggressor);
            assert!(e.row.0 < cfg.rows_per_bank);
            assert!(e.bank.0 < cfg.banks);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        // The hottest 32 rows must absorb the majority of accesses —
        // this is the property the TiVaPRoMi history table exploits.
        let cfg = config();
        let mut w = SpecLikeWorkload::new(cfg, 5);
        let mut out = Vec::new();
        while w.next_interval(&mut out) {}
        let mut counts = std::collections::HashMap::new();
        let bank0 = out.iter().filter(|e| e.bank == BankId(0));
        let mut total = 0u64;
        for e in bank0 {
            *counts.entry(e.row).or_insert(0u64) += 1;
            total += 1;
        }
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top32: u64 = by_count.iter().take(32).sum();
        let coverage = top32 as f64 / total as f64;
        assert!(coverage > 0.6, "top-32 coverage {coverage}");
    }

    #[test]
    fn phases_change_working_sets() {
        let mut cfg = config();
        cfg.phase_intervals = 50;
        let mut w = SpecLikeWorkload::new(cfg, 6);
        let before = w.hot_set(BankId(0)).to_vec();
        let mut out = Vec::new();
        for _ in 0..60 {
            w.next_interval(&mut out);
        }
        assert_ne!(before, w.hot_set(BankId(0)));
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut w = SpecLikeWorkload::new(config(), seed);
            let mut out = Vec::new();
            while w.next_interval(&mut out) {}
            out
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
