//! Property-based tests for the trace substrate.

use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::{
    read_jsonl, write_jsonl, AttackConfig, AttackKind, Attacker, MixedTrace, ReplayTrace,
    SpecLikeWorkload, TraceEvent, TraceSource, TraceStats, WorkloadConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The workload generator respects geometry bounds and the
    /// per-interval cap for arbitrary (small) configurations.
    #[test]
    fn workload_respects_bounds(
        mean in 1.0f64..40.0,
        hot_rows in 1usize..16,
        locality in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let geometry = Geometry::scaled_down(256);
        let mut config = WorkloadConfig::paper(&geometry).with_intervals(64);
        config.mean_acts_per_interval = mean;
        config.hot_rows = hot_rows;
        config.locality = locality;
        let mut workload = SpecLikeWorkload::new(config, seed);
        let mut out = Vec::new();
        while {
            out.clear();
            workload.next_interval(&mut out)
        } {
            prop_assert!(out.len() as u32 <= config.max_acts_per_interval * config.banks);
            for e in &out {
                prop_assert!(e.row.0 < geometry.rows_per_bank());
                prop_assert!(!e.aggressor);
            }
        }
    }

    /// The attacker emits exactly its budget every active interval, all
    /// labelled as aggressor accesses.
    #[test]
    fn attacker_budget_is_exact(
        budget in 1u32..40,
        start in 0u64..8,
        total in 8u64..32,
        double_sided in any::<bool>(),
    ) {
        let kind = if double_sided {
            AttackKind::DoubleSided { victim: RowAddr(100) }
        } else {
            AttackKind::SingleSided { aggressor: RowAddr(100) }
        };
        let mut attacker = Attacker::new(AttackConfig {
            kind,
            target_banks: vec![BankId(0)],
            acts_per_interval: budget,
            start_interval: start,
            intervals: total,
            ramp_hold_intervals: 0,
        });
        let mut out = Vec::new();
        let mut interval = 0u64;
        while {
            out.clear();
            attacker.next_interval(&mut out)
        } {
            let expected = if interval >= start { budget as usize } else { 0 };
            prop_assert_eq!(out.len(), expected, "interval {}", interval);
            prop_assert!(out.iter().all(|e| e.aggressor));
            interval += 1;
        }
        prop_assert_eq!(interval, total);
    }

    /// The ramp's aggressor count is monotone non-decreasing and spans
    /// 1..=max.
    #[test]
    fn ramp_is_monotone(hold in 1u64..64, max in 2u32..20) {
        let attacker = Attacker::new(AttackConfig {
            kind: AttackKind::MultiAggressorRamp {
                base_row: RowAddr(1000),
                max_aggressors: max,
            },
            target_banks: vec![BankId(0)],
            acts_per_interval: 10,
            start_interval: 0,
            intervals: hold * u64::from(max) + 10,
            ramp_hold_intervals: hold,
        });
        let mut previous = 0usize;
        for interval in 0..attacker.config().intervals {
            let k = attacker.aggressors_at(interval).len();
            prop_assert!(k >= previous);
            prop_assert!(k >= 1 && k <= max as usize);
            previous = k;
        }
        prop_assert_eq!(previous, max as usize);
    }

    /// The mixer never exceeds the per-bank cap, and every input event is
    /// either delivered or counted as dropped.
    #[test]
    fn mixer_conserves_events(
        a_events in proptest::collection::vec((0u32..2, 0u32..100), 1..8),
        b_events in proptest::collection::vec((0u32..2, 0u32..100), 1..8),
        cap in 1u32..50,
    ) {
        let to_intervals = |spec: &[(u32, u32)], aggressor: bool| -> Vec<Vec<TraceEvent>> {
            spec.iter()
                .map(|&(bank, n)| {
                    (0..n)
                        .map(|i| TraceEvent {
                            bank: BankId(bank),
                            row: RowAddr(i),
                            aggressor,
                        })
                        .collect()
                })
                .collect()
        };
        let total_in: u64 = a_events.iter().map(|&(_, n)| u64::from(n)).sum::<u64>()
            + b_events.iter().map(|&(_, n)| u64::from(n)).sum::<u64>();
        let a = ReplayTrace::new(to_intervals(&a_events, false));
        let b = ReplayTrace::new(to_intervals(&b_events, true));
        let mut mix = MixedTrace::new(vec![Box::new(a), Box::new(b)], cap);
        let mut out = Vec::new();
        let mut delivered = 0u64;
        loop {
            out.clear();
            if !mix.next_interval(&mut out) {
                break;
            }
            let mut per_bank = std::collections::HashMap::new();
            for e in &out {
                *per_bank.entry(e.bank).or_insert(0u32) += 1;
            }
            for (&bank, &n) in &per_bank {
                prop_assert!(n <= cap, "bank {bank} got {n} > cap {cap}");
            }
            delivered += out.len() as u64;
        }
        prop_assert_eq!(delivered + mix.dropped(), total_in);
    }

    /// JSON-lines serialization round-trips arbitrary traces.
    #[test]
    fn jsonl_roundtrip(
        intervals in proptest::collection::vec(
            proptest::collection::vec((0u32..4, 0u32..65_536, any::<bool>()), 0..10),
            0..10,
        ),
    ) {
        let source: Vec<Vec<TraceEvent>> = intervals
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|&(bank, row, aggressor)| TraceEvent {
                        bank: BankId(bank),
                        row: RowAddr(row),
                        aggressor,
                    })
                    .collect()
            })
            .collect();
        let mut buffer = Vec::new();
        write_jsonl(ReplayTrace::new(source.clone()), &mut buffer).unwrap();
        let mut replay = read_jsonl(buffer.as_slice()).unwrap();
        let mut out = Vec::new();
        let mut got = Vec::new();
        while {
            out.clear();
            replay.next_interval(&mut out)
        } {
            got.push(out.clone());
        }
        prop_assert_eq!(got, source);
    }

    /// Statistics are internally consistent: aggregate counters match
    /// the per-row map.
    #[test]
    fn stats_are_consistent(
        intervals in proptest::collection::vec(
            proptest::collection::vec((0u32..3, 0u32..50, any::<bool>()), 0..20),
            1..10,
        ),
    ) {
        let source: Vec<Vec<TraceEvent>> = intervals
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|&(bank, row, aggressor)| TraceEvent {
                        bank: BankId(bank),
                        row: RowAddr(row),
                        aggressor,
                    })
                    .collect()
            })
            .collect();
        let stats = TraceStats::collect(ReplayTrace::new(source));
        let from_map: u64 = stats.row_counts.values().sum();
        prop_assert_eq!(from_map, stats.total_activations);
        prop_assert!(stats.aggressor_activations <= stats.total_activations);
        prop_assert!(stats.top_k_coverage(1_000_000) <= 1.0 + 1e-12);
    }
}
