//! Property tests pinning the paper's ramping attacker schedule.
//!
//! The paper's attacker ramps 1 → `max_aggressors` over the attack
//! duration.  Two properties must hold for *arbitrary* durations and
//! hold lengths — not just the full-scale runs the schedule was tuned
//! on:
//!
//! 1. the final refresh interval of the attack activates exactly
//!    `max_aggressors` rows (the stepped schedule must compress to a
//!    linear ramp when the duration cannot fit the full staircase —
//!    the off-by-one rounding this file guards against);
//! 2. every event the attacker emits carries the ground-truth
//!    `aggressor = true` label the metrics layer depends on.

use dram_sim::{BankId, RowAddr};
use mem_trace::{AttackConfig, AttackKind, Attacker, TraceSource};
use proptest::prelude::*;

fn ramp_config(
    max_aggressors: u32,
    start_interval: u64,
    intervals: u64,
    ramp_hold_intervals: u64,
    acts_per_interval: u32,
) -> AttackConfig {
    AttackConfig {
        kind: AttackKind::MultiAggressorRamp {
            base_row: RowAddr(10_000),
            max_aggressors,
        },
        target_banks: vec![BankId(0)],
        acts_per_interval,
        start_interval,
        intervals,
        ramp_hold_intervals,
    }
}

proptest! {
    /// The ramp reaches `max_aggressors` in the final interval for any
    /// duration, start offset, and hold length.
    #[test]
    fn ramp_reaches_max_in_final_interval(
        max_aggressors in 1u32..64,
        duration in 1u64..4000,
        start in 0u64..200,
        hold in 0u64..600,
    ) {
        let intervals = start + duration;
        let a = Attacker::new(ramp_config(max_aggressors, start, intervals, hold, 4));
        let last = a.aggressors_at(intervals - 1);
        prop_assert_eq!(
            last.len(),
            max_aggressors as usize,
            "duration {} hold {} start {}", duration, hold, start
        );
    }

    /// The aggressor count never decreases over the attack and starts
    /// at 1 whenever the duration can fit every count at least once
    /// (shorter runs start higher so the final interval still reaches
    /// the maximum).
    #[test]
    fn ramp_is_monotone_from_one(
        max_aggressors in 1u32..32,
        duration in 2u64..1500,
        hold in 0u64..400,
    ) {
        let a = Attacker::new(ramp_config(max_aggressors, 0, duration, hold, 4));
        if duration >= u64::from(max_aggressors) {
            prop_assert_eq!(a.aggressors_at(0).len(), 1);
        }
        let mut previous = 0usize;
        for interval in 0..duration {
            let k = a.aggressors_at(interval).len();
            prop_assert!(k >= previous, "count dropped {} -> {} at {}", previous, k, interval);
            prop_assert!(k <= max_aggressors as usize);
            previous = k;
        }
    }

    /// Every emitted event is labelled `aggressor = true`, targets a
    /// configured bank, and the per-interval budget is respected.
    #[test]
    fn every_emitted_event_is_labelled_aggressor(
        max_aggressors in 1u32..24,
        duration in 1u64..300,
        hold in 0u64..100,
        acts in 1u32..32,
    ) {
        let mut a = Attacker::new(ramp_config(max_aggressors, 0, duration, hold, acts));
        let mut out = Vec::new();
        let mut intervals = 0u64;
        while a.next_interval(&mut out) {
            intervals += 1;
        }
        prop_assert_eq!(intervals, duration);
        prop_assert_eq!(out.len() as u64, duration * u64::from(acts));
        for event in &out {
            prop_assert!(event.aggressor, "unlabelled aggressor event {:?}", event);
            prop_assert_eq!(event.bank, BankId(0));
        }
    }

    /// The adaptive variants keep the labelling invariant too: a
    /// phase-shifted ramp and a refresh-synchronized burst emit only
    /// `aggressor = true` events, and the burst stays within its duty
    /// cycle's budget.
    #[test]
    fn adaptive_variants_keep_aggressor_labels(
        max_aggressors in 1u32..16,
        duration in 1u64..300,
        shift in 0u64..128,
        duty in 1u64..64,
        period in 1u64..64,
    ) {
        let shifted = AttackConfig {
            kind: AttackKind::PhaseShifted {
                base_row: RowAddr(10_000),
                max_aggressors,
                shift_intervals: shift,
            },
            ..ramp_config(max_aggressors, 0, duration, 0, 4)
        };
        let mut out = Vec::new();
        let mut a = Attacker::new(shifted);
        while a.next_interval(&mut out) {}
        prop_assert!(out.iter().all(|e| e.aggressor));
        prop_assert_eq!(out.len() as u64, duration * 4);

        let burst = AttackConfig {
            kind: AttackKind::RefreshSyncBurst {
                base_row: RowAddr(10_000),
                pairs: max_aggressors,
                duty_intervals: duty,
                period_intervals: period,
                phase: 0,
            },
            ..ramp_config(max_aggressors, 0, duration, 0, 4)
        };
        out.clear();
        let mut a = Attacker::new(burst);
        while a.next_interval(&mut out) {}
        prop_assert!(out.iter().all(|e| e.aggressor));
        // Exactly duty-many active intervals per period emit events.
        let active_per_period = duty.min(period);
        let full_periods = duration / period;
        let tail = (duration % period).min(duty);
        prop_assert_eq!(
            out.len() as u64,
            (full_periods * active_per_period + tail) * 4
        );
    }
}
