//! Property tests for the `TraceSplit` contract: per-bank sub-streams
//! partition the interleaved stream.
//!
//! For every shardable source, `bank_shard(b)` must reproduce exactly
//! the parent's bank-`b` events, in the parent's per-bank order, over
//! exactly the parent's interval count — so the union of the shards is
//! a partition of the full trace (no event lost, duplicated, or moved
//! across intervals), independent of which other banks exist.

use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::{
    AttackConfig, AttackKind, Attacker, MixedTrace, ReplayTrace, SpecLikeWorkload, TraceEvent,
    TraceSource, TraceSplit, WorkloadConfig,
};
use proptest::prelude::*;

/// Drains a source into per-interval batches.
fn drain<S: TraceSource>(mut source: S) -> Vec<Vec<TraceEvent>> {
    let mut intervals = Vec::new();
    let mut out = Vec::new();
    while source.next_interval(&mut out) {
        intervals.push(out.clone());
        out.clear();
    }
    intervals
}

/// Asserts the partition property for a source builder: each bank's
/// shard equals the parent's bank filter, interval by interval, and the
/// shards jointly cover every parent event.
fn assert_partition(make: &dyn Fn() -> Box<dyn TraceSplit>, banks: u32) {
    let parent = drain(make());
    let mut covered = 0usize;
    for bank in (0..banks).map(BankId) {
        let shard = drain(make().bank_shard(bank));
        assert_eq!(
            shard.len(),
            parent.len(),
            "bank {bank:?} shard ticked {} intervals, parent {}",
            shard.len(),
            parent.len()
        );
        for (interval, (shard_batch, parent_batch)) in shard.iter().zip(&parent).enumerate() {
            let filtered: Vec<TraceEvent> = parent_batch
                .iter()
                .filter(|e| e.bank == bank)
                .copied()
                .collect();
            assert_eq!(
                shard_batch, &filtered,
                "bank {bank:?} shard diverges at interval {interval}"
            );
            covered += shard_batch.len();
        }
    }
    let total: usize = parent.iter().map(Vec::len).sum();
    assert_eq!(covered, total, "shards must cover every parent event");
    assert!(
        parent
            .iter()
            .flatten()
            .all(|e| e.bank.index() < banks as usize),
        "parent emitted an out-of-range bank"
    );
}

fn workload(banks: u32, intervals: u64, seed: u64) -> SpecLikeWorkload {
    let geometry = Geometry::scaled_down(64).with_banks(banks);
    SpecLikeWorkload::new(
        WorkloadConfig::paper(&geometry).with_intervals(intervals),
        seed,
    )
}

fn attacker(kind_index: usize, banks: u32, intervals: u64) -> Attacker {
    let kind = match kind_index {
        0 => AttackKind::SingleSided {
            aggressor: RowAddr(100),
        },
        1 => AttackKind::DoubleSided {
            victim: RowAddr(200),
        },
        2 => AttackKind::Flooding { row: RowAddr(7) },
        3 => AttackKind::DecoyAssisted {
            victim: RowAddr(300),
            decoys: 12,
        },
        _ => AttackKind::MultiAggressorRamp {
            base_row: RowAddr(500),
            max_aggressors: 6,
        },
    };
    Attacker::new(AttackConfig {
        kind,
        target_banks: (0..banks).map(BankId).collect(),
        acts_per_interval: 24,
        start_interval: 2,
        intervals,
        ramp_hold_intervals: 8,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The benign workload's per-bank sub-streams partition its
    /// interleaved stream for any seed and bank count.
    #[test]
    fn workload_shards_partition_the_stream(
        seed in any::<u64>(),
        banks in 1u32..=8,
    ) {
        assert_partition(&|| Box::new(workload(banks, 24, seed)), banks);
    }

    /// Every attack pattern's shards partition its stream.
    #[test]
    fn attacker_shards_partition_the_stream(
        kind_index in 0usize..5,
        banks in 1u32..=6,
    ) {
        assert_partition(&|| Box::new(attacker(kind_index, banks, 32)), banks);
    }

    /// The mixed trace — workload plus attacker under a shared per-bank
    /// activation cap — shards exactly, including the dropped-event
    /// accounting's effect on what each bank keeps.
    #[test]
    fn mixed_trace_shards_partition_the_stream(
        seed in any::<u64>(),
        banks in 1u32..=6,
        kind_index in 0usize..5,
        cap in 8u32..48,
    ) {
        assert_partition(
            &|| {
                Box::new(MixedTrace::new(
                    vec![
                        Box::new(workload(banks, 24, seed)),
                        Box::new(attacker(kind_index, banks, 24)),
                    ],
                    cap,
                ))
            },
            banks,
        );
    }

    /// Replayed traces shard by plain per-interval bank filtering.
    #[test]
    fn replay_shards_partition_the_stream(
        raw in proptest::collection::vec(
            proptest::collection::vec((0u32..4, 0u32..1024, any::<bool>()), 0..20),
            1..20,
        ),
    ) {
        let intervals: Vec<Vec<TraceEvent>> = raw
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(bank, row, aggressor)| TraceEvent {
                        bank: BankId(bank),
                        row: RowAddr(row),
                        aggressor,
                    })
                    .collect()
            })
            .collect();
        assert_partition(&|| Box::new(ReplayTrace::new(intervals.clone())), 4);
    }
}

#[test]
fn shard_of_untouched_bank_is_idle_but_ticks_every_interval() {
    // Attacker on bank 0 only; bank 3's shard must stay aligned.
    let source = attacker(2, 1, 40);
    let idle = drain(source.bank_shard(BankId(3)));
    assert_eq!(idle.len(), 40);
    assert!(idle.iter().all(Vec::is_empty));
}

#[test]
fn attacker_shards_keep_aggressor_labels() {
    let source = attacker(4, 4, 32);
    for bank in (0..4).map(BankId) {
        let shard = drain(source.bank_shard(bank));
        let events: Vec<&TraceEvent> = shard.iter().flatten().collect();
        assert!(!events.is_empty(), "targeted bank {bank:?} must see attack");
        assert!(events.iter().all(|e| e.aggressor && e.bank == bank));
    }
}

#[test]
fn shards_are_reproducible() {
    // Sharding is a pure function of configuration and bank: two shards
    // of the same fresh source are identical streams.
    let make = || {
        MixedTrace::new(
            vec![
                Box::new(workload(4, 24, 11)) as Box<dyn TraceSplit>,
                Box::new(attacker(4, 4, 24)),
            ],
            32,
        )
    };
    for bank in (0..4).map(BankId) {
        let a = drain(make().bank_shard(bank));
        let b = drain(make().bank_shard(bank));
        assert_eq!(a, b);
    }
}
