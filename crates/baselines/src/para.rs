//! PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
//!
//! The reference static-probability technique: "whenever a row is
//! activated, one of its neighboring rows is probabilistically activated
//! based on p".  Stateless — no tables, no counters — which is why it is
//! the resource-usage baseline of Table III.  Its weakness is the flip
//! side: the probability cannot adapt, so every activation of a benign
//! row carries the full `p = 0.001`, producing the highest class of
//! activation overhead and false positives among the compared schemes.

use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::EventBatch;
use rand::RngExt;
use std::ops::Range;
use tivapromi::{ActionSink, BankRngs, Mitigation, MitigationAction};

/// The PARA mitigation.
///
/// See the [crate example](crate) for usage.
#[derive(Debug)]
pub struct Para {
    probability: f64,
    rows_per_bank: u32,
    rngs: BankRngs,
}

impl Para {
    /// Creates PARA with an explicit trigger probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    pub fn new(probability: f64, rows_per_bank: u32, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        Para {
            probability,
            rows_per_bank,
            rngs: BankRngs::new(seed),
        }
    }

    /// The paper's configuration: `p = 0.001` ("a value of at least
    /// 0.001 is considered as effective").
    pub fn paper(geometry: &Geometry, seed: u64) -> Self {
        Para::new(0.001, geometry.rows_per_bank(), seed)
    }

    /// The configured trigger probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl Mitigation for Para {
    fn name(&self) -> &str {
        "PARA"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let rng = self.rngs.get(bank);
        if rng.random_bool(self.probability) {
            // Pick one of the two neighbors at random (edge rows have
            // only one choice).
            let up = rng.random_bool(0.5);
            let victim = if up && row.0 + 1 < self.rows_per_bank {
                RowAddr(row.0 + 1)
            } else if row.0 > 0 {
                RowAddr(row.0 - 1)
            } else {
                RowAddr(row.0 + 1)
            };
            actions.push(MitigationAction::RefreshRow { bank, row: victim });
        }
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // The probability and bank size never change: hoist them (and
        // the sink tagging) out of the per-event dispatch.  The two RNG
        // draws happen in exactly the scalar order, so batched and
        // scalar runs stay bit-identical.
        let probability = self.probability;
        let rows_per_bank = self.rows_per_bank;
        for i in range {
            let (bank, row) = (batch.bank(i), batch.row(i));
            let rng = self.rngs.get(bank);
            if rng.random_bool(probability) {
                let up = rng.random_bool(0.5);
                let victim = if up && row.0 + 1 < rows_per_bank {
                    RowAddr(row.0 + 1)
                } else if row.0 > 0 {
                    RowAddr(row.0 - 1)
                } else {
                    RowAddr(row.0 + 1)
                };
                sink.push(i as u32, MitigationAction::RefreshRow { bank, row: victim });
            }
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {}

    fn storage_bits_per_bank(&self) -> u64 {
        0 // stateless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_rate_matches_probability() {
        let mut para = Para::new(0.01, 1024, 1);
        let mut actions = Vec::new();
        for _ in 0..100_000 {
            para.on_activate(BankId(0), RowAddr(500), &mut actions);
        }
        let rate = actions.len() as f64 / 100_000.0;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn refreshes_only_adjacent_rows() {
        let mut para = Para::new(0.5, 1024, 2);
        let mut actions = Vec::new();
        for _ in 0..1000 {
            para.on_activate(BankId(0), RowAddr(500), &mut actions);
        }
        assert!(actions.iter().all(|a| {
            let r = a.row().0;
            r == 499 || r == 501
        }));
        // Both sides are chosen.
        assert!(actions.iter().any(|a| a.row().0 == 499));
        assert!(actions.iter().any(|a| a.row().0 == 501));
    }

    #[test]
    fn edge_rows_never_select_outside_bank() {
        let mut para = Para::new(1.0, 8, 3);
        let mut actions = Vec::new();
        for _ in 0..100 {
            para.on_activate(BankId(0), RowAddr(0), &mut actions);
            para.on_activate(BankId(0), RowAddr(7), &mut actions);
        }
        assert!(actions.iter().all(|a| a.row().0 < 8));
    }

    #[test]
    fn stateless_has_zero_storage() {
        let g = Geometry::paper();
        assert_eq!(Para::paper(&g, 1).storage_bits_per_bank(), 0);
        assert!((Para::paper(&g, 1).probability() - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = Para::new(1.5, 8, 1);
    }
}
