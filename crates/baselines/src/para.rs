//! PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
//!
//! The reference static-probability technique: "whenever a row is
//! activated, one of its neighboring rows is probabilistically activated
//! based on p".  Stateless — no tables, no counters — which is why it is
//! the resource-usage baseline of Table III.  Its weakness is the flip
//! side: the probability cannot adapt, so every activation of a benign
//! row carries the full `p = 0.001`, producing the highest class of
//! activation overhead and false positives among the compared schemes.
//!
//! The decision discipline is *one stream word per event*: the word's
//! high bits drive the Bernoulli gate and its low bit picks the
//! neighbor ([`tivapromi::draw`]), so the lane kernel can prefetch a
//! whole run's words in one block refill while the scalar path consumes
//! the identical sequence word by word.

use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::EventBatch;
use rand::RngCore;
use std::ops::Range;
use tivapromi::{draw, ActionSink, BankRngs, Mitigation, MitigationAction};

/// The PARA mitigation.
///
/// See the [crate example](crate) for usage.
#[derive(Debug)]
pub struct Para {
    probability: f64,
    rows_per_bank: u32,
    rngs: BankRngs,
}

/// The neighbor a triggered event refreshes: the word's direction bit
/// picks a side, edge rows fall back to their only neighbor.
#[inline]
fn neighbor_victim(row: RowAddr, word: u64, rows_per_bank: u32) -> RowAddr {
    if draw::direction_up(word) && row.0 + 1 < rows_per_bank {
        RowAddr(row.0 + 1)
    } else if row.0 > 0 {
        RowAddr(row.0 - 1)
    } else {
        RowAddr(row.0 + 1)
    }
}

impl Para {
    /// Creates PARA with an explicit trigger probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    pub fn new(probability: f64, rows_per_bank: u32, seed: u64) -> Self {
        Para::with_banks(probability, rows_per_bank, seed, 0)
    }

    /// [`Para::new`] with `banks` per-bank streams seeded eagerly — the
    /// construction the harness uses so the hot path never grows the
    /// RNG pool.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    pub fn with_banks(probability: f64, rows_per_bank: u32, seed: u64, banks: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        Para {
            probability,
            rows_per_bank,
            rngs: BankRngs::with_banks(seed, banks),
        }
    }

    /// The paper's configuration: `p = 0.001` ("a value of at least
    /// 0.001 is considered as effective").
    pub fn paper(geometry: &Geometry, seed: u64) -> Self {
        Para::with_banks(0.001, geometry.rows_per_bank(), seed, geometry.banks())
    }

    /// The configured trigger probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl Mitigation for Para {
    fn name(&self) -> &str {
        "PARA"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let word = self.rngs.get(bank).next_u64();
        if draw::gate(word, self.probability) {
            let victim = neighbor_victim(row, word, self.rows_per_bank);
            actions.push(MitigationAction::RefreshRow { bank, row: victim });
        }
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: per bank run, one stream refill covers the whole
        // run (one word per event), the gate is a single integer compare
        // against the hoisted threshold (exactly the float gate — see
        // `draw::threshold`), and the row column is read directly.
        // Word k decides event k of the run — the exact stream positions
        // the scalar path consumes — so batched ≡ scalar bit for bit.
        let threshold = draw::threshold(self.probability);
        let rows_per_bank = self.rows_per_bank;
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let words = self.rngs.draw_block(bank, run.len());
            for (&word, i) in words.iter().zip(run) {
                if draw::gate_at(word, threshold) {
                    let victim = neighbor_victim(rows[i], word, rows_per_bank);
                    // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
                    sink.push(i as u32, MitigationAction::RefreshRow { bank, row: victim });
                }
            }
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {}

    fn storage_bits_per_bank(&self) -> u64 {
        0 // stateless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_rate_matches_probability() {
        let mut para = Para::new(0.01, 1024, 1);
        let mut actions = Vec::new();
        for _ in 0..100_000 {
            para.on_activate(BankId(0), RowAddr(500), &mut actions);
        }
        let rate = actions.len() as f64 / 100_000.0;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn refreshes_only_adjacent_rows() {
        let mut para = Para::new(0.5, 1024, 2);
        let mut actions = Vec::new();
        for _ in 0..1000 {
            para.on_activate(BankId(0), RowAddr(500), &mut actions);
        }
        assert!(actions.iter().all(|a| {
            let r = a.row().0;
            r == 499 || r == 501
        }));
        // Both sides are chosen.
        assert!(actions.iter().any(|a| a.row().0 == 499));
        assert!(actions.iter().any(|a| a.row().0 == 501));
    }

    #[test]
    fn edge_rows_never_select_outside_bank() {
        let mut para = Para::new(1.0, 8, 3);
        let mut actions = Vec::new();
        for _ in 0..100 {
            para.on_activate(BankId(0), RowAddr(0), &mut actions);
            para.on_activate(BankId(0), RowAddr(7), &mut actions);
        }
        assert!(actions.iter().all(|a| a.row().0 < 8));
    }

    #[test]
    fn stateless_has_zero_storage() {
        let g = Geometry::paper();
        assert_eq!(Para::paper(&g, 1).storage_bits_per_bank(), 0);
        assert!((Para::paper(&g, 1).probability() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        // Mixed-bank traffic, including single-event runs.
        let mut events = Vec::new();
        for i in 0..512u32 {
            events.push(TraceEvent::benign(BankId(i % 3), RowAddr(100 + i % 7)));
        }
        let mut batch = EventBatch::new();
        batch.push_interval(&events);

        let mut kernel = Para::with_banks(0.5, 1024, 9, 3);
        let mut sink = ActionSink::new();
        kernel.on_batch(&batch, batch.segment(0), &mut sink);

        let mut scalar = Para::with_banks(0.5, 1024, 9, 3);
        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..u32::try_from(events.len()).expect("fits") {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(!drained.is_empty());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = Para::new(1.5, 8, 1);
    }
}
