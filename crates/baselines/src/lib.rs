//! # rh-baselines — state-of-the-art row-hammer mitigation baselines
//!
//! The five comparison techniques evaluated against TiVaPRoMi in the
//! paper (§II, §IV), re-implemented from their original publications and
//! driven through the same [`Mitigation`] trait:
//!
//! | Technique | Source | Class | Extra-refresh style |
//! |---|---|---|---|
//! | [`Para`] | Kim et al., ISCA 2014 | static probabilistic | one random neighbor |
//! | [`ProHit`] | Son et al., DAC 2017 | probabilistic tables | hot-table top, once per interval |
//! | [`MrLoc`] | You & Yang, DAC 2019 | locality-weighted probabilistic | queued victim |
//! | [`TwiCe`] | Lee et al., ISCA 2019 | pruned tabled counters | `act_n` both neighbors |
//! | [`Cra`] | Kim et al., CAL 2015 | counter per row | `act_n` both neighbors |
//! | [`CounterTree`] | Seyedzadeh et al., ISCA 2018 | adaptive tree of counters | `act_n` both neighbors |
//!
//! `CounterTree` (CAT) is included beyond the paper's Fig. 4 set as the
//! tree-based approach discussed in §II, and [`Graphene`] (Park et al.,
//! MICRO 2020) as the contemporaneous Misra–Gries tracker.
//!
//! ## Example
//!
//! ```
//! use rh_baselines::Para;
//! use tivapromi::Mitigation;
//! use dram_sim::{BankId, Geometry, RowAddr};
//!
//! let mut para = Para::paper(&Geometry::paper(), 7);
//! let mut actions = Vec::new();
//! for _ in 0..100_000 {
//!     para.on_activate(BankId(0), RowAddr(500), &mut actions);
//! }
//! // p = 0.001 → ≈ 100 triggers over 100 K activations.
//! assert!(actions.len() > 50 && actions.len() < 200);
//! ```

pub mod cat;
pub mod cra;
pub mod dispatch;
pub mod graphene;
pub mod mrloc;
pub mod para;
pub mod prohit;
pub mod twice;

pub use cat::CounterTree;
pub use cra::Cra;
pub use dispatch::AnyMitigation;
pub use graphene::Graphene;
pub use mrloc::MrLoc;
pub use para::Para;
pub use prohit::ProHit;
pub use twice::TwiCe;

use dram_sim::Geometry;
use tivapromi::Mitigation;

/// Builds the five baselines of Fig. 4 / Table III with their paper
/// configurations, in the paper's ordering.
pub fn paper_baselines(geometry: &Geometry, seed: u64) -> Vec<Box<dyn Mitigation>> {
    vec![
        Box::new(ProHit::paper(geometry, seed ^ 0x1)),
        Box::new(MrLoc::paper(geometry, seed ^ 0x2)),
        Box::new(Para::paper(geometry, seed ^ 0x3)),
        Box::new(TwiCe::paper(geometry)),
        Box::new(Cra::paper(geometry)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baselines_have_expected_names() {
        let g = Geometry::scaled_down(64);
        let names: Vec<String> = paper_baselines(&g, 1)
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(names, vec!["ProHit", "MRLoc", "PARA", "TWiCe", "CRA"]);
    }

    #[test]
    fn storage_ordering_matches_figure_4() {
        // PARA is stateless; ProHit and MRLoc are small tables; TWiCe is
        // kilobytes; CRA is the largest (a counter per row).
        let g = Geometry::paper();
        let para = Para::paper(&g, 1).storage_bytes_per_bank();
        let prohit = ProHit::paper(&g, 1).storage_bytes_per_bank();
        let mrloc = MrLoc::paper(&g, 1).storage_bytes_per_bank();
        let twice = TwiCe::paper(&g).storage_bytes_per_bank();
        let cra = Cra::paper(&g).storage_bytes_per_bank();
        assert_eq!(para, 0.0);
        assert!(prohit > 0.0 && prohit < 100.0);
        assert!(mrloc > prohit && mrloc < 1000.0);
        assert!(twice > 1000.0 && twice < 10_000.0);
        assert!(cra > 100_000.0);
    }
}
