//! TWiCe (Lee et al., ISCA 2019 — "TWiCe: Preventing Row-hammering by
//! Exploiting Time Window Counters").
//!
//! TWiCe is the state of the art of tabled counters in the paper's
//! comparison.  Its key insight: a row can only receive a bounded number
//! of activations per refresh interval (165 on DDR4), so a row whose
//! per-interval average falls below a *pruning threshold* can never reach
//! the row-hammer threshold before its next scheduled refresh — such
//! entries can be dropped, which caps the number of live counters at a
//! few hundred instead of one per row.
//!
//! Mechanics per bank:
//!
//! * On activation: increment the row's counter, allocating an entry
//!   (with a `life` of the number of intervals it has been tracked) on a
//!   miss.
//! * When a counter reaches the trigger threshold (`th_RH / 4`,
//!   accounting for double-sided attacks and detection latency), issue
//!   `act_n` for the row and restart the entry.
//! * At each refresh-interval boundary: increment every entry's `life`
//!   and prune entries with `count < pruning_rate · life`.
//!
//! The paper's criticisms are also visible in this model: the valid
//! entry set must be searched associatively (a CAM in hardware — the
//! source of TWiCe's 740× LUT count in Table III).

use dram_sim::{BankId, Geometry, RowAddr, FLIP_THRESHOLD};
use mem_trace::EventBatch;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use tivapromi::{ActionSink, Mitigation, MitigationAction};

/// Configuration of a [`TwiCe`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwiCeConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Counter value that triggers a neighbor refresh (`th_RH / 4`).
    pub trigger_threshold: u32,
    /// Minimum average activations per interval an entry must sustain to
    /// stay tracked (`⌈trigger_threshold / RefInt⌉`).
    pub pruning_rate: u32,
    /// Maximum live entries per bank (the CAM capacity; ISCA 2019 sizes
    /// this analytically — 595 entries for DDR4).
    pub max_entries: usize,
}

impl TwiCeConfig {
    /// The ISCA 2019 sizing for the paper's DDR4 parameters:
    /// trigger at 139 000 / 4 = 34 750, pruning rate
    /// ⌈34 750 / 8192⌉ = 5, 595 CAM entries.
    pub fn paper(geometry: &Geometry) -> Self {
        let trigger_threshold = FLIP_THRESHOLD / 4;
        let ref_int = geometry.intervals_per_window();
        TwiCeConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            trigger_threshold,
            pruning_rate: trigger_threshold.div_ceil(ref_int),
            max_entries: 595,
        }
    }
}

/// One TWiCe counter entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    row: RowAddr,
    count: u32,
    /// Refresh intervals since the entry was allocated.
    life: u32,
}

/// One activation against a bank's CAM: increment on hit (returning
/// whether `act_n` fired, which restarts the entry), allocate on miss.
/// Shared by the scalar path and the lane kernel.
fn observe(table: &mut Vec<Entry>, row: RowAddr, config: &TwiCeConfig) -> bool {
    if let Some(entry) = table.iter_mut().find(|e| e.row == row) {
        entry.count += 1;
        if entry.count >= config.trigger_threshold {
            // The neighbors were just restored: the row's budget
            // restarts.
            entry.count = 0;
            entry.life = 0;
            return true;
        }
        return false;
    }
    // Allocate on miss.  The analytic sizing guarantees space; if an
    // adversarial pattern still overflows the CAM, evict the entry
    // closest to pruning (smallest count-per-life) — it is the one
    // the pruning proof says is least dangerous.
    if table.len() >= config.max_entries {
        if let Some(idx) = table
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (u64::from(e.count) << 16) / u64::from(e.life.max(1)))
            .map(|(i, _)| i)
        {
            table.swap_remove(idx);
        }
    }
    table.push(Entry {
        row,
        count: 1,
        life: 0,
    });
    false
}

/// The TWiCe mitigation.
///
/// ```
/// use rh_baselines::TwiCe;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut twice = TwiCe::paper(&Geometry::paper());
/// let mut actions = Vec::new();
/// // 34 750 activations of one row deterministically trigger act_n.
/// for _ in 0..34_750 {
///     twice.on_activate(BankId(0), RowAddr(123), &mut actions);
/// }
/// assert_eq!(actions.len(), 1);
/// ```
#[derive(Debug)]
pub struct TwiCe {
    config: TwiCeConfig,
    tables: Vec<Vec<Entry>>,
    /// High-watermark of live entries (validates the CAM sizing).
    peak_entries: usize,
}

impl TwiCe {
    /// Creates TWiCe from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if thresholds or capacity are zero.
    pub fn new(config: TwiCeConfig) -> Self {
        assert!(
            config.trigger_threshold > 0,
            "trigger threshold must be nonzero"
        );
        assert!(config.pruning_rate > 0, "pruning rate must be nonzero");
        assert!(config.max_entries > 0, "CAM must be nonempty");
        TwiCe {
            tables: (0..config.banks).map(|_| Vec::new()).collect(),
            config,
            peak_entries: 0,
        }
    }

    /// The ISCA 2019 sizing (see [`TwiCeConfig::paper`]).
    pub fn paper(geometry: &Geometry) -> Self {
        TwiCe::new(TwiCeConfig::paper(geometry))
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TwiCeConfig {
        &self.config
    }

    /// Highest number of simultaneously live entries seen in any bank.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }
}

impl Mitigation for TwiCe {
    fn name(&self) -> &str {
        "TWiCe"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let table = &mut self.tables[bank.index()];
        if observe(table, row, &self.config) {
            actions.push(MitigationAction::ActivateNeighbors { bank, row });
        }
        self.peak_entries = self.peak_entries.max(table.len());
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: the bank's CAM is hoisted once per run and the
        // peak-occupancy watermark is settled at run end — within a run
        // the table length is monotone (pruning only happens at interval
        // boundaries), so the end-of-run length is the run's maximum.
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let table = &mut self.tables[bank.index()];
            for i in run {
                let row = rows[i];
                if observe(table, row, &self.config) {
                    // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
                    sink.push(i as u32, MitigationAction::ActivateNeighbors { bank, row });
                }
            }
            self.peak_entries = self.peak_entries.max(table.len());
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {
        let rate = self.config.pruning_rate;
        for table in &mut self.tables {
            for entry in table.iter_mut() {
                entry.life += 1;
            }
            // Prune entries that can no longer reach the trigger
            // threshold before their refresh (count < rate · life).
            table.retain(|e| e.count >= rate.saturating_mul(e.life));
        }
    }

    fn storage_bits_per_bank(&self) -> u64 {
        let row_bits = u64::from(u32::BITS - (self.config.rows_per_bank - 1).leading_zeros());
        let count_bits = u64::from(u32::BITS - self.config.trigger_threshold.leading_zeros());
        let life_bits = 13; // interval index within a window
        self.config.max_entries as u64 * (row_bits + count_bits + life_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twice() -> TwiCe {
        TwiCe::paper(&Geometry::paper().with_banks(1))
    }

    #[test]
    fn paper_thresholds() {
        let t = twice();
        assert_eq!(t.config().trigger_threshold, 34_750);
        assert_eq!(t.config().pruning_rate, 5);
        assert_eq!(t.config().max_entries, 595);
    }

    #[test]
    fn trigger_is_deterministic() {
        let mut t = twice();
        let mut actions = Vec::new();
        for i in 0..34_749 {
            t.on_activate(BankId(0), RowAddr(9), &mut actions);
            assert!(actions.is_empty(), "early trigger at {i}");
        }
        t.on_activate(BankId(0), RowAddr(9), &mut actions);
        assert_eq!(
            actions,
            vec![MitigationAction::ActivateNeighbors {
                bank: BankId(0),
                row: RowAddr(9)
            }]
        );
    }

    #[test]
    fn trigger_resets_budget() {
        let mut t = twice();
        let mut actions = Vec::new();
        for _ in 0..(34_750 * 2) {
            t.on_activate(BankId(0), RowAddr(9), &mut actions);
        }
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn slow_rows_are_pruned() {
        let mut t = twice();
        let mut actions = Vec::new();
        // 3 activations per interval < pruning rate 5 → pruned after the
        // first boundary.
        for _ in 0..3 {
            t.on_activate(BankId(0), RowAddr(9), &mut actions);
        }
        assert_eq!(t.tables[0].len(), 1);
        t.on_refresh_interval(&mut actions);
        assert!(t.tables[0].is_empty());
    }

    #[test]
    fn fast_rows_survive_pruning() {
        let mut t = twice();
        let mut actions = Vec::new();
        for _ in 0..10 {
            for _ in 0..20 {
                // 20 per interval ≥ 5·life
                t.on_activate(BankId(0), RowAddr(9), &mut actions);
            }
            t.on_refresh_interval(&mut actions);
        }
        assert_eq!(t.tables[0].len(), 1);
        assert_eq!(t.tables[0][0].count, 200);
    }

    #[test]
    fn pruning_never_discards_a_dangerous_row() {
        // The TWiCe safety argument: a pruned row has
        // count < rate · life, so even at the max future rate it cannot
        // reach the trigger threshold before a full window elapses.
        // Hammer at exactly rate-1 per interval for a full window: the
        // entry is pruned, and indeed the total count stays far below
        // the trigger threshold.
        let mut t = twice();
        let mut actions = Vec::new();
        let mut total = 0u32;
        for _ in 0..8192u32 {
            for _ in 0..4 {
                t.on_activate(BankId(0), RowAddr(9), &mut actions);
                total += 1;
            }
            t.on_refresh_interval(&mut actions);
        }
        assert!(actions.is_empty());
        assert!(total < t.config().trigger_threshold * 4);
        // And the row never survived tracking long enough to matter.
        assert!(t.tables[0].len() <= 1);
    }

    #[test]
    fn cam_occupancy_stays_within_sizing() {
        let mut t = twice();
        let mut actions = Vec::new();
        // Worst realistic churn: 165 distinct rows per interval.
        for interval in 0..100u32 {
            for k in 0..165u32 {
                t.on_activate(BankId(0), RowAddr(interval * 165 + k), &mut actions);
            }
            t.on_refresh_interval(&mut actions);
        }
        assert!(t.peak_entries() <= 595, "peak {}", t.peak_entries());
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        use tivapromi::ActionSink;
        let cfg = TwiCeConfig {
            trigger_threshold: 30,
            ..TwiCeConfig::paper(&Geometry::paper().with_banks(3))
        };
        let mut kernel = TwiCe::new(cfg);
        let mut scalar = TwiCe::new(cfg);

        let mut events = Vec::new();
        for i in 0..512u32 {
            events.push(TraceEvent::benign(BankId(i % 3), RowAddr(400 + i % 5)));
        }
        let mut batch = EventBatch::new();
        batch.push_interval(&events);
        let mut sink = ActionSink::new();
        kernel.on_batch(&batch, batch.segment(0), &mut sink);

        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..u32::try_from(events.len()).expect("fits") {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(!drained.is_empty());
        assert_eq!(kernel.tables, scalar.tables);
        assert_eq!(kernel.peak_entries(), scalar.peak_entries());
    }

    #[test]
    fn storage_is_kilobytes() {
        let t = twice();
        let bytes = t.storage_bytes_per_bank();
        assert!(bytes > 2000.0 && bytes < 5000.0, "got {bytes}");
    }
}
