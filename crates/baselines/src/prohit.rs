//! ProHit (Son et al., DAC 2017 — "Making DRAM Stronger Against Row
//! Hammering").
//!
//! ProHit tracks *victim candidates* (the neighbors of activated rows) in
//! two small per-bank tables: a cold table for newly seen victims and a
//! hot table for victims that keep reappearing.  Insertion and promotion
//! are probabilistic, which keeps the tables tiny; at every refresh
//! interval the top entry of the hot table is refreshed and retired.
//! This defends the sequential multi-aggressor pattern PARA struggles
//! with, at the price of the highest activation overhead and
//! false-positive rate in Table III — the hot-table top is refreshed
//! whether or not it was a real aggressor's victim.

use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::EventBatch;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use tivapromi::{draw, ActionSink, BankRngs, Mitigation, MitigationAction};

/// Configuration of a [`ProHit`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProHitConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank (for neighbor arithmetic and address widths).
    pub rows_per_bank: u32,
    /// Hot-table entries per bank (paper: 4).
    pub hot_entries: usize,
    /// Cold-table entries per bank (paper: 4).
    pub cold_entries: usize,
    /// Probability that an activation's victims are processed at all —
    /// the probabilistic insertion/promotion that keeps table churn and
    /// overhead bounded.
    pub select_probability: f64,
}

impl ProHitConfig {
    /// The DAC 2017 configuration: 4 hot + 4 cold entries; the selection
    /// probability is calibrated so the hot table drains roughly every
    /// other refresh interval, matching the ≈ 0.6 % activation overhead
    /// of Table III.
    pub fn paper(geometry: &Geometry) -> Self {
        ProHitConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            hot_entries: 4,
            cold_entries: 4,
            select_probability: 0.01,
        }
    }
}

/// Per-bank ProHit state.
#[derive(Debug, Clone, Default)]
struct Tables {
    /// Hot table, index 0 = top (next to be refreshed).
    hot: Vec<RowAddr>,
    /// Cold table, index 0 = most recently inserted.
    cold: Vec<RowAddr>,
}

impl Tables {
    fn process_victim(&mut self, victim: RowAddr, hot_entries: usize, cold_entries: usize) {
        if let Some(pos) = self.hot.iter().position(|&r| r == victim) {
            // Promote one slot toward the top.
            if pos > 0 {
                self.hot.swap(pos, pos - 1);
            }
            return;
        }
        if let Some(pos) = self.cold.iter().position(|&r| r == victim) {
            // Promote cold → hot bottom; a full hot table demotes its
            // bottom entry back to the cold top.
            self.cold.remove(pos);
            if self.hot.len() >= hot_entries {
                let demoted = self.hot.pop().expect("hot table nonempty");
                self.cold.insert(0, demoted);
                self.cold.truncate(cold_entries);
            }
            self.hot.push(victim);
            return;
        }
        // New victim: insert at the cold top, evicting the bottom.
        self.cold.insert(0, victim);
        self.cold.truncate(cold_entries);
    }

    /// Both neighbors of a selected activation enter the tables.
    fn process_event(&mut self, row: RowAddr, config: &ProHitConfig) {
        if row.0 > 0 {
            self.process_victim(RowAddr(row.0 - 1), config.hot_entries, config.cold_entries);
        }
        if row.0 + 1 < config.rows_per_bank {
            self.process_victim(RowAddr(row.0 + 1), config.hot_entries, config.cold_entries);
        }
    }
}

/// The ProHit mitigation.
///
/// ```
/// use rh_baselines::ProHit;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut prohit = ProHit::paper(&Geometry::paper(), 3);
/// let mut actions = Vec::new();
/// // Hammer: the victims of row 1000 migrate cold → hot and the
/// // interval refresh drains the hot-table top.
/// for _ in 0..50 {
///     for _ in 0..165 {
///         prohit.on_activate(BankId(0), RowAddr(1000), &mut actions);
///     }
///     prohit.on_refresh_interval(&mut actions);
/// }
/// assert!(actions.iter().any(|a| a.row() == RowAddr(999) || a.row() == RowAddr(1001)));
/// ```
#[derive(Debug)]
pub struct ProHit {
    config: ProHitConfig,
    banks: Vec<Tables>,
    rngs: BankRngs,
}

impl ProHit {
    /// Creates ProHit from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either table size is zero or the probability is not in
    /// `[0, 1]`.
    pub fn new(config: ProHitConfig, seed: u64) -> Self {
        assert!(
            config.hot_entries > 0 && config.cold_entries > 0,
            "empty tables"
        );
        assert!(
            (0.0..=1.0).contains(&config.select_probability),
            "probability must be in [0, 1]"
        );
        ProHit {
            banks: (0..config.banks).map(|_| Tables::default()).collect(),
            rngs: BankRngs::with_banks(seed, config.banks),
            config,
        }
    }

    /// The paper configuration (see [`ProHitConfig::paper`]).
    pub fn paper(geometry: &Geometry, seed: u64) -> Self {
        ProHit::new(ProHitConfig::paper(geometry), seed)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ProHitConfig {
        &self.config
    }

}

impl Mitigation for ProHit {
    fn name(&self) -> &str {
        "ProHit"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, _actions: &mut Vec<MitigationAction>) {
        if !self
            .rngs
            .get(bank)
            .random_bool(self.config.select_probability)
        {
            return;
        }
        self.banks[bank.index()].process_event(row, &self.config);
    }

    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, _sink: &mut ActionSink) {
        // Lane kernel: per bank run, the selection draws are prefetched
        // in one block refill — one word per event, mirroring
        // `random_bool`'s consumption exactly.  At the clamped
        // probabilities the shim draws nothing, so neither do we.
        let p = self.config.select_probability;
        let (_, rows, _) = batch.columns();
        if p > 0.0 && p < 1.0 {
            let threshold = draw::threshold(p);
            for (bank, run) in batch.bank_runs(range) {
                let words = self.rngs.draw_block(bank, run.len());
                let tables = &mut self.banks[bank.index()];
                for (&word, i) in words.iter().zip(run) {
                    if draw::gate_at(word, threshold) {
                        tables.process_event(rows[i], &self.config);
                    }
                }
            }
        } else if p >= 1.0 {
            for (bank, run) in batch.bank_runs(range) {
                let tables = &mut self.banks[bank.index()];
                for i in run {
                    tables.process_event(rows[i], &self.config);
                }
            }
        }
        // p <= 0.0: nothing is ever selected and no words are consumed.
    }

    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>) {
        // "The top entry of the table is added to the list of rows that
        //  are refreshed in the next refresh interval."
        for (bank_idx, tables) in self.banks.iter_mut().enumerate() {
            if !tables.hot.is_empty() {
                let victim = tables.hot.remove(0);
                actions.push(MitigationAction::RefreshRow {
                    bank: BankId(u32::try_from(bank_idx).expect("bank count fits u32")),
                    row: victim,
                });
            }
        }
    }

    fn storage_bits_per_bank(&self) -> u64 {
        let row_bits = u64::from(u32::BITS - (self.config.rows_per_bank - 1).leading_zeros());
        ((self.config.hot_entries + self.config.cold_entries) as u64) * (row_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prohit() -> ProHit {
        let mut cfg = ProHitConfig::paper(&Geometry::paper().with_banks(1));
        cfg.select_probability = 1.0; // deterministic tables for testing
        ProHit::new(cfg, 1)
    }

    #[test]
    fn new_victims_enter_cold_table() {
        let mut p = prohit();
        let mut actions = Vec::new();
        p.on_activate(BankId(0), RowAddr(100), &mut actions);
        assert!(p.banks[0].cold.contains(&RowAddr(99)));
        assert!(p.banks[0].cold.contains(&RowAddr(101)));
        assert!(p.banks[0].hot.is_empty());
    }

    #[test]
    fn repeat_victims_promote_to_hot() {
        let mut p = prohit();
        let mut actions = Vec::new();
        p.on_activate(BankId(0), RowAddr(100), &mut actions);
        p.on_activate(BankId(0), RowAddr(100), &mut actions);
        assert!(p.banks[0].hot.contains(&RowAddr(99)));
        assert!(p.banks[0].hot.contains(&RowAddr(101)));
    }

    #[test]
    fn refresh_drains_hot_top() {
        let mut p = prohit();
        let mut actions = Vec::new();
        p.on_activate(BankId(0), RowAddr(100), &mut actions);
        p.on_activate(BankId(0), RowAddr(100), &mut actions);
        p.on_refresh_interval(&mut actions);
        assert_eq!(actions.len(), 1);
        let refreshed = actions[0].row();
        assert!(refreshed == RowAddr(99) || refreshed == RowAddr(101));
        // One entry left in hot.
        assert_eq!(p.banks[0].hot.len(), 1);
    }

    #[test]
    fn empty_hot_table_refreshes_nothing() {
        let mut p = prohit();
        let mut actions = Vec::new();
        p.on_refresh_interval(&mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn cold_table_is_bounded() {
        let mut p = prohit();
        let mut actions = Vec::new();
        for r in (200..400).step_by(3) {
            p.on_activate(BankId(0), RowAddr(r), &mut actions);
        }
        assert!(p.banks[0].cold.len() <= p.config.cold_entries);
        assert!(p.banks[0].hot.len() <= p.config.hot_entries);
    }

    #[test]
    fn hammered_victim_reaches_hot_top() {
        let mut p = prohit();
        let mut actions = Vec::new();
        // Interleave a hammered row with noise; its victims must win.
        for i in 0..50u32 {
            p.on_activate(BankId(0), RowAddr(100), &mut actions);
            p.on_activate(BankId(0), RowAddr(500 + i * 3), &mut actions);
        }
        let top = p.banks[0].hot[0];
        assert!(top == RowAddr(99) || top == RowAddr(101), "top {top}");
    }

    #[test]
    fn storage_is_tens_of_bytes() {
        let p = ProHit::paper(&Geometry::paper(), 1);
        let bytes = p.storage_bytes_per_bank();
        assert!(bytes > 10.0 && bytes < 100.0, "got {bytes}");
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        // Exercise both the prefetched-draw branch and the clamped
        // p = 1.0 branch.
        for select_probability in [0.3, 1.0] {
            let mut cfg = ProHitConfig::paper(&Geometry::paper().with_banks(3));
            cfg.select_probability = select_probability;
            let mut kernel = ProHit::new(cfg, 7);
            let mut scalar = ProHit::new(cfg, 7);

            let mut events = Vec::new();
            for i in 0..400u32 {
                events.push(TraceEvent::benign(BankId(i % 3), RowAddr(100 + i % 11)));
            }
            let mut batch = mem_trace::EventBatch::new();
            batch.push_interval(&events);
            let mut sink = ActionSink::new();
            kernel.on_batch(&batch, batch.segment(0), &mut sink);
            let mut scratch = Vec::new();
            for e in &events {
                scalar.on_activate(e.bank, e.row, &mut scratch);
            }
            for (k, s) in kernel.banks.iter().zip(&scalar.banks) {
                assert_eq!(k.hot, s.hot);
                assert_eq!(k.cold, s.cold);
            }
            let mut kernel_actions = Vec::new();
            let mut scalar_actions = Vec::new();
            kernel.on_refresh_interval(&mut kernel_actions);
            scalar.on_refresh_interval(&mut scalar_actions);
            assert_eq!(kernel_actions, scalar_actions);
        }
    }
}
