//! CAT — adaptive Counter-based tree (Seyedzadeh, Jones, Melhem, ISCA
//! 2018: "Mitigating wordline crosstalk using adaptive trees of
//! counters").
//!
//! Discussed in §II of the paper as the first area-reduction approach
//! for tabled counters: a binary tree in which each node counts the
//! activations of a *range* of rows.  When a node's counter overflows
//! its split threshold, the node splits and each child counts half of
//! the range — so only frequently activated regions grow deep subtrees.
//! The tree is reset at each new refresh window.  A leaf covering a
//! single row that reaches the trigger threshold fires `act_n`.
//!
//! §II also records the weakness we reproduce in the adversarial suite:
//! an attacker can "fill all the levels of the tree to make it balanced
//! and saturated before it reaches the levels where it would track the
//! aggressor rows precisely" — when the node budget is exhausted, splits
//! stop and precision is lost.

use dram_sim::{BankId, Geometry, RowAddr, FLIP_THRESHOLD};
use mem_trace::EventBatch;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use tivapromi::{ActionSink, Mitigation, MitigationAction};

/// Configuration of a [`CounterTree`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTreeConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank (the root range).
    pub rows_per_bank: u32,
    /// Refresh intervals per window (tree reset period).
    pub intervals_per_window: u32,
    /// Node budget per bank — the literature requires "no less than
    /// 1 KB per bank" of tree storage for successful mitigation.
    pub max_nodes: usize,
    /// Counter value at which an inner node splits.
    pub split_threshold: u32,
    /// Counter value at which a single-row leaf fires `act_n`.
    pub trigger_threshold: u32,
}

impl CounterTreeConfig {
    /// A 1 KB-class tree per bank: 256 nodes of ~40 bits.
    pub fn paper(geometry: &Geometry) -> Self {
        CounterTreeConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            intervals_per_window: geometry.intervals_per_window(),
            max_nodes: 256,
            split_threshold: 2048,
            trigger_threshold: FLIP_THRESHOLD / 4,
        }
    }
}

/// One tree node covering rows `lo..hi` (half-open).
#[derive(Debug, Clone, Copy)]
struct Node {
    lo: u32,
    hi: u32,
    count: u32,
    /// Index of the left child; `hi`-child is `left + 1`.  `None` = leaf.
    left: Option<usize>,
}

/// Per-bank adaptive counter tree.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new(rows: u32) -> Self {
        Tree {
            nodes: vec![Node {
                lo: 0,
                hi: rows,
                count: 0,
                left: None,
            }],
        }
    }

    /// Window reset in place: the node arena keeps its capacity so
    /// steady-state window turnover never touches the heap.
    fn reset(&mut self, rows: u32) {
        self.nodes.clear();
        self.nodes.push(Node {
            lo: 0,
            hi: rows,
            count: 0,
            left: None,
        });
    }

    /// Walks the tree for one activation; returns true if the row's
    /// single-row leaf crossed the trigger threshold (which also resets
    /// that leaf).
    fn insert(&mut self, row: u32, config: &CounterTreeConfig) -> bool {
        let mut idx = 0usize;
        loop {
            self.nodes[idx].count += 1;
            let node = self.nodes[idx];
            if let Some(left) = node.left {
                idx = if row < self.nodes[left].hi {
                    left
                } else {
                    left + 1
                };
                continue;
            }
            // Leaf.
            let width = node.hi - node.lo;
            if width == 1 {
                if node.count >= config.trigger_threshold {
                    self.nodes[idx].count = 0;
                    return true;
                }
                return false;
            }
            if node.count >= config.split_threshold && self.nodes.len() + 2 <= config.max_nodes {
                // Split: children each start counting from zero — the
                // parent keeps the coarse history (the unbalanced,
                // adaptive shape of the ISCA 2018 design).
                let mid = node.lo + width / 2;
                let left_idx = self.nodes.len();
                self.nodes.push(Node {
                    lo: node.lo,
                    hi: mid,
                    count: 0,
                    left: None,
                });
                self.nodes.push(Node {
                    lo: mid,
                    hi: node.hi,
                    count: 0,
                    left: None,
                });
                self.nodes[idx].left = Some(left_idx);
            }
            return false;
        }
    }
}

/// The CAT mitigation.
///
/// ```
/// use rh_baselines::CounterTree;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut cat = CounterTree::paper(&Geometry::paper());
/// let mut actions = Vec::new();
/// for _ in 0..200_000 {
///     cat.on_activate(BankId(0), RowAddr(12_345), &mut actions);
/// }
/// assert!(!actions.is_empty(), "a hammered row is eventually isolated and caught");
/// ```
#[derive(Debug)]
pub struct CounterTree {
    config: CounterTreeConfig,
    trees: Vec<Tree>,
    interval: u32,
    /// High-watermark of allocated nodes (diagnostic).
    peak_nodes: usize,
}

impl CounterTree {
    /// Creates a counter tree from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are zero or the node budget is below 3
    /// (a root plus one split).
    pub fn new(config: CounterTreeConfig) -> Self {
        assert!(config.split_threshold > 0 && config.trigger_threshold > 0);
        assert!(config.max_nodes >= 3, "node budget too small to ever split");
        CounterTree {
            trees: (0..config.banks)
                .map(|_| Tree::new(config.rows_per_bank))
                .collect(),
            config,
            interval: 0,
            peak_nodes: 0,
        }
    }

    /// The ≈1 KB/bank configuration (see [`CounterTreeConfig::paper`]).
    pub fn paper(geometry: &Geometry) -> Self {
        CounterTree::new(CounterTreeConfig::paper(geometry))
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CounterTreeConfig {
        &self.config
    }

    /// Highest node count reached in any bank.
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }
}

impl Mitigation for CounterTree {
    fn name(&self) -> &str {
        "CAT"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let tree = &mut self.trees[bank.index()];
        if tree.insert(row.0, &self.config) {
            actions.push(MitigationAction::ActivateNeighbors { bank, row });
        }
        self.peak_nodes = self.peak_nodes.max(tree.nodes.len());
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: the bank's tree is hoisted once per run and the
        // node watermark is settled at run end — node count only grows
        // within a run (resets happen at window boundaries), so the
        // end-of-run length is the run's maximum.
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let tree = &mut self.trees[bank.index()];
            for i in run {
                let row = rows[i];
                if tree.insert(row.0, &self.config) {
                    // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
                    sink.push(i as u32, MitigationAction::ActivateNeighbors { bank, row });
                }
            }
            self.peak_nodes = self.peak_nodes.max(tree.nodes.len());
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {
        self.interval += 1;
        if self.interval == self.config.intervals_per_window {
            // "the tree is reset at each new refresh window"
            self.interval = 0;
            for tree in &mut self.trees {
                tree.reset(self.config.rows_per_bank);
            }
        }
    }

    fn storage_bits_per_bank(&self) -> u64 {
        // Row-range bounds can be reconstructed from the tree shape, so
        // a hardware node stores a counter plus two child pointers.
        let counter_bits = u64::from(u32::BITS - self.config.split_threshold.leading_zeros()).max(
            u64::from(u32::BITS - self.config.trigger_threshold.leading_zeros()),
        );
        let pointer_bits = u64::from(usize::BITS - (self.config.max_nodes - 1).leading_zeros());
        self.config.max_nodes as u64 * (counter_bits + pointer_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> CounterTree {
        CounterTree::paper(&Geometry::paper().with_banks(1))
    }

    #[test]
    fn tree_splits_toward_hammered_row() {
        let mut c = cat();
        let mut actions = Vec::new();
        for _ in 0..100_000 {
            c.on_activate(BankId(0), RowAddr(12_345), &mut actions);
        }
        // log2(65536) = 16 splits isolate a single row: 1 + 2·16 nodes.
        assert!(c.peak_nodes() >= 33, "peak {}", c.peak_nodes());
        assert!(c.peak_nodes() <= c.config().max_nodes);
    }

    #[test]
    fn hammered_row_triggers() {
        let mut c = cat();
        let mut actions = Vec::new();
        for _ in 0..200_000 {
            c.on_activate(BankId(0), RowAddr(12_345), &mut actions);
        }
        assert!(!actions.is_empty());
        assert!(actions.iter().all(|a| a.row() == RowAddr(12_345)));
    }

    #[test]
    fn scattered_traffic_never_triggers() {
        let mut c = cat();
        let mut actions = Vec::new();
        for i in 0..100_000u32 {
            c.on_activate(BankId(0), RowAddr((i * 37) % 65_536), &mut actions);
        }
        assert!(actions.is_empty());
    }

    #[test]
    fn window_reset_restores_root_only() {
        let mut c = cat();
        let mut actions = Vec::new();
        for _ in 0..10_000 {
            c.on_activate(BankId(0), RowAddr(12_345), &mut actions);
        }
        assert!(c.trees[0].nodes.len() > 1);
        for _ in 0..8192 {
            c.on_refresh_interval(&mut actions);
        }
        assert_eq!(c.trees[0].nodes.len(), 1);
    }

    #[test]
    fn saturation_attack_stops_splitting() {
        // Spray the whole bank to exhaust the node budget, then check
        // the tree is saturated (the §II criticism).
        let mut c = cat();
        let mut actions = Vec::new();
        for i in 0..2_000_000u64 {
            c.on_activate(
                BankId(0),
                RowAddr(((i * 7919) % 65_536) as u32),
                &mut actions,
            );
        }
        assert!(c.peak_nodes() >= c.config().max_nodes - 2);
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        use tivapromi::ActionSink;
        let cfg = CounterTreeConfig {
            split_threshold: 8,
            trigger_threshold: 60,
            ..CounterTreeConfig::paper(&Geometry::paper().with_banks(3))
        };
        let mut kernel = CounterTree::new(cfg);
        let mut scalar = CounterTree::new(cfg);

        let mut events = Vec::new();
        for i in 0..1024u32 {
            events.push(TraceEvent::benign(BankId(i % 3), RowAddr(12_345)));
        }
        let mut batch = EventBatch::new();
        batch.push_interval(&events);
        let mut sink = ActionSink::new();
        kernel.on_batch(&batch, batch.segment(0), &mut sink);

        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..u32::try_from(events.len()).expect("fits") {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(!drained.is_empty());
        assert_eq!(kernel.peak_nodes(), scalar.peak_nodes());
    }

    #[test]
    fn storage_is_about_a_kilobyte() {
        let c = cat();
        let bytes = c.storage_bytes_per_bank();
        assert!(bytes > 500.0 && bytes < 2048.0, "got {bytes}");
    }
}
