//! CRA — Counter-based Row Activation (Kim, Nair, Qureshi, IEEE CAL
//! 2015: "Architectural support for mitigating row hammering in DRAM
//! memories").
//!
//! The simplest tabled-counter scheme: one counter per DRAM row.  When a
//! row's counter crosses the trigger threshold, its neighbors
//! are refreshed (`act_n`) and the counter resets; each row's counter
//! also resets when the row's victims… rather, when the row's *neighbors*
//! are refreshed by the regular refresh schedule, their accumulated
//! disturbance is gone, so CRA resets a row's counter when the refresh
//! schedule has passed its neighborhood — modelled here by resetting the
//! counters of the rows refreshed in each interval (the counters live in
//! DRAM alongside the rows and are reset by the refresh sweep).
//!
//! The storage is exact and huge — `rows × counter_bits` ≈ 136 KB per
//! 64 K-row bank — which is why the paper calls per-row counters "mostly
//! infeasible to implement" in the controller: the counters must live in
//! DRAM, with a small cache in the controller.

use dram_sim::{BankId, Geometry, RowAddr, FLIP_THRESHOLD};
use mem_trace::EventBatch;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use tivapromi::{ActionSink, Mitigation, MitigationAction};

/// Configuration of a [`Cra`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CraConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank (one counter each).
    pub rows_per_bank: u32,
    /// Counter value triggering the neighbor refresh (`th_RH / 4`, see
    /// [`CraConfig::paper`]).
    pub trigger_threshold: u32,
    /// Refresh intervals per window (for the refresh-sweep reset).
    pub intervals_per_window: u32,
    /// Rows refreshed per interval.
    pub rows_per_interval: u32,
}

impl CraConfig {
    /// The CAL 2015 scheme at the paper's parameters.
    ///
    /// The trigger threshold is `th_RH / 4` rather than `th_RH / 2`:
    /// the refresh sweep resets a row's counter at the row's *own*
    /// refresh slot, which for rows at refresh-group boundaries is up to
    /// one interval away from a victim's slot — the victim's
    /// accumulation span can therefore straddle two counter windows.
    /// Quartering the threshold (as TWiCe does for the same reason)
    /// keeps the worst case `2 windows × 2 aggressors × (th/4 − 1)`
    /// strictly below the 139 K flip threshold.
    pub fn paper(geometry: &Geometry) -> Self {
        CraConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            trigger_threshold: FLIP_THRESHOLD / 4,
            intervals_per_window: geometry.intervals_per_window(),
            rows_per_interval: geometry.rows_per_interval(),
        }
    }
}

/// The CRA mitigation.
///
/// ```
/// use rh_baselines::Cra;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut cra = Cra::paper(&Geometry::paper());
/// let mut actions = Vec::new();
/// for _ in 0..34_750 {
///     cra.on_activate(BankId(0), RowAddr(77), &mut actions);
/// }
/// assert_eq!(actions.len(), 1); // deterministic trigger at th/4
/// ```
#[derive(Debug)]
pub struct Cra {
    config: CraConfig,
    /// Per-bank, per-row activation counters.
    counters: Vec<Vec<u32>>,
    /// Interval within the window (drives the refresh-sweep reset).
    interval: u32,
}

impl Cra {
    /// Creates CRA from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the trigger threshold is zero.
    pub fn new(config: CraConfig) -> Self {
        assert!(
            config.trigger_threshold > 0,
            "trigger threshold must be nonzero"
        );
        Cra {
            counters: (0..config.banks)
                .map(|_| vec![0; config.rows_per_bank as usize])
                .collect(),
            config,
            interval: 0,
        }
    }

    /// The CAL 2015 configuration (see [`CraConfig::paper`]).
    pub fn paper(geometry: &Geometry) -> Self {
        Cra::new(CraConfig::paper(geometry))
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CraConfig {
        &self.config
    }

    /// Current counter of a row (diagnostic).
    pub fn counter(&self, bank: BankId, row: RowAddr) -> u32 {
        self.counters[bank.index()][row.index()]
    }
}

impl Mitigation for Cra {
    fn name(&self) -> &str {
        "CRA"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let counter = &mut self.counters[bank.index()][row.index()];
        *counter += 1;
        if *counter >= self.config.trigger_threshold {
            *counter = 0;
            actions.push(MitigationAction::ActivateNeighbors { bank, row });
        }
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: per bank run the counter array is hoisted once
        // and the update is a branchless increment-compare-select — the
        // trigger itself is the only (rare) branch.
        let threshold = self.config.trigger_threshold;
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let counters = &mut self.counters[bank.index()];
            for i in run {
                let row = rows[i];
                let value = counters[row.index()] + 1;
                let fire = value >= threshold;
                counters[row.index()] = if fire { 0 } else { value };
                if fire {
                    // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
                    sink.push(i as u32, MitigationAction::ActivateNeighbors { bank, row });
                }
            }
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {
        // The refresh sweep restores the rows of this interval; an
        // aggressor's budget against them restarts, so the aggressor
        // counters adjacent to the refreshed range reset.  CRA stores
        // its counters in the same DRAM rows, so the sweep resets the
        // counters of the refreshed rows themselves.
        let start = self.interval * self.config.rows_per_interval;
        for bank in &mut self.counters {
            for offset in 0..self.config.rows_per_interval {
                bank[(start + offset) as usize] = 0;
            }
        }
        self.interval = (self.interval + 1) % self.config.intervals_per_window;
    }

    fn storage_bits_per_bank(&self) -> u64 {
        let counter_bits = u64::from(u32::BITS - self.config.trigger_threshold.leading_zeros());
        u64::from(self.config.rows_per_bank) * counter_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cra() -> Cra {
        Cra::paper(&Geometry::paper().with_banks(1))
    }

    #[test]
    fn deterministic_trigger_at_quarter_threshold() {
        let mut c = cra();
        let mut actions = Vec::new();
        for _ in 0..34_749 {
            c.on_activate(BankId(0), RowAddr(5), &mut actions);
        }
        assert!(actions.is_empty());
        c.on_activate(BankId(0), RowAddr(5), &mut actions);
        assert_eq!(actions.len(), 1);
        assert_eq!(c.counter(BankId(0), RowAddr(5)), 0);
    }

    #[test]
    fn refresh_sweep_resets_swept_rows() {
        let mut c = cra();
        let mut actions = Vec::new();
        // Row 3 is refreshed by interval 0 (rows 0–7).
        for _ in 0..100 {
            c.on_activate(BankId(0), RowAddr(3), &mut actions);
        }
        assert_eq!(c.counter(BankId(0), RowAddr(3)), 100);
        c.on_refresh_interval(&mut actions);
        assert_eq!(c.counter(BankId(0), RowAddr(3)), 0);
        // Row 100 is not in interval 0's sweep.
        for _ in 0..10 {
            c.on_activate(BankId(0), RowAddr(100), &mut actions);
        }
        c.on_refresh_interval(&mut actions); // interval 1 refreshes 8–15
        assert_eq!(c.counter(BankId(0), RowAddr(100)), 10);
    }

    #[test]
    fn interval_wraps_at_window_end() {
        let mut c = cra();
        let mut actions = Vec::new();
        for _ in 0..8192 {
            c.on_refresh_interval(&mut actions);
        }
        assert_eq!(c.interval, 0);
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        use tivapromi::ActionSink;
        let cfg = CraConfig {
            trigger_threshold: 40,
            ..CraConfig::paper(&Geometry::paper().with_banks(3))
        };
        let mut kernel = Cra::new(cfg);
        let mut scalar = Cra::new(cfg);

        let mut events = Vec::new();
        for i in 0..512u32 {
            events.push(TraceEvent::benign(BankId(i % 3), RowAddr(300 + i % 4)));
        }
        let mut batch = EventBatch::new();
        batch.push_interval(&events);
        let mut sink = ActionSink::new();
        kernel.on_batch(&batch, batch.segment(0), &mut sink);

        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..u32::try_from(events.len()).expect("fits") {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(!drained.is_empty());
        assert_eq!(kernel.counters, scalar.counters);
    }

    #[test]
    fn storage_is_a_counter_per_row() {
        let c = cra();
        // 65 536 rows × 16 bits = 128 KB.
        assert_eq!(c.storage_bits_per_bank(), 65_536 * 16);
        assert!(c.storage_bytes_per_bank() > 100_000.0);
    }
}
