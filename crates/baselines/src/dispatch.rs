//! Static dispatch over every concrete mitigation in the suite.
//!
//! The engine's hot loop used to call `&mut dyn Mitigation` once per
//! activation — a vtable indirection the optimiser cannot see through.
//! [`AnyMitigation`] closes the set: one enum variant per concrete
//! technique, so the per-event inner loop compiles to a `match` whose
//! arms inline the techniques' `on_activate`/`on_batch` bodies.  The
//! engine makes **one** dispatch per interval segment (via
//! [`Mitigation::on_batch`]) instead of one per event.
//!
//! The enum lives here rather than in the harness because it closes
//! over the concrete types of this crate and `tivapromi`; the harness's
//! `techniques::build` constructs it and can still hand out
//! `Box<dyn Mitigation>` for callers that want type erasure.

use mem_trace::EventBatch;
use std::ops::Range;
use tivapromi::{ActionSink, CaPromi, Mitigation, MitigationAction, TimeVarying};

use crate::{CounterTree, Cra, Graphene, MrLoc, Para, ProHit, TwiCe};

/// Every concrete mitigation of the suite behind one `match`.
///
/// Covers the nine Table III techniques (the three purely probabilistic
/// TiVaPRoMi variants share the [`TimeVarying`] engine) plus the CAT
/// and Graphene extensions.
#[derive(Debug)]
pub enum AnyMitigation {
    /// PARA (Kim et al., ISCA 2014).
    Para(Para),
    /// ProHit (Son et al., DAC 2017).
    ProHit(ProHit),
    /// MRLoc (You & Yang, DAC 2019).
    MrLoc(MrLoc),
    /// TWiCe (Lee et al., ISCA 2019).
    TwiCe(TwiCe),
    /// CRA (Kim et al., CAL 2015).
    Cra(Cra),
    /// CAT counter tree (Seyedzadeh et al.).
    CounterTree(CounterTree),
    /// Graphene (Park et al., MICRO 2020).
    Graphene(Graphene),
    /// LiPRoMi / LoPRoMi / LoLiPRoMi (shared time-varying engine).
    TimeVarying(TimeVarying),
    /// CaPRoMi (counter-assisted TiVaPRoMi).
    CaPromi(CaPromi),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnyMitigation::Para($inner) => $body,
            AnyMitigation::ProHit($inner) => $body,
            AnyMitigation::MrLoc($inner) => $body,
            AnyMitigation::TwiCe($inner) => $body,
            AnyMitigation::Cra($inner) => $body,
            AnyMitigation::CounterTree($inner) => $body,
            AnyMitigation::Graphene($inner) => $body,
            AnyMitigation::TimeVarying($inner) => $body,
            AnyMitigation::CaPromi($inner) => $body,
        }
    };
}

impl Mitigation for AnyMitigation {
    fn name(&self) -> &str {
        dispatch!(self, m => m.name())
    }

    fn on_activate(
        &mut self,
        bank: dram_sim::BankId,
        row: dram_sim::RowAddr,
        actions: &mut Vec<MitigationAction>,
    ) {
        dispatch!(self, m => m.on_activate(bank, row, actions))
    }

    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>) {
        dispatch!(self, m => m.on_refresh_interval(actions))
    }

    fn storage_bits_per_bank(&self) -> u64 {
        dispatch!(self, m => m.storage_bits_per_bank())
    }

    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // One match per interval segment; each arm monomorphises the
        // technique's (possibly overridden) batched loop.
        dispatch!(self, m => m.on_batch(batch, range, sink))
    }
}

impl From<Para> for AnyMitigation {
    fn from(m: Para) -> Self {
        AnyMitigation::Para(m)
    }
}

impl From<ProHit> for AnyMitigation {
    fn from(m: ProHit) -> Self {
        AnyMitigation::ProHit(m)
    }
}

impl From<MrLoc> for AnyMitigation {
    fn from(m: MrLoc) -> Self {
        AnyMitigation::MrLoc(m)
    }
}

impl From<TwiCe> for AnyMitigation {
    fn from(m: TwiCe) -> Self {
        AnyMitigation::TwiCe(m)
    }
}

impl From<Cra> for AnyMitigation {
    fn from(m: Cra) -> Self {
        AnyMitigation::Cra(m)
    }
}

impl From<CounterTree> for AnyMitigation {
    fn from(m: CounterTree) -> Self {
        AnyMitigation::CounterTree(m)
    }
}

impl From<Graphene> for AnyMitigation {
    fn from(m: Graphene) -> Self {
        AnyMitigation::Graphene(m)
    }
}

impl From<TimeVarying> for AnyMitigation {
    fn from(m: TimeVarying) -> Self {
        AnyMitigation::TimeVarying(m)
    }
}

impl From<CaPromi> for AnyMitigation {
    fn from(m: CaPromi) -> Self {
        AnyMitigation::CaPromi(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{BankId, Geometry, RowAddr};
    use mem_trace::TraceEvent;

    #[test]
    fn enum_forwards_every_trait_method() {
        let g = Geometry::scaled_down(64);
        let mut any: AnyMitigation = Para::paper(&g, 1).into();
        assert_eq!(any.name(), "PARA");
        assert_eq!(any.storage_bits_per_bank(), 0);
        let mut actions = Vec::new();
        any.on_refresh_interval(&mut actions);
        for _ in 0..10_000 {
            any.on_activate(BankId(0), RowAddr(5), &mut actions);
        }
        assert!(!actions.is_empty());
    }

    #[test]
    fn enum_batch_matches_wrapped_technique() {
        let g = Geometry::scaled_down(64);
        let mut direct = Para::paper(&g, 9);
        let mut any: AnyMitigation = Para::paper(&g, 9).into();

        let events: Vec<TraceEvent> = (0..4096)
            .map(|i| TraceEvent::benign(BankId(0), RowAddr(i % 64)))
            .collect();
        let mut batch = EventBatch::new();
        batch.push_interval(&events);

        let mut direct_sink = ActionSink::new();
        direct.on_batch(&batch, batch.segment(0), &mut direct_sink);
        let mut any_sink = ActionSink::new();
        any.on_batch(&batch, batch.segment(0), &mut any_sink);

        let drain = |sink: &mut ActionSink| {
            let mut out = Vec::new();
            for tag in 0..events.len() as u32 {
                while let Some(a) = sink.next_for(tag) {
                    out.push(a);
                }
            }
            out
        };
        assert_eq!(drain(&mut direct_sink), drain(&mut any_sink));
    }
}
