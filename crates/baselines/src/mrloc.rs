//! MRLoc (You & Yang, DAC 2019 — "MRLoc: Mitigating Row-hammering based
//! on memory Locality").
//!
//! MRLoc refines PARA with *memory locality*: a per-bank FIFO queue
//! remembers recently seen victim candidates (the neighbors of activated
//! rows).  When a victim candidate reappears, the trigger probability is
//! weighted by how recently it was last seen — victims of rows hammered
//! in tight loops (the row-hammer signature) get near-maximal
//! probability, while victims of well-spread benign traffic stay near the
//! minimum.  As the paper notes, MRLoc "slightly reduces the false
//! positive rate but ends up with a higher or equal number of extra
//! activations compared to PARA" and stays vulnerable to the same
//! adaptive patterns.

use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::EventBatch;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::ops::Range;
use tivapromi::{ActionSink, BankRngs, Mitigation, MitigationAction};

/// Configuration of an [`MrLoc`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrLocConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Queue entries per bank.
    pub queue_entries: usize,
    /// Probability for a victim at the *newest* queue position; scales
    /// down linearly with queue age.
    pub max_probability: f64,
    /// Probability for a victim not present in the queue.
    pub min_probability: f64,
}

impl MrLocConfig {
    /// The DAC 2019-style configuration calibrated against the paper's
    /// Table III: overhead at or slightly above PARA's (0.11 % vs
    /// 0.1 %) with a slightly smaller false-positive share.
    pub fn paper(geometry: &Geometry) -> Self {
        MrLocConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            queue_entries: 64,
            max_probability: 0.0011,
            min_probability: 0.0002,
        }
    }
}

/// Slots in a [`QueueFilter`]; a power of two so the hash is a mask.
const FILTER_SLOTS: usize = 1024;

/// Per-bank counting membership filter over the victim queue: slot
/// `row mod FILTER_SLOTS` counts the queued rows hashing there, so a
/// zero slot *proves* the row is absent.  The lane kernel uses that
/// proof to skip the queue scan for the dominant miss case; a colliding
/// nonzero slot merely falls back to the scan the unfiltered path would
/// have paid anyway, so decisions never change.  `u16` counts cannot
/// overflow: [`MrLoc::new`] bounds the queue (every queued row holds
/// one count) to `u16::MAX` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueueFilter(Box<[u16; FILTER_SLOTS]>);

impl QueueFilter {
    fn new() -> Self {
        QueueFilter(Box::new([0; FILTER_SLOTS]))
    }

    #[inline]
    fn slot(row: RowAddr) -> usize {
        row.0 as usize & (FILTER_SLOTS - 1)
    }

    #[inline]
    fn add(&mut self, row: RowAddr) {
        self.0[Self::slot(row)] += 1;
    }

    #[inline]
    fn remove(&mut self, row: RowAddr) {
        self.0[Self::slot(row)] -= 1;
    }

    /// `false` is definitive absence; `true` means "scan the queue".
    #[inline]
    fn may_contain(&self, row: RowAddr) -> bool {
        self.0[Self::slot(row)] != 0
    }
}

/// The MRLoc mitigation.
///
/// ```
/// use rh_baselines::MrLoc;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut mrloc = MrLoc::paper(&Geometry::paper(), 11);
/// let mut actions = Vec::new();
/// for _ in 0..200_000 {
///     mrloc.on_activate(BankId(0), RowAddr(4000), &mut actions);
/// }
/// // A hammered row's victims stay at the queue head → near-max p.
/// assert!(!actions.is_empty());
/// assert!(actions.iter().all(|a| a.row().0 == 3999 || a.row().0 == 4001));
/// ```
#[derive(Debug)]
pub struct MrLoc {
    config: MrLocConfig,
    /// Per-bank victim queue; front = newest.
    queues: Vec<VecDeque<RowAddr>>,
    /// Per-bank membership filters mirroring `queues` — every mutation
    /// path keeps them coherent so the kernel's scan skip stays sound.
    filters: Vec<QueueFilter>,
    rngs: BankRngs,
}

impl MrLoc {
    /// Creates MRLoc from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the queue size is zero or the probabilities are not in
    /// `[0, 1]` with `min ≤ max`.
    pub fn new(config: MrLocConfig, seed: u64) -> Self {
        assert!(config.queue_entries > 0, "queue must be nonempty");
        assert!(
            config.queue_entries <= usize::from(u16::MAX),
            "queue must fit the membership filter's u16 counts"
        );
        assert!(
            (0.0..=1.0).contains(&config.max_probability)
                && (0.0..=1.0).contains(&config.min_probability)
                && config.min_probability <= config.max_probability,
            "probabilities must satisfy 0 ≤ min ≤ max ≤ 1"
        );
        MrLoc {
            queues: (0..config.banks).map(|_| VecDeque::new()).collect(),
            filters: (0..config.banks).map(|_| QueueFilter::new()).collect(),
            rngs: BankRngs::with_banks(seed, config.banks),
            config,
        }
    }

    /// The paper-calibrated configuration (see [`MrLocConfig::paper`]).
    pub fn paper(geometry: &Geometry, seed: u64) -> Self {
        MrLoc::new(MrLocConfig::paper(geometry), seed)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MrLocConfig {
        &self.config
    }

    fn handle_victim(
        &mut self,
        bank: BankId,
        victim: RowAddr,
        actions: &mut Vec<MitigationAction>,
    ) {
        let queue = &mut self.queues[bank.index()];
        let filter = &mut self.filters[bank.index()];
        if victim_fires(queue, filter, self.rngs.get(bank), &self.config, victim) {
            actions.push(MitigationAction::RefreshRow { bank, row: victim });
        }
    }
}

/// Re-inserts `victim` at the queue front given its scan result, keeps
/// the membership filter coherent, and draws — the shared tail of both
/// decision paths.  A found victim moves without a net filter change
/// (one removal, one re-insertion); a miss adds it and removes whatever
/// the bounded queue evicts.
#[inline]
fn requeue_and_draw(
    queue: &mut VecDeque<RowAddr>,
    filter: &mut QueueFilter,
    rng: &mut StdRng,
    config: &MrLocConfig,
    victim: RowAddr,
    position: Option<usize>,
    probability: f64,
) -> bool {
    if let Some(pos) = position {
        queue.remove(pos);
    } else {
        filter.add(victim);
    }
    queue.push_front(victim);
    if queue.len() > config.queue_entries {
        let evicted = *queue.back().expect("queue was just pushed to");
        filter.remove(evicted);
        queue.truncate(config.queue_entries);
    }

    rng.random_bool(probability)
}

/// One victim-candidate lookup: computes the locality-weighted
/// probability, updates the queue, and draws.  Shared by the scalar
/// path and the lane kernel so both consume the per-bank stream
/// identically (one word per candidate).
fn victim_fires(
    queue: &mut VecDeque<RowAddr>,
    filter: &mut QueueFilter,
    rng: &mut StdRng,
    config: &MrLocConfig,
    victim: RowAddr,
) -> bool {
    // Weighted probability: age 0 (front) → max; beyond the queue →
    // min.
    let probability = match queue.iter().position(|&r| r == victim) {
        Some(age) => {
            let span = config.max_probability - config.min_probability;
            let weight = 1.0 - age as f64 / config.queue_entries as f64;
            config.min_probability + span * weight
        }
        None => config.min_probability,
    };
    // Re-insert the victim at the front (most recent), deduplicated —
    // the paper's two-step formulation, scanning again for the dedup.
    let position = queue.iter().position(|&r| r == victim);
    requeue_and_draw(queue, filter, rng, config, victim, position, probability)
}

/// Kernel-path victim decision: behaviorally identical to
/// [`victim_fires`] — same probability formula, same queue mutations,
/// same single stream draw — but engineered around the scans that
/// dominate MRLoc's per-event cost.  The membership filter rejects the
/// dominant miss case without touching the queue; a possible hit pays
/// *one* merged scan (age lookup and dedup position search for the same
/// victim) over the deque's contiguous slices.  The scalar reference
/// keeps the paper's two-step formulation.
fn victim_fires_merged(
    queue: &mut VecDeque<RowAddr>,
    filter: &mut QueueFilter,
    rng: &mut StdRng,
    config: &MrLocConfig,
    victim: RowAddr,
) -> bool {
    let position = if filter.may_contain(victim) {
        let (front, back) = queue.as_slices();
        front.iter().position(|&r| r == victim).or_else(
            // Same index space as `queue.iter().position`: the back
            // slice continues where the front slice ends.
            || back.iter().position(|&r| r == victim).map(|p| p + front.len()),
        )
    } else {
        None
    };
    let probability = match position {
        Some(age) => {
            let span = config.max_probability - config.min_probability;
            let weight = 1.0 - age as f64 / config.queue_entries as f64;
            config.min_probability + span * weight
        }
        None => config.min_probability,
    };
    requeue_and_draw(queue, filter, rng, config, victim, position, probability)
}

impl Mitigation for MrLoc {
    fn name(&self) -> &str {
        "MRLoc"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        // MRLoc assumes neighbors are row±1 (the paper criticises exactly
        // this assumption in §II — remapped rows escape it).
        if row.0 > 0 {
            self.handle_victim(bank, RowAddr(row.0 - 1), actions);
        }
        if row.0 + 1 < self.config.rows_per_bank {
            self.handle_victim(bank, RowAddr(row.0 + 1), actions);
        }
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: the trigger probability depends on the queue
        // state at each candidate, so the draws cannot be prefetched —
        // instead the queue, filter and stream lookups are hoisted once
        // per bank run, the kernel walks the row column directly, and
        // each candidate pays a filter probe plus at most one merged
        // queue scan ([`victim_fires_merged`]) instead of the reference
        // path's two scans.
        let rows_per_bank = self.config.rows_per_bank;
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let queue = &mut self.queues[bank.index()];
            let filter = &mut self.filters[bank.index()];
            let rng = self.rngs.get(bank);
            for i in run {
                let row = rows[i];
                if row.0 > 0 {
                    let victim = RowAddr(row.0 - 1);
                    if victim_fires_merged(queue, &mut *filter, &mut *rng, &self.config, victim) {
                        // lint: allow(D5) — event tag: segment indices fit u32.
                        sink.push(i as u32, MitigationAction::RefreshRow { bank, row: victim });
                    }
                }
                if row.0 + 1 < rows_per_bank {
                    let victim = RowAddr(row.0 + 1);
                    if victim_fires_merged(queue, &mut *filter, &mut *rng, &self.config, victim) {
                        // lint: allow(D5) — event tag: segment indices fit u32.
                        sink.push(i as u32, MitigationAction::RefreshRow { bank, row: victim });
                    }
                }
            }
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {}

    fn storage_bits_per_bank(&self) -> u64 {
        let row_bits = u64::from(u32::BITS - (self.config.rows_per_bank - 1).leading_zeros());
        self.config.queue_entries as u64 * (row_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrloc() -> MrLoc {
        MrLoc::paper(&Geometry::paper().with_banks(1), 5)
    }

    #[test]
    fn queue_keeps_most_recent_victims() {
        let mut m = mrloc();
        let mut actions = Vec::new();
        m.on_activate(BankId(0), RowAddr(100), &mut actions);
        assert_eq!(m.queues[0].front(), Some(&RowAddr(101)));
        assert!(m.queues[0].contains(&RowAddr(99)));
    }

    #[test]
    fn queue_is_bounded_and_deduplicated() {
        let mut m = mrloc();
        let mut actions = Vec::new();
        for r in 0..200u32 {
            m.on_activate(BankId(0), RowAddr(1 + r % 80), &mut actions);
        }
        assert!(m.queues[0].len() <= m.config.queue_entries);
        let mut sorted: Vec<_> = m.queues[0].iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), m.queues[0].len(), "duplicates in queue");
    }

    #[test]
    fn hammering_gets_higher_rate_than_scattered_access() {
        let trials = 300_000;
        let mut hammer = mrloc();
        let mut actions = Vec::new();
        for _ in 0..trials {
            hammer.on_activate(BankId(0), RowAddr(4000), &mut actions);
        }
        let hammer_triggers = actions.len();

        let mut scattered = mrloc();
        let mut actions = Vec::new();
        for i in 0..trials {
            scattered.on_activate(BankId(0), RowAddr(10 + (i * 97) % 50_000), &mut actions);
        }
        let scattered_triggers = actions.len();

        assert!(
            hammer_triggers as f64 > 2.0 * scattered_triggers as f64,
            "hammer {hammer_triggers} vs scattered {scattered_triggers}"
        );
    }

    #[test]
    fn overall_rate_is_para_class() {
        // Hammered traffic should trigger near 2 · max_probability per
        // activation (both victims at the queue head).
        let mut m = mrloc();
        let mut actions = Vec::new();
        let trials = 500_000;
        for _ in 0..trials {
            m.on_activate(BankId(0), RowAddr(4000), &mut actions);
        }
        let rate = actions.len() as f64 / trials as f64;
        let expected = 2.0 * m.config.max_probability;
        assert!((rate - expected).abs() < expected * 0.3, "rate {rate}");
    }

    #[test]
    fn storage_is_hundreds_of_bytes() {
        let m = mrloc();
        let bytes = m.storage_bytes_per_bank();
        assert!(bytes > 50.0 && bytes < 500.0, "got {bytes}");
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        // High probabilities so the assertion compares real triggers.
        let mut cfg = MrLocConfig::paper(&Geometry::paper().with_banks(3));
        cfg.max_probability = 0.6;
        cfg.min_probability = 0.2;
        let mut kernel = MrLoc::new(cfg, 13);
        let mut scalar = MrLoc::new(cfg, 13);

        let mut events = Vec::new();
        for i in 0..512u32 {
            events.push(TraceEvent::benign(BankId(i % 3), RowAddr(200 + i % 13)));
        }
        let mut batch = EventBatch::new();
        batch.push_interval(&events);
        let mut sink = ActionSink::new();
        kernel.on_batch(&batch, batch.segment(0), &mut sink);

        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..u32::try_from(events.len()).expect("fits") {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(!drained.is_empty());
        assert_eq!(kernel.queues, scalar.queues);
        assert_eq!(kernel.filters, scalar.filters);
    }

    #[test]
    fn filter_mirrors_queue_membership() {
        // After arbitrary mixed traffic — churn past the queue bound,
        // repeats, both decision paths — every filter slot must count
        // exactly the queued rows hashing there, including rows whose
        // addresses collide modulo the filter size.
        let mut m = MrLoc::paper(&Geometry::paper().with_banks(2), 7);
        let mut actions = Vec::new();
        for i in 0..5000u32 {
            let row = RowAddr(1 + (i * 37) % 3000);
            m.on_activate(BankId(i % 2), row, &mut actions);
        }
        use mem_trace::TraceEvent;
        let events: Vec<TraceEvent> = (0..512)
            .map(|i| TraceEvent::benign(BankId(i % 2), RowAddr(1 + (i * 13) % 2100)))
            .collect();
        let mut batch = EventBatch::new();
        batch.push_interval(&events);
        let mut sink = ActionSink::new();
        m.on_batch(&batch, batch.segment(0), &mut sink);

        for (queue, filter) in m.queues.iter().zip(&m.filters) {
            let mut expected = QueueFilter::new();
            for &row in queue {
                expected.add(row);
            }
            assert_eq!(filter, &expected);
        }
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn min_above_max_rejected() {
        let mut cfg = MrLocConfig::paper(&Geometry::paper());
        cfg.min_probability = 0.5;
        cfg.max_probability = 0.1;
        let _ = MrLoc::new(cfg, 1);
    }
}
