//! MRLoc (You & Yang, DAC 2019 — "MRLoc: Mitigating Row-hammering based
//! on memory Locality").
//!
//! MRLoc refines PARA with *memory locality*: a per-bank FIFO queue
//! remembers recently seen victim candidates (the neighbors of activated
//! rows).  When a victim candidate reappears, the trigger probability is
//! weighted by how recently it was last seen — victims of rows hammered
//! in tight loops (the row-hammer signature) get near-maximal
//! probability, while victims of well-spread benign traffic stay near the
//! minimum.  As the paper notes, MRLoc "slightly reduces the false
//! positive rate but ends up with a higher or equal number of extra
//! activations compared to PARA" and stays vulnerable to the same
//! adaptive patterns.

use dram_sim::{BankId, Geometry, RowAddr};
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tivapromi::{BankRngs, Mitigation, MitigationAction};

/// Configuration of an [`MrLoc`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrLocConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Queue entries per bank.
    pub queue_entries: usize,
    /// Probability for a victim at the *newest* queue position; scales
    /// down linearly with queue age.
    pub max_probability: f64,
    /// Probability for a victim not present in the queue.
    pub min_probability: f64,
}

impl MrLocConfig {
    /// The DAC 2019-style configuration calibrated against the paper's
    /// Table III: overhead at or slightly above PARA's (0.11 % vs
    /// 0.1 %) with a slightly smaller false-positive share.
    pub fn paper(geometry: &Geometry) -> Self {
        MrLocConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            queue_entries: 64,
            max_probability: 0.0011,
            min_probability: 0.0002,
        }
    }
}

/// The MRLoc mitigation.
///
/// ```
/// use rh_baselines::MrLoc;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut mrloc = MrLoc::paper(&Geometry::paper(), 11);
/// let mut actions = Vec::new();
/// for _ in 0..200_000 {
///     mrloc.on_activate(BankId(0), RowAddr(4000), &mut actions);
/// }
/// // A hammered row's victims stay at the queue head → near-max p.
/// assert!(!actions.is_empty());
/// assert!(actions.iter().all(|a| a.row().0 == 3999 || a.row().0 == 4001));
/// ```
#[derive(Debug)]
pub struct MrLoc {
    config: MrLocConfig,
    /// Per-bank victim queue; front = newest.
    queues: Vec<VecDeque<RowAddr>>,
    rngs: BankRngs,
}

impl MrLoc {
    /// Creates MRLoc from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the queue size is zero or the probabilities are not in
    /// `[0, 1]` with `min ≤ max`.
    pub fn new(config: MrLocConfig, seed: u64) -> Self {
        assert!(config.queue_entries > 0, "queue must be nonempty");
        assert!(
            (0.0..=1.0).contains(&config.max_probability)
                && (0.0..=1.0).contains(&config.min_probability)
                && config.min_probability <= config.max_probability,
            "probabilities must satisfy 0 ≤ min ≤ max ≤ 1"
        );
        MrLoc {
            queues: (0..config.banks).map(|_| VecDeque::new()).collect(),
            config,
            rngs: BankRngs::new(seed),
        }
    }

    /// The paper-calibrated configuration (see [`MrLocConfig::paper`]).
    pub fn paper(geometry: &Geometry, seed: u64) -> Self {
        MrLoc::new(MrLocConfig::paper(geometry), seed)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MrLocConfig {
        &self.config
    }

    fn handle_victim(
        &mut self,
        bank: BankId,
        victim: RowAddr,
        actions: &mut Vec<MitigationAction>,
    ) {
        let queue = &mut self.queues[bank.index()];
        // Weighted probability: age 0 (front) → max; beyond the queue →
        // min.
        let probability = match queue.iter().position(|&r| r == victim) {
            Some(age) => {
                let span = self.config.max_probability - self.config.min_probability;
                let weight = 1.0 - age as f64 / self.config.queue_entries as f64;
                self.config.min_probability + span * weight
            }
            None => self.config.min_probability,
        };
        // Re-insert the victim at the front (most recent), deduplicated.
        if let Some(pos) = queue.iter().position(|&r| r == victim) {
            queue.remove(pos);
        }
        queue.push_front(victim);
        queue.truncate(self.config.queue_entries);

        if self.rngs.get(bank).random_bool(probability) {
            actions.push(MitigationAction::RefreshRow { bank, row: victim });
        }
    }
}

impl Mitigation for MrLoc {
    fn name(&self) -> &str {
        "MRLoc"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        // MRLoc assumes neighbors are row±1 (the paper criticises exactly
        // this assumption in §II — remapped rows escape it).
        if row.0 > 0 {
            self.handle_victim(bank, RowAddr(row.0 - 1), actions);
        }
        if row.0 + 1 < self.config.rows_per_bank {
            self.handle_victim(bank, RowAddr(row.0 + 1), actions);
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {}

    fn storage_bits_per_bank(&self) -> u64 {
        let row_bits = u64::from(u32::BITS - (self.config.rows_per_bank - 1).leading_zeros());
        self.config.queue_entries as u64 * (row_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrloc() -> MrLoc {
        MrLoc::paper(&Geometry::paper().with_banks(1), 5)
    }

    #[test]
    fn queue_keeps_most_recent_victims() {
        let mut m = mrloc();
        let mut actions = Vec::new();
        m.on_activate(BankId(0), RowAddr(100), &mut actions);
        assert_eq!(m.queues[0].front(), Some(&RowAddr(101)));
        assert!(m.queues[0].contains(&RowAddr(99)));
    }

    #[test]
    fn queue_is_bounded_and_deduplicated() {
        let mut m = mrloc();
        let mut actions = Vec::new();
        for r in 0..200u32 {
            m.on_activate(BankId(0), RowAddr(1 + r % 80), &mut actions);
        }
        assert!(m.queues[0].len() <= m.config.queue_entries);
        let mut sorted: Vec<_> = m.queues[0].iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), m.queues[0].len(), "duplicates in queue");
    }

    #[test]
    fn hammering_gets_higher_rate_than_scattered_access() {
        let trials = 300_000;
        let mut hammer = mrloc();
        let mut actions = Vec::new();
        for _ in 0..trials {
            hammer.on_activate(BankId(0), RowAddr(4000), &mut actions);
        }
        let hammer_triggers = actions.len();

        let mut scattered = mrloc();
        let mut actions = Vec::new();
        for i in 0..trials {
            scattered.on_activate(BankId(0), RowAddr(10 + (i * 97) % 50_000), &mut actions);
        }
        let scattered_triggers = actions.len();

        assert!(
            hammer_triggers as f64 > 2.0 * scattered_triggers as f64,
            "hammer {hammer_triggers} vs scattered {scattered_triggers}"
        );
    }

    #[test]
    fn overall_rate_is_para_class() {
        // Hammered traffic should trigger near 2 · max_probability per
        // activation (both victims at the queue head).
        let mut m = mrloc();
        let mut actions = Vec::new();
        let trials = 500_000;
        for _ in 0..trials {
            m.on_activate(BankId(0), RowAddr(4000), &mut actions);
        }
        let rate = actions.len() as f64 / trials as f64;
        let expected = 2.0 * m.config.max_probability;
        assert!((rate - expected).abs() < expected * 0.3, "rate {rate}");
    }

    #[test]
    fn storage_is_hundreds_of_bytes() {
        let m = mrloc();
        let bytes = m.storage_bytes_per_bank();
        assert!(bytes > 50.0 && bytes < 500.0, "got {bytes}");
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn min_above_max_rejected() {
        let mut cfg = MrLocConfig::paper(&Geometry::paper());
        cfg.min_probability = 0.5;
        cfg.max_probability = 0.1;
        let _ = MrLoc::new(cfg, 1);
    }
}
