//! Graphene (Park et al., MICRO 2020 — "Graphene: Strong yet
//! Lightweight Row Hammer Protection") — an extension beyond the
//! paper's comparison set.
//!
//! Published the year before TiVaPRoMi, Graphene applies the
//! Misra–Gries frequent-item algorithm to row tracking: a small table
//! of `(row, counter)` pairs plus one *spillover* counter.  The
//! Misra–Gries invariant guarantees that any row activated at least
//! `W / (entries + 1)` times within a window of `W` activations is in
//! the table with a count that underestimates its true count by at most
//! the spillover value — so with enough entries, no aggressor can reach
//! the row-hammer threshold untracked.  This gives TWiCe-class
//! deterministic protection from a TiVaPRoMi-class table size, which is
//! why it makes an interesting extra point on the Fig. 4 plane.

use dram_sim::{BankId, Geometry, RowAddr, FLIP_THRESHOLD};
use mem_trace::EventBatch;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use tivapromi::{ActionSink, Mitigation, MitigationAction};

/// Configuration of a [`Graphene`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrapheneConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Table entries per bank.
    pub entries: usize,
    /// Estimated count at which `act_n` fires (`th_RH / 4`).
    pub trigger_threshold: u32,
    /// Refresh intervals per window (reset period).
    pub intervals_per_window: u32,
}

impl GrapheneConfig {
    /// Sizing from the Misra–Gries bound at the paper's parameters:
    /// a window carries at most `W = 165 × 8192 ≈ 1.35 M` activations
    /// per bank; an entry count of `⌈W / th⌉ + margin` with
    /// `th = 139 000 / 4` guarantees every potential aggressor is
    /// tracked before its victims are at risk.
    pub fn paper(geometry: &Geometry) -> Self {
        let trigger_threshold = FLIP_THRESHOLD / 4;
        let window_acts = 165u64 * u64::from(geometry.intervals_per_window());
        let entries = usize::try_from(window_acts / u64::from(trigger_threshold) + 9)
            .expect("Misra-Gries entry count fits usize");
        GrapheneConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            entries,
            trigger_threshold,
            intervals_per_window: geometry.intervals_per_window(),
        }
    }
}

/// Per-bank Misra–Gries state.
#[derive(Debug, Clone, Default)]
struct Summary {
    /// `(row, estimated count)` pairs.
    entries: Vec<(RowAddr, u32)>,
    /// The spillover counter.
    spillover: u32,
    /// Activation counts already "spent" on triggers, per entry index —
    /// a trigger fires each time the estimate crosses another multiple
    /// of the threshold.
    fired: Vec<u32>,
}

impl Summary {
    /// One Misra–Gries update; returns whether the estimate crossed
    /// another threshold multiple (→ `act_n`).  Shared by the scalar
    /// path and the lane kernel.
    fn observe(&mut self, row: RowAddr, threshold: u32, capacity: usize) -> bool {
        let index = if let Some(i) = self.entries.iter().position(|(r, _)| *r == row) {
            self.entries[i].1 += 1;
            Some(i)
        } else if self.entries.len() < capacity {
            self.entries.push((row, self.spillover + 1));
            self.fired.push(0);
            Some(self.entries.len() - 1)
        } else {
            // Misra–Gries replacement: if some entry's count equals the
            // spillover, it is indistinguishable from untracked traffic —
            // replace it; otherwise the access lands in the spillover.
            let spill = self.spillover;
            if let Some(i) = self.entries.iter().position(|&(_, c)| c == spill) {
                self.entries[i] = (row, spill + 1);
                self.fired[i] = 0;
                Some(i)
            } else {
                self.spillover += 1;
                None
            }
        };

        if let Some(i) = index {
            let count = self.entries[i].1;
            // Fire each time the estimate crosses another threshold
            // multiple.
            if count / threshold > self.fired[i] {
                self.fired[i] = count / threshold;
                return true;
            }
        }
        false
    }

    /// Window reset in place: the entry and fired lanes keep their
    /// capacity so steady-state windows never touch the heap.
    fn reset(&mut self) {
        self.entries.clear();
        self.fired.clear();
        self.spillover = 0;
    }
}

/// The Graphene mitigation.
///
/// ```
/// use rh_baselines::Graphene;
/// use tivapromi::Mitigation;
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let mut graphene = Graphene::paper(&Geometry::paper());
/// let mut actions = Vec::new();
/// for _ in 0..34_750 {
///     graphene.on_activate(BankId(0), RowAddr(77), &mut actions);
/// }
/// assert_eq!(actions.len(), 1); // deterministic, like the tabled counters
/// ```
#[derive(Debug)]
pub struct Graphene {
    config: GrapheneConfig,
    banks: Vec<Summary>,
    interval: u32,
}

impl Graphene {
    /// Creates Graphene from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the table or threshold is zero-sized.
    pub fn new(config: GrapheneConfig) -> Self {
        assert!(config.entries > 0, "table must be nonempty");
        assert!(config.trigger_threshold > 0, "threshold must be nonzero");
        Graphene {
            banks: (0..config.banks).map(|_| Summary::default()).collect(),
            config,
            interval: 0,
        }
    }

    /// The MICRO 2020 sizing for this geometry.
    pub fn paper(geometry: &Geometry) -> Self {
        Graphene::new(GrapheneConfig::paper(geometry))
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    /// Current estimated count for `row` (diagnostic).
    pub fn estimate(&self, bank: BankId, row: RowAddr) -> Option<u32> {
        self.banks[bank.index()]
            .entries
            .iter()
            .find(|(r, _)| *r == row)
            .map(|&(_, c)| c)
    }
}

impl Mitigation for Graphene {
    fn name(&self) -> &str {
        "Graphene"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let threshold = self.config.trigger_threshold;
        let capacity = self.config.entries;
        if self.banks[bank.index()].observe(row, threshold, capacity) {
            actions.push(MitigationAction::ActivateNeighbors { bank, row });
        }
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: the bank's Misra–Gries summary is hoisted once
        // per run and the threshold/capacity scalars stay in registers.
        let threshold = self.config.trigger_threshold;
        let capacity = self.config.entries;
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let summary = &mut self.banks[bank.index()];
            for i in run {
                let row = rows[i];
                if summary.observe(row, threshold, capacity) {
                    // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
                    sink.push(i as u32, MitigationAction::ActivateNeighbors { bank, row });
                }
            }
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {
        self.interval += 1;
        if self.interval == self.config.intervals_per_window {
            self.interval = 0;
            for summary in &mut self.banks {
                summary.reset();
            }
        }
    }

    fn storage_bits_per_bank(&self) -> u64 {
        let row_bits = u64::from(u32::BITS - (self.config.rows_per_bank - 1).leading_zeros());
        let count_bits = u64::from(u32::BITS - self.config.trigger_threshold.leading_zeros()) + 2;
        // Entries + the spillover counter.
        self.config.entries as u64 * (row_bits + count_bits + 1) + count_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graphene() -> Graphene {
        Graphene::paper(&Geometry::paper().with_banks(1))
    }

    #[test]
    fn paper_sizing_is_tivapromi_class() {
        let g = graphene();
        assert_eq!(g.config().entries, 47); // ⌈1.35 M / 34 750⌉ + 9
        let bytes = g.storage_bytes_per_bank();
        assert!(bytes > 100.0 && bytes < 400.0, "got {bytes}");
    }

    #[test]
    fn deterministic_trigger_at_threshold_multiples() {
        let mut g = graphene();
        let mut actions = Vec::new();
        for _ in 0..(34_750 * 3) {
            g.on_activate(BankId(0), RowAddr(9), &mut actions);
        }
        assert_eq!(actions.len(), 3);
    }

    #[test]
    fn misra_gries_underestimate_is_bounded_by_spillover() {
        // Hammer one row among heavy scattered noise: the estimate may
        // lag the true count, but by at most the spillover.
        let mut g = graphene();
        let mut actions = Vec::new();
        let mut true_count = 0u32;
        for i in 0..200_000u32 {
            if i % 3 == 0 {
                g.on_activate(BankId(0), RowAddr(9), &mut actions);
                true_count += 1;
            } else {
                g.on_activate(BankId(0), RowAddr(20_000 + (i * 7) % 30_000), &mut actions);
            }
        }
        let estimate = g.estimate(BankId(0), RowAddr(9)).expect("hot row tracked");
        let spill = g.banks[0].spillover;
        assert!(estimate <= true_count + spill, "over-estimate too large");
        assert!(
            estimate + spill >= true_count,
            "under-estimate beyond MG bound"
        );
    }

    #[test]
    fn hot_rows_survive_scattered_pressure() {
        let mut g = graphene();
        let mut actions = Vec::new();
        for i in 0..500_000u32 {
            // One row at 1/4 of the traffic, the rest scattered.
            if i % 4 == 0 {
                g.on_activate(BankId(0), RowAddr(9), &mut actions);
            } else {
                g.on_activate(BankId(0), RowAddr((i * 13) % 65_536), &mut actions);
            }
        }
        assert!(g.estimate(BankId(0), RowAddr(9)).is_some());
        assert!(!actions.is_empty(), "the hot row crossed th multiple times");
    }

    #[test]
    fn window_reset_clears_summaries() {
        let mut g = graphene();
        let mut actions = Vec::new();
        for _ in 0..100 {
            g.on_activate(BankId(0), RowAddr(9), &mut actions);
        }
        assert!(g.estimate(BankId(0), RowAddr(9)).is_some());
        for _ in 0..8192 {
            g.on_refresh_interval(&mut actions);
        }
        assert!(g.estimate(BankId(0), RowAddr(9)).is_none());
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use mem_trace::TraceEvent;
        use tivapromi::ActionSink;
        let cfg = GrapheneConfig {
            trigger_threshold: 25,
            ..GrapheneConfig::paper(&Geometry::paper().with_banks(3))
        };
        let mut kernel = Graphene::new(cfg);
        let mut scalar = Graphene::new(cfg);

        let mut events = Vec::new();
        for i in 0..512u32 {
            events.push(TraceEvent::benign(BankId(i % 3), RowAddr(500 + i % 6)));
        }
        let mut batch = EventBatch::new();
        batch.push_interval(&events);
        let mut sink = ActionSink::new();
        kernel.on_batch(&batch, batch.segment(0), &mut sink);

        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..u32::try_from(events.len()).expect("fits") {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(!drained.is_empty());
        for (k, s) in kernel.banks.iter().zip(&scalar.banks) {
            assert_eq!(k.entries, s.entries);
            assert_eq!(k.fired, s.fired);
            assert_eq!(k.spillover, s.spillover);
        }
    }

    #[test]
    fn table_never_exceeds_capacity() {
        let mut g = graphene();
        let mut actions = Vec::new();
        for i in 0..100_000u32 {
            g.on_activate(BankId(0), RowAddr(i % 65_536), &mut actions);
        }
        assert!(g.banks[0].entries.len() <= g.config().entries);
    }
}
