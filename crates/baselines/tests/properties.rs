//! Property-based tests for the baseline mitigations — including the
//! executable versions of their papers' safety arguments.

use dram_sim::{BankId, Geometry, RowAddr};
use proptest::prelude::*;
use rh_baselines::{CounterTree, Cra, MrLoc, Para, ProHit, TwiCe};
use tivapromi::{Mitigation, MitigationAction};

fn geometry() -> Geometry {
    Geometry::paper().with_banks(1)
}

/// Replays a random activation schedule (bounded by the DDR4 165 per
/// interval) against a mitigation plus the disturbance model, and
/// reports the maximum disturbance any row reached.
fn co_simulate(
    mitigation: &mut dyn Mitigation,
    schedule: &[(u32, u8)], // (row, activations this interval)
) -> u32 {
    let geometry = geometry();
    let mut device = dram_sim::DramDevice::new(geometry);
    let mut actions: Vec<MitigationAction> = Vec::new();
    for &(row, count) in schedule {
        for _ in 0..count {
            device.apply(dram_sim::Command::Activate {
                bank: BankId(0),
                row: RowAddr(row),
            });
            mitigation.on_activate(BankId(0), RowAddr(row), &mut actions);
            for a in actions.drain(..) {
                device.apply(a.to_command());
            }
        }
        device.apply(dram_sim::Command::Refresh);
        mitigation.on_refresh_interval(&mut actions);
        for a in actions.drain(..) {
            device.apply(a.to_command());
        }
    }
    device.max_disturbance_seen()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TWiCe's safety argument, executable: under any activation pattern
    /// bounded by the per-interval maximum, no row's disturbance exceeds
    /// 4× the trigger threshold (the pruning proof's envelope), which is
    /// strictly below the 139 K flip threshold.
    #[test]
    fn twice_bounds_disturbance(
        schedule in proptest::collection::vec((29_990u32..30_010, 0u8..165), 1..300),
    ) {
        let mut twice = TwiCe::paper(&geometry());
        let max = co_simulate(&mut twice, &schedule);
        prop_assert!(max < 139_000, "disturbance {max}");
        prop_assert!(max <= 4 * twice.config().trigger_threshold + 330, "envelope {max}");
    }

    /// CRA with the th/4 trigger keeps every row below the flip
    /// threshold under any bounded pattern.
    #[test]
    fn cra_bounds_disturbance(
        schedule in proptest::collection::vec((0u32..32, 0u8..165), 1..300),
    ) {
        let mut cra = Cra::paper(&geometry());
        let max = co_simulate(&mut cra, &schedule);
        prop_assert!(max < 139_000, "disturbance {max}");
    }

    /// TWiCe triggers deterministically: a row activated exactly
    /// `trigger_threshold` times without interval boundaries fires
    /// exactly once.
    #[test]
    fn twice_trigger_is_exact(extra in 0u32..1000) {
        let mut twice = TwiCe::paper(&geometry());
        let threshold = twice.config().trigger_threshold;
        let mut actions = Vec::new();
        for _ in 0..threshold + extra {
            twice.on_activate(BankId(0), RowAddr(42), &mut actions);
        }
        let expected = 1 + extra / threshold;
        prop_assert_eq!(actions.len() as u32, expected);
        prop_assert!(actions.iter().all(|a| a.row() == RowAddr(42)));
    }

    /// PARA's empirical trigger rate concentrates around p (law of large
    /// numbers with a generous band).
    #[test]
    fn para_rate_concentrates(seed in any::<u64>()) {
        let mut para = Para::new(0.01, 65_536, seed);
        let mut actions = Vec::new();
        for _ in 0..50_000 {
            para.on_activate(BankId(0), RowAddr(100), &mut actions);
        }
        let rate = actions.len() as f64 / 50_000.0;
        prop_assert!((rate - 0.01).abs() < 0.004, "rate {rate}");
    }

    /// MRLoc's queue stays bounded and duplicate-free for any traffic.
    #[test]
    fn mrloc_queue_invariants(
        rows in proptest::collection::vec(1u32..1000, 1..500),
        seed in any::<u64>(),
    ) {
        let mut mrloc = MrLoc::paper(&geometry(), seed);
        let mut actions = Vec::new();
        for row in rows {
            mrloc.on_activate(BankId(0), RowAddr(row), &mut actions);
            actions.clear();
        }
        // Indirectly observable: storage accounting stays constant and
        // every emitted refresh targets a neighbor of some activated row
        // (checked by construction); here we just ensure no panic and
        // bounded state via a second burst.
        for row in 0..200u32 {
            mrloc.on_activate(BankId(0), RowAddr(row * 3 + 1), &mut actions);
        }
        prop_assert!(mrloc.storage_bits_per_bank() > 0);
    }

    /// ProHit's refresh stream only ever names victim candidates —
    /// neighbors of previously activated rows.
    #[test]
    fn prohit_refreshes_only_candidates(
        rows in proptest::collection::vec(10u32..1000, 1..300),
        seed in any::<u64>(),
    ) {
        let mut prohit = ProHit::paper(&geometry(), seed);
        let mut candidates = std::collections::HashSet::new();
        let mut actions = Vec::new();
        for chunk in rows.chunks(10) {
            for &row in chunk {
                candidates.insert(row - 1);
                candidates.insert(row + 1);
                prohit.on_activate(BankId(0), RowAddr(row), &mut actions);
                prop_assert!(actions.is_empty(), "ProHit acts only at intervals");
            }
            prohit.on_refresh_interval(&mut actions);
            for a in actions.drain(..) {
                prop_assert!(candidates.contains(&a.row().0), "refresh of {}", a.row());
            }
        }
    }

    /// The CAT tree never exceeds its node budget and isolates hammered
    /// rows without triggering on scattered traffic.
    #[test]
    fn cat_node_budget_holds(
        rows in proptest::collection::vec(0u32..65_536, 1..2000),
    ) {
        let mut cat = CounterTree::paper(&geometry());
        let mut actions = Vec::new();
        for row in rows {
            cat.on_activate(BankId(0), RowAddr(row), &mut actions);
            actions.clear();
        }
        prop_assert!(cat.peak_nodes() <= cat.config().max_nodes);
    }
}
