//! Concurrency model check for the chunked `fetch_add` dispatcher.
//!
//! The determinism suite (`tests/determinism.rs`) proves sequential ≡
//! sharded ≡ batched on *sampled* schedules — whatever interleavings
//! the OS happens to produce.  This test closes the gap: it models the
//! dispatcher claim loop and the shard-merge join as a small state
//! machine and lets the vendored `interleave` explorer run **every**
//! interleaving of 2–3 workers, asserting on each terminal state that
//!
//! 1. every job index is dispatched to exactly one worker (claim
//!    uniqueness — the property the `Ordering::Relaxed` audit in
//!    `src/parallel.rs` rests on),
//! 2. every result slot is written exactly once, with the value the
//!    sequential run would produce (order preservation),
//! 3. folding the workers' shard partials with the *real*
//!    [`RunMetrics::merge`] yields the sequential merge, for every
//!    possible partition of jobs onto workers (merge algebra).
//!
//! A negative model seeds the classic bug — the claim split into a
//! non-atomic read step and write step — and asserts the explorer
//! *finds* the duplicate dispatch, so the green runs above are
//! evidence and not vacuity.

use interleave::{any_schedule, explore, Model};
use rh_harness::metrics::RunMetrics;

/// Per-job metrics fixture: distinct counters per index plus staggered
/// `Option` firsts so the min-over-`Option` legs of the merge algebra
/// are exercised, not just the sums.
fn job_metrics(index: usize) -> RunMetrics {
    let i = index as u64;
    RunMetrics {
        technique: "model".to_string(),
        workload_activations: 10 * (i + 1),
        aggressor_activations: 3 * i,
        mitigation_activations: i,
        trigger_events: i % 3,
        false_positive_events: i % 2,
        flips: index % 2,
        max_disturbance: u32::try_from(100 + 7 * i).expect("small fixture"),
        flip_threshold: 1000,
        first_trigger_act: if index.is_multiple_of(2) { Some(50 - i) } else { None },
        time_to_first_flip: if index >= 3 { Some(90 - i) } else { None },
        storage_bytes_per_bank: 8.0,
        intervals: 5 + i,
        timeseries: None,
    }
}

/// The sequential reference: jobs merged left-to-right in input order.
fn sequential_merge(len: usize) -> RunMetrics {
    (1..len).fold(job_metrics(0), |acc, i| acc.merge(job_metrics(i)))
}

/// One modeled worker: either between claims (`range == None`) or
/// processing its claimed chunk one index per step.
#[derive(Clone)]
struct Worker {
    range: Option<(usize, usize)>,
    partial: Option<RunMetrics>,
    done: bool,
    /// Broken-variant staging: a cursor value read but not yet
    /// published.  Always `None` in the sound model.
    staged_read: Option<usize>,
}

#[derive(Clone)]
struct State {
    cursor: usize,
    workers: Vec<Worker>,
    /// Result slots, mirroring `Slots` in `src/parallel.rs`.
    slots: Vec<Option<RunMetrics>>,
    /// Dispatch count per job index; the sound model must end with
    /// every entry exactly 1.
    dispatched: Vec<u32>,
}

/// Models `map_workers`' claim loop faithfully: the claim — a read of
/// the cursor and its advance — is ONE atomic step, exactly like the
/// `fetch_add` in `Dispatcher::claim`; each per-index take/compute/
/// write is a separate step, so claims and writes of different workers
/// interleave freely.
struct DispatcherModel {
    workers: usize,
    len: usize,
    chunk: usize,
}

impl DispatcherModel {
    fn process_one(&self, state: &mut State, t: usize) {
        let worker = &mut state.workers[t];
        let (index, end) = worker.range.expect("processing without a claim");
        state.dispatched[index] += 1;
        let out = job_metrics(index);
        worker.partial = Some(match worker.partial.take() {
            Some(acc) => acc.merge(out.clone()),
            None => out.clone(),
        });
        state.slots[index] = Some(out);
        worker.range = if index + 1 < end {
            Some((index + 1, end))
        } else {
            None
        };
    }

    fn finish_claim(&self, state: &mut State, t: usize, start: usize) {
        let worker = &mut state.workers[t];
        if start >= self.len {
            worker.done = true;
        } else {
            worker.range = Some((start, (start + self.chunk).min(self.len)));
        }
    }
}

impl Model for DispatcherModel {
    type State = State;

    fn initial(&self) -> State {
        State {
            cursor: 0,
            workers: vec![
                Worker {
                    range: None,
                    partial: None,
                    done: false,
                    staged_read: None,
                };
                self.workers
            ],
            slots: vec![None; self.len],
            dispatched: vec![0; self.len],
        }
    }

    fn threads(&self) -> usize {
        self.workers
    }

    fn runnable(&self, state: &State, t: usize) -> bool {
        !state.workers[t].done
    }

    fn step(&self, state: &mut State, t: usize) {
        if state.workers[t].range.is_some() {
            self.process_one(state, t);
        } else {
            // The atomic claim: read + advance in one indivisible step.
            let start = state.cursor;
            state.cursor += self.chunk;
            self.finish_claim(state, t, start);
        }
    }

    fn check(&self, state: &State, schedule: &[usize]) {
        // 1. Claim uniqueness: each index dispatched exactly once.
        for (index, &count) in state.dispatched.iter().enumerate() {
            assert_eq!(count, 1, "index {index} dispatched {count}× under {schedule:?}");
        }
        // 2. Order preservation: slot i holds the sequential f(i).
        for (index, slot) in state.slots.iter().enumerate() {
            assert_eq!(
                slot.as_ref(),
                Some(&job_metrics(index)),
                "slot {index} wrong under {schedule:?}"
            );
        }
        // 3. Merge algebra: folding the shard partials in worker-id
        // order (what the engine does after the scope joins) equals the
        // sequential merge, whatever partition this schedule produced.
        let merged = state
            .workers
            .iter()
            .filter_map(|w| w.partial.clone())
            .reduce(RunMetrics::merge)
            .expect("at least one worker claimed jobs");
        assert_eq!(merged, sequential_merge(self.len), "merge diverged under {schedule:?}");
    }
}

#[test]
fn dispatcher_sound_under_every_interleaving() {
    // Worker/len/chunk matrix from the engine's real operating points:
    // 2–3 workers, more jobs than workers, chunks of 1–2.
    for (workers, len, chunk) in [(2, 4, 1), (2, 5, 2), (3, 4, 1), (3, 6, 2)] {
        let stats = explore(&DispatcherModel { workers, len, chunk });
        assert!(
            stats.interleavings > 1,
            "exploration degenerate for {workers}w/{len}j/{chunk}c"
        );
        println!(
            "model ok: {workers} workers, {len} jobs, chunk {chunk}: \
             {} interleavings, {} steps, depth {}",
            stats.interleavings, stats.steps, stats.max_depth
        );
    }
}

/// The seeded bug: the claim decomposed into a *read* step and a
/// *write-back* step, as if the cursor were a plain variable instead of
/// a `fetch_add`.  Two workers may now read the same cursor value.
struct BrokenDispatcherModel {
    inner: DispatcherModel,
}

impl Model for BrokenDispatcherModel {
    type State = State;

    fn initial(&self) -> State {
        self.inner.initial()
    }

    fn threads(&self) -> usize {
        self.inner.workers
    }

    fn runnable(&self, state: &State, t: usize) -> bool {
        !state.workers[t].done
    }

    fn step(&self, state: &mut State, t: usize) {
        if state.workers[t].range.is_some() {
            self.inner.process_one(state, t);
        } else if let Some(start) = state.workers[t].staged_read.take() {
            // Step 2 of the broken claim: publish the advanced cursor.
            // Another worker may have read the same `start` in between.
            state.cursor = start + self.inner.chunk;
            self.inner.finish_claim(state, t, start);
        } else {
            // Step 1 of the broken claim: unsynchronized read.
            state.workers[t].staged_read = Some(state.cursor);
        }
    }

    fn check(&self, _state: &State, _schedule: &[usize]) {
        // Verdicts are taken via `any_schedule` predicates instead.
    }
}

#[test]
fn model_checker_catches_non_atomic_cursor() {
    let broken = BrokenDispatcherModel {
        inner: DispatcherModel {
            workers: 2,
            len: 3,
            chunk: 1,
        },
    };
    // The explorer must surface a schedule where some index is
    // dispatched twice — the lost update the atomic fetch_add rules
    // out.  If this stops failing, the positive test above is vacuous.
    assert!(
        any_schedule(&broken, |s| s.dispatched.iter().any(|&c| c > 1)),
        "explorer failed to find the duplicate dispatch in the broken model"
    );
    // And under the single-threaded schedule everything still works,
    // so the bug really is an interleaving bug, not a modeling bug.
    assert!(any_schedule(&broken, |s| s.dispatched.iter().all(|&c| c == 1)));
}

/// A deliberately order-sensitive fold (first-trigger taken from the
/// *left* operand instead of the min) must be caught as
/// schedule-dependent — demonstrating the merge-algebra assertion has
/// teeth beyond claim uniqueness.
#[test]
fn model_checker_catches_order_sensitive_merge() {
    struct LeftBiasedMerge {
        inner: DispatcherModel,
    }

    impl Model for LeftBiasedMerge {
        type State = State;
        fn initial(&self) -> State {
            self.inner.initial()
        }
        fn threads(&self) -> usize {
            self.inner.workers
        }
        fn runnable(&self, state: &State, t: usize) -> bool {
            !state.workers[t].done
        }
        fn step(&self, state: &mut State, t: usize) {
            if state.workers[t].range.is_some() {
                let worker = &state.workers[t];
                let (index, end) = worker.range.expect("claimed");
                state.dispatched[index] += 1;
                let out = job_metrics(index);
                let worker = &mut state.workers[t];
                worker.partial = Some(match worker.partial.take() {
                    Some(mut acc) => {
                        // The bug: keep the left first_trigger_act
                        // unconditionally instead of taking the min.
                        acc.first_trigger_act = acc.first_trigger_act.or(out.first_trigger_act);
                        let mut merged = acc.clone().merge(out);
                        merged.first_trigger_act = acc.first_trigger_act;
                        merged
                    }
                    None => out,
                });
                state.workers[t].range = if index + 1 < end {
                    Some((index + 1, end))
                } else {
                    None
                };
            } else {
                let start = state.cursor;
                state.cursor += self.inner.chunk;
                self.inner.finish_claim(state, t, start);
            }
        }
        fn check(&self, _state: &State, _schedule: &[usize]) {}
    }

    let model = LeftBiasedMerge {
        inner: DispatcherModel {
            workers: 2,
            len: 4,
            chunk: 1,
        },
    };
    let expected = sequential_merge(4);
    let final_merge = |s: &State| {
        s.workers
            .iter()
            .filter_map(|w| w.partial.clone())
            .reduce(RunMetrics::merge)
            .expect("some worker ran")
    };
    // Some schedule diverges from the sequential merge…
    assert!(
        any_schedule(&model, |s| final_merge(s) != expected),
        "left-biased merge was not caught as schedule-dependent"
    );
    // …while others agree with it, so the divergence is genuinely an
    // interleaving effect.
    assert!(any_schedule(&model, |s| final_merge(s) == expected));
}
