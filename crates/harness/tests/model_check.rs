//! Concurrency model check for the chunked `fetch_add` dispatcher.
//!
//! The determinism suite (`tests/determinism.rs`) proves sequential ≡
//! sharded ≡ batched on *sampled* schedules — whatever interleavings
//! the OS happens to produce.  This test closes the gap: it models the
//! dispatcher claim loop and the shard-merge join as a small state
//! machine and lets the vendored `interleave` explorer run **every**
//! interleaving of 2–3 workers, asserting on each terminal state that
//!
//! 1. every job index is dispatched to exactly one worker (claim
//!    uniqueness — the property the `Ordering::Relaxed` audit in
//!    `src/parallel.rs` rests on),
//! 2. every result slot is written exactly once, with the value the
//!    sequential run would produce (order preservation),
//! 3. folding the workers' shard partials with the *real*
//!    [`RunMetrics::merge`] yields the sequential merge, for every
//!    possible partition of jobs onto workers (merge algebra).
//!
//! A negative model seeds the classic bug — the claim split into a
//! non-atomic read step and write step — and asserts the explorer
//! *finds* the duplicate dispatch, so the green runs above are
//! evidence and not vacuity.
//!
//! The second half extends the check to the fleet's **two-level**
//! scheduler ([`rh_harness::parallel::TwoLevelDispatcher`]): 2–3
//! workers over 2–3 devices × 1–2 bank jobs, asserting device-claim
//! uniqueness (the outer FIFO hands each device to exactly one owner),
//! job exclusivity across owners *and* thieves, no cross-device slot
//! leakage, and that the fleet coordinator's reorder-buffer fold (merge
//! shards in bank order, fold devices in index order) matches the
//! sequential reference under every completion order.  Its negative
//! model seeds a stale device cursor — the outer claim split into read
//! and write-back — and proves the explorer catches a device owned by
//! two workers.

use dram_sim::{BankId, RowAddr};
use interleave::{any_schedule, explore, Model};
use rh_harness::metrics::{FlipRecord, RunMetrics};
use std::collections::BTreeMap;

/// Per-job metrics fixture: distinct counters per index plus staggered
/// `Option` firsts so the min-over-`Option` legs of the merge algebra
/// are exercised, not just the sums.
fn job_metrics(index: usize) -> RunMetrics {
    let i = index as u64;
    RunMetrics {
        technique: "model".to_string(),
        workload_activations: 10 * (i + 1),
        aggressor_activations: 3 * i,
        mitigation_activations: i,
        trigger_events: i % 3,
        false_positive_events: i % 2,
        flips: index % 2,
        max_disturbance: u32::try_from(100 + 7 * i).expect("small fixture"),
        flip_threshold: 1000,
        first_trigger_act: if index.is_multiple_of(2) {
            Some(50 - i)
        } else {
            None
        },
        time_to_first_flip: if index >= 3 { Some(90 - i) } else { None },
        flip_log: if index % 2 == 1 {
            vec![FlipRecord {
                bank: BankId(u32::try_from(index).expect("small fixture")),
                row: RowAddr(200),
                interval: 90 - i,
                bank_act: 90 - i,
            }]
        } else {
            Vec::new()
        },
        storage_bytes_per_bank: 8.0,
        intervals: 5 + i,
        timeseries: None,
        cycle: None,
    }
}

/// The sequential reference: jobs merged left-to-right in input order.
fn sequential_merge(len: usize) -> RunMetrics {
    (1..len).fold(job_metrics(0), |acc, i| acc.merge(job_metrics(i)))
}

/// One modeled worker: either between claims (`range == None`) or
/// processing its claimed chunk one index per step.
#[derive(Clone)]
struct Worker {
    range: Option<(usize, usize)>,
    partial: Option<RunMetrics>,
    done: bool,
    /// Broken-variant staging: a cursor value read but not yet
    /// published.  Always `None` in the sound model.
    staged_read: Option<usize>,
}

#[derive(Clone)]
struct State {
    cursor: usize,
    workers: Vec<Worker>,
    /// Result slots, mirroring `Slots` in `src/parallel.rs`.
    slots: Vec<Option<RunMetrics>>,
    /// Dispatch count per job index; the sound model must end with
    /// every entry exactly 1.
    dispatched: Vec<u32>,
}

/// Models `map_workers`' claim loop faithfully: the claim — a read of
/// the cursor and its advance — is ONE atomic step, exactly like the
/// `fetch_add` in `Dispatcher::claim`; each per-index take/compute/
/// write is a separate step, so claims and writes of different workers
/// interleave freely.
struct DispatcherModel {
    workers: usize,
    len: usize,
    chunk: usize,
}

impl DispatcherModel {
    fn process_one(&self, state: &mut State, t: usize) {
        let worker = &mut state.workers[t];
        let (index, end) = worker.range.expect("processing without a claim");
        state.dispatched[index] += 1;
        let out = job_metrics(index);
        worker.partial = Some(match worker.partial.take() {
            Some(acc) => acc.merge(out.clone()),
            None => out.clone(),
        });
        state.slots[index] = Some(out);
        worker.range = if index + 1 < end {
            Some((index + 1, end))
        } else {
            None
        };
    }

    fn finish_claim(&self, state: &mut State, t: usize, start: usize) {
        let worker = &mut state.workers[t];
        if start >= self.len {
            worker.done = true;
        } else {
            worker.range = Some((start, (start + self.chunk).min(self.len)));
        }
    }
}

impl Model for DispatcherModel {
    type State = State;

    fn initial(&self) -> State {
        State {
            cursor: 0,
            workers: vec![
                Worker {
                    range: None,
                    partial: None,
                    done: false,
                    staged_read: None,
                };
                self.workers
            ],
            slots: vec![None; self.len],
            dispatched: vec![0; self.len],
        }
    }

    fn threads(&self) -> usize {
        self.workers
    }

    fn runnable(&self, state: &State, t: usize) -> bool {
        !state.workers[t].done
    }

    fn step(&self, state: &mut State, t: usize) {
        if state.workers[t].range.is_some() {
            self.process_one(state, t);
        } else {
            // The atomic claim: read + advance in one indivisible step.
            let start = state.cursor;
            state.cursor += self.chunk;
            self.finish_claim(state, t, start);
        }
    }

    fn check(&self, state: &State, schedule: &[usize]) {
        // 1. Claim uniqueness: each index dispatched exactly once.
        for (index, &count) in state.dispatched.iter().enumerate() {
            assert_eq!(
                count, 1,
                "index {index} dispatched {count}× under {schedule:?}"
            );
        }
        // 2. Order preservation: slot i holds the sequential f(i).
        for (index, slot) in state.slots.iter().enumerate() {
            assert_eq!(
                slot.as_ref(),
                Some(&job_metrics(index)),
                "slot {index} wrong under {schedule:?}"
            );
        }
        // 3. Merge algebra: folding the shard partials in worker-id
        // order (what the engine does after the scope joins) equals the
        // sequential merge, whatever partition this schedule produced.
        let merged = state
            .workers
            .iter()
            .filter_map(|w| w.partial.clone())
            .reduce(RunMetrics::merge)
            .expect("at least one worker claimed jobs");
        assert_eq!(
            merged,
            sequential_merge(self.len),
            "merge diverged under {schedule:?}"
        );
    }
}

#[test]
fn dispatcher_sound_under_every_interleaving() {
    // Worker/len/chunk matrix from the engine's real operating points:
    // 2–3 workers, more jobs than workers, chunks of 1–2.
    for (workers, len, chunk) in [(2, 4, 1), (2, 5, 2), (3, 4, 1), (3, 6, 2)] {
        let stats = explore(&DispatcherModel {
            workers,
            len,
            chunk,
        });
        assert!(
            stats.interleavings > 1,
            "exploration degenerate for {workers}w/{len}j/{chunk}c"
        );
        println!(
            "model ok: {workers} workers, {len} jobs, chunk {chunk}: \
             {} interleavings, {} steps, depth {}",
            stats.interleavings, stats.steps, stats.max_depth
        );
    }
}

/// The seeded bug: the claim decomposed into a *read* step and a
/// *write-back* step, as if the cursor were a plain variable instead of
/// a `fetch_add`.  Two workers may now read the same cursor value.
struct BrokenDispatcherModel {
    inner: DispatcherModel,
}

impl Model for BrokenDispatcherModel {
    type State = State;

    fn initial(&self) -> State {
        self.inner.initial()
    }

    fn threads(&self) -> usize {
        self.inner.workers
    }

    fn runnable(&self, state: &State, t: usize) -> bool {
        !state.workers[t].done
    }

    fn step(&self, state: &mut State, t: usize) {
        if state.workers[t].range.is_some() {
            self.inner.process_one(state, t);
        } else if let Some(start) = state.workers[t].staged_read.take() {
            // Step 2 of the broken claim: publish the advanced cursor.
            // Another worker may have read the same `start` in between.
            state.cursor = start + self.inner.chunk;
            self.inner.finish_claim(state, t, start);
        } else {
            // Step 1 of the broken claim: unsynchronized read.
            state.workers[t].staged_read = Some(state.cursor);
        }
    }

    fn check(&self, _state: &State, _schedule: &[usize]) {
        // Verdicts are taken via `any_schedule` predicates instead.
    }
}

#[test]
fn model_checker_catches_non_atomic_cursor() {
    let broken = BrokenDispatcherModel {
        inner: DispatcherModel {
            workers: 2,
            len: 3,
            chunk: 1,
        },
    };
    // The explorer must surface a schedule where some index is
    // dispatched twice — the lost update the atomic fetch_add rules
    // out.  If this stops failing, the positive test above is vacuous.
    assert!(
        any_schedule(&broken, |s| s.dispatched.iter().any(|&c| c > 1)),
        "explorer failed to find the duplicate dispatch in the broken model"
    );
    // And under the single-threaded schedule everything still works,
    // so the bug really is an interleaving bug, not a modeling bug.
    assert!(any_schedule(&broken, |s| s
        .dispatched
        .iter()
        .all(|&c| c == 1)));
}

/// A deliberately order-sensitive fold (first-trigger taken from the
/// *left* operand instead of the min) must be caught as
/// schedule-dependent — demonstrating the merge-algebra assertion has
/// teeth beyond claim uniqueness.
#[test]
fn model_checker_catches_order_sensitive_merge() {
    struct LeftBiasedMerge {
        inner: DispatcherModel,
    }

    impl Model for LeftBiasedMerge {
        type State = State;
        fn initial(&self) -> State {
            self.inner.initial()
        }
        fn threads(&self) -> usize {
            self.inner.workers
        }
        fn runnable(&self, state: &State, t: usize) -> bool {
            !state.workers[t].done
        }
        fn step(&self, state: &mut State, t: usize) {
            if state.workers[t].range.is_some() {
                let worker = &state.workers[t];
                let (index, end) = worker.range.expect("claimed");
                state.dispatched[index] += 1;
                let out = job_metrics(index);
                let worker = &mut state.workers[t];
                worker.partial = Some(match worker.partial.take() {
                    Some(mut acc) => {
                        // The bug: keep the left first_trigger_act
                        // unconditionally instead of taking the min.
                        acc.first_trigger_act = acc.first_trigger_act.or(out.first_trigger_act);
                        let mut merged = acc.clone().merge(out);
                        merged.first_trigger_act = acc.first_trigger_act;
                        merged
                    }
                    None => out,
                });
                state.workers[t].range = if index + 1 < end {
                    Some((index + 1, end))
                } else {
                    None
                };
            } else {
                let start = state.cursor;
                state.cursor += self.inner.chunk;
                self.inner.finish_claim(state, t, start);
            }
        }
        fn check(&self, _state: &State, _schedule: &[usize]) {}
    }

    let model = LeftBiasedMerge {
        inner: DispatcherModel {
            workers: 2,
            len: 4,
            chunk: 1,
        },
    };
    let expected = sequential_merge(4);
    let final_merge = |s: &State| {
        s.workers
            .iter()
            .filter_map(|w| w.partial.clone())
            .reduce(RunMetrics::merge)
            .expect("some worker ran")
    };
    // Some schedule diverges from the sequential merge…
    assert!(
        any_schedule(&model, |s| final_merge(s) != expected),
        "left-biased merge was not caught as schedule-dependent"
    );
    // …while others agree with it, so the divergence is genuinely an
    // interleaving effect.
    assert!(any_schedule(&model, |s| final_merge(s) == expected));
}

// ---------------------------------------------------------------------------
// Two-level (fleet) scheduler model
// ---------------------------------------------------------------------------

/// Per-(device, job) metrics fixture.  The `device * 10` stride keeps
/// every device's jobs disjoint from every other's, so a claim leaking
/// across devices produces a *different* `RunMetrics` and is caught by
/// the slot assertion, not just by counters.
fn device_job_metrics(device: usize, job: usize) -> RunMetrics {
    job_metrics(device * 10 + job)
}

/// The sequential fleet reference: each device's jobs merged in job
/// (bank) order, devices folded in index order with the population
/// merge — exactly what the fleet coordinator must reproduce under
/// every schedule.
fn fleet_sequential(counts: &[usize]) -> RunMetrics {
    counts
        .iter()
        .enumerate()
        .map(|(d, &c)| {
            (0..c)
                .map(|j| device_job_metrics(d, j))
                .reduce(RunMetrics::merge)
                .expect("every device has at least one job")
        })
        .reduce(RunMetrics::merge_population)
        .expect("at least one device")
}

/// Replays the fleet coordinator over one completion order: assemble
/// shards per device, merge a completed device's shards in job order,
/// release devices through a reorder buffer in index order, fold with
/// the population merge.  Mirrors `Fleet::execute`'s receive loop.
fn coordinator_fold(counts: &[usize], arrivals: &[(usize, usize)]) -> RunMetrics {
    let mut parts: Vec<Vec<Option<RunMetrics>>> = counts.iter().map(|&c| vec![None; c]).collect();
    let mut remaining = counts.to_vec();
    let mut reorder: BTreeMap<usize, RunMetrics> = BTreeMap::new();
    let mut next = 0usize;
    let mut folded: Option<RunMetrics> = None;
    for &(d, j) in arrivals {
        assert!(parts[d][j].is_none(), "job ({d}, {j}) arrived twice");
        parts[d][j] = Some(device_job_metrics(d, j));
        remaining[d] -= 1;
        if remaining[d] == 0 {
            let merged = parts[d]
                .iter()
                .flatten()
                .cloned()
                .reduce(RunMetrics::merge)
                .expect("complete device");
            reorder.insert(d, merged);
            while let Some(done) = reorder.remove(&next) {
                folded = Some(match folded.take() {
                    Some(acc) => acc.merge_population(done),
                    None => done,
                });
                next += 1;
            }
        }
    }
    assert_eq!(next, counts.len(), "every device released in order");
    folded.expect("at least one device")
}

#[derive(Clone)]
struct FleetWorker {
    /// Owned device (`WorkerCursor::device`).
    device: Option<usize>,
    /// Broken-variant staging: an outer cursor value read but not yet
    /// written back.  Always `None` in the sound model.
    staged_outer: Option<usize>,
    done: bool,
}

#[derive(Clone)]
struct FleetState {
    /// Outer device cursor (`device_cursor`).
    outer: usize,
    /// Inner job cursor per device (`job_cursors`).
    inner: Vec<usize>,
    /// Times each device was handed out by the outer claim; the sound
    /// model must end with every entry exactly 1.
    owners: Vec<u32>,
    /// Dispatch count per (device, job).
    dispatched: Vec<Vec<u32>>,
    /// Claim order — the completion order the coordinator replays.
    arrivals: Vec<(usize, usize)>,
    workers: Vec<FleetWorker>,
}

/// Models `TwoLevelDispatcher::claim` at atomic-operation granularity:
/// the own-device inner `fetch_add`, the outer `fetch_add`, and the
/// steal sweep are separate steps, so claims by owners and thieves
/// interleave freely.  The sweep's consecutive inner `fetch_add`s are
/// coalesced into one step — every modeled schedule is still a real
/// schedule (the sweep run without interruption), it only trims the
/// state space under the explorer's interleaving guard.
struct TwoLevelModel {
    workers: usize,
    counts: Vec<usize>,
}

impl TwoLevelModel {
    fn record_claim(&self, state: &mut FleetState, device: usize, job: usize) {
        state.dispatched[device][job] += 1;
        state.arrivals.push((device, job));
    }

    /// One inner `fetch_add` on `device`: returns the claimed job, or
    /// `None` with the cursor advanced past the end.
    fn claim_job(&self, state: &mut FleetState, device: usize) -> Option<usize> {
        let job = state.inner[device];
        state.inner[device] += 1;
        (job < self.counts[device]).then_some(job)
    }

    /// The steal sweep plus termination, entered once the outer cursor
    /// is exhausted.
    fn sweep(&self, state: &mut FleetState, t: usize) {
        for device in 0..self.counts.len() {
            if let Some(job) = self.claim_job(state, device) {
                self.record_claim(state, device, job);
                return;
            }
        }
        state.workers[t].done = true;
    }
}

impl Model for TwoLevelModel {
    type State = FleetState;

    fn initial(&self) -> FleetState {
        FleetState {
            outer: 0,
            inner: vec![0; self.counts.len()],
            owners: vec![0; self.counts.len()],
            dispatched: self.counts.iter().map(|&c| vec![0; c]).collect(),
            arrivals: Vec::new(),
            workers: vec![
                FleetWorker {
                    device: None,
                    staged_outer: None,
                    done: false,
                };
                self.workers
            ],
        }
    }

    fn threads(&self) -> usize {
        self.workers
    }

    fn runnable(&self, state: &FleetState, t: usize) -> bool {
        !state.workers[t].done
    }

    fn step(&self, state: &mut FleetState, t: usize) {
        if let Some(device) = state.workers[t].device {
            // Level 1a: one inner fetch_add on the owned device.
            match self.claim_job(state, device) {
                Some(job) => self.record_claim(state, device, job),
                None => state.workers[t].device = None,
            }
        } else {
            // Level 1b: one outer fetch_add; exhausted, fall through to
            // the steal sweep (level 2) in the same claim call.
            let device = state.outer;
            state.outer += 1;
            if device < self.counts.len() {
                state.owners[device] += 1;
                state.workers[t].device = Some(device);
            } else {
                self.sweep(state, t);
            }
        }
    }

    fn check(&self, state: &FleetState, schedule: &[usize]) {
        // 1. Device-claim uniqueness: the outer FIFO handed every
        // device to exactly one owner.
        for (device, &owners) in state.owners.iter().enumerate() {
            assert_eq!(
                owners, 1,
                "device {device} owned {owners}× under {schedule:?}"
            );
        }
        // 2. Job exclusivity across owners and thieves: every
        // (device, job) dispatched exactly once.
        for (device, jobs) in state.dispatched.iter().enumerate() {
            for (job, &count) in jobs.iter().enumerate() {
                assert_eq!(
                    count, 1,
                    "job ({device}, {job}) dispatched {count}× under {schedule:?}"
                );
            }
        }
        // 3. No cross-device leakage + partition-independent merge: the
        // coordinator replay over this schedule's completion order
        // (slot identity checked inside) equals the sequential fleet
        // reference.
        assert_eq!(
            coordinator_fold(&self.counts, &state.arrivals),
            fleet_sequential(&self.counts),
            "fleet merge diverged under {schedule:?}"
        );
    }
}

#[test]
fn two_level_scheduler_sound_under_every_interleaving() {
    // Device shapes from the fleet's real operating points: uneven
    // shard counts so owners drain at different times and the steal
    // phase genuinely fires.
    for (workers, counts) in [
        (2, vec![2, 2]),
        (2, vec![3, 1]),
        (2, vec![1, 2, 1]),
        (3, vec![1, 2]),
        (3, vec![2, 1, 1]),
    ] {
        let stats = explore(&TwoLevelModel {
            workers,
            counts: counts.clone(),
        });
        assert!(
            stats.interleavings > 1,
            "exploration degenerate for {workers}w/{counts:?}"
        );
        println!(
            "two-level model ok: {workers} workers, devices {counts:?}: \
             {} interleavings, {} steps, depth {}",
            stats.interleavings, stats.steps, stats.max_depth
        );
    }
}

/// The seeded bug: a stale device cursor.  The outer claim is split
/// into an unsynchronized *read* step and a *write-back* step, as if
/// `device_cursor` were a plain variable instead of a `fetch_add` —
/// two workers can read the same cursor value and both take ownership
/// of that device.
struct StaleDeviceCursorModel {
    inner: TwoLevelModel,
}

impl Model for StaleDeviceCursorModel {
    type State = FleetState;

    fn initial(&self) -> FleetState {
        self.inner.initial()
    }

    fn threads(&self) -> usize {
        self.inner.workers
    }

    fn runnable(&self, state: &FleetState, t: usize) -> bool {
        !state.workers[t].done
    }

    fn step(&self, state: &mut FleetState, t: usize) {
        if let Some(device) = state.workers[t].device {
            match self.inner.claim_job(state, device) {
                Some(job) => self.inner.record_claim(state, device, job),
                None => state.workers[t].device = None,
            }
        } else if let Some(device) = state.workers[t].staged_outer.take() {
            // Step 2 of the broken claim: write back the advanced
            // cursor.  Another worker may have staged the same value.
            state.outer = device + 1;
            if device < self.inner.counts.len() {
                state.owners[device] += 1;
                state.workers[t].device = Some(device);
            } else {
                self.inner.sweep(state, t);
            }
        } else {
            // Step 1 of the broken claim: unsynchronized read.
            state.workers[t].staged_outer = Some(state.outer);
        }
    }

    fn check(&self, _state: &FleetState, _schedule: &[usize]) {
        // Verdicts are taken via `any_schedule` predicates instead.
    }
}

#[test]
fn model_checker_catches_stale_device_cursor() {
    let broken = StaleDeviceCursorModel {
        inner: TwoLevelModel {
            workers: 2,
            counts: vec![2, 2],
        },
    };
    // The explorer must surface a schedule where some device is owned
    // by two workers — the device-claim uniqueness violation the outer
    // fetch_add rules out.  If this stops failing, the positive
    // two-level test above is vacuous.
    assert!(
        any_schedule(&broken, |s| s.owners.iter().any(|&c| c > 1)),
        "explorer failed to find the duplicate device owner in the broken model"
    );
    // Under the single-threaded schedule the broken model still works,
    // so the defect really is an interleaving bug, not a modeling bug.
    assert!(any_schedule(&broken, |s| {
        s.owners.iter().all(|&c| c == 1) && s.dispatched.iter().flatten().all(|&c| c == 1)
    }));
}
