//! Property-based tests for the experiment engine: metric consistency
//! for arbitrary traces and techniques.

use dram_sim::{BankId, DramTiming, Geometry, RefreshOrder, RowAddr};
use mem_trace::{ReplayTrace, TraceEvent};
use proptest::prelude::*;
use rh_harness::{engine, techniques, NullObserver, RunConfig};
use rh_hwmodel::Technique;

/// A fast configuration: scaled-down geometry (1024 rows, 128 intervals
/// per window), two windows.
fn small_config() -> RunConfig {
    RunConfig {
        geometry: Geometry::scaled_down(64),
        timing: DramTiming::ddr4(),
        refresh_order: RefreshOrder::SequentialNeighbors,
        remapping: Vec::new(),
        flip_threshold: dram_sim::FLIP_THRESHOLD,
        distance2_sixteenths: 0,
        windows: 2,
        parallelism: rh_harness::Parallelism::default(),
        batch_events: mem_trace::DEFAULT_BATCH_EVENTS,
        backend: rh_harness::BackendSpec::Exact,
        weak_cells: dram_sim::WeakCellSpec::Uniform,
    }
}

fn trace_strategy() -> impl Strategy<Value = Vec<Vec<TraceEvent>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..1024, any::<bool>()), 0..40),
        1..40,
    )
    .prop_map(|intervals| {
        intervals
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(row, aggressor)| TraceEvent {
                        bank: BankId(0),
                        row: RowAddr(row),
                        aggressor,
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metric consistency for every technique on arbitrary traces:
    /// workload counts match the trace, false positives never exceed
    /// triggers, overheads are finite and non-negative, and the interval
    /// clock matches the shorter of trace and configured length.
    #[test]
    fn metrics_are_consistent(
        intervals in trace_strategy(),
        technique_index in 0usize..9,
        seed in any::<u64>(),
    ) {
        let config = small_config();
        let technique = Technique::TABLE3[technique_index];
        let total_events: u64 = intervals.iter().map(|b| b.len() as u64).sum();
        let trace_len = intervals.len() as u64;
        let trace = ReplayTrace::new(intervals);
        let mut mitigation = techniques::build(technique, &config, seed);
        let metrics = engine::run_observed(trace, mitigation.as_mut(), &config, &mut NullObserver);

        prop_assert_eq!(metrics.workload_activations, total_events);
        prop_assert_eq!(metrics.intervals, trace_len.min(config.intervals()));
        prop_assert!(metrics.false_positive_events <= metrics.trigger_events);
        prop_assert!(metrics.overhead_percent() >= 0.0);
        prop_assert!(metrics.overhead_percent().is_finite());
        prop_assert!(metrics.fpr_percent() <= metrics.overhead_percent() + 1e-9);
        // Each trigger costs at most two activations (act_n).
        prop_assert!(metrics.mitigation_activations <= 2 * metrics.trigger_events);
        if metrics.trigger_events > 0 {
            prop_assert!(metrics.first_trigger_act.is_some());
            prop_assert!(metrics.first_trigger_act.unwrap() <= total_events);
        } else {
            prop_assert_eq!(metrics.first_trigger_act, None);
        }
    }

    /// Determinism: identical seeds and traces give identical metrics
    /// for the seeded probabilistic techniques.
    #[test]
    fn runs_are_reproducible(
        intervals in trace_strategy(),
        seed in any::<u64>(),
    ) {
        let config = small_config();
        let run = |intervals: Vec<Vec<TraceEvent>>| {
            let trace = ReplayTrace::new(intervals);
            let mut m = techniques::build(Technique::LoLiPromi, &config, seed);
            engine::run_observed(trace, m.as_mut(), &config, &mut NullObserver)
        };
        let a = run(intervals.clone());
        let b = run(intervals);
        prop_assert_eq!(a, b);
    }

    /// The deterministic techniques (TWiCe, CRA, Graphene) produce
    /// seed-independent results.
    #[test]
    fn deterministic_techniques_ignore_seeds(
        intervals in trace_strategy(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        which in 0usize..3,
    ) {
        let technique = [Technique::TwiCe, Technique::Cra, Technique::Graphene][which];
        let config = small_config();
        let run = |seed| {
            let trace = ReplayTrace::new(intervals.clone());
            let mut m = techniques::build(technique, &config, seed);
            engine::run_observed(trace, m.as_mut(), &config, &mut NullObserver)
        };
        prop_assert_eq!(run(seed_a), run(seed_b));
    }
}
