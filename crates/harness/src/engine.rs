//! The run engine: drives a trace through a mitigation and the DRAM
//! device, collecting [`RunMetrics`].
//!
//! The hot loop is *batched*: the trace delivers [`EventBatch`]es of a
//! few thousand activations spanning whole refresh intervals
//! ([`mem_trace::TraceSource::next_batch`]), and per interval segment
//! the engine
//!
//! 1. hands the whole segment to the mitigation in one
//!    [`Mitigation::on_batch`] call, collecting its actions — tagged by
//!    causing event — in an [`ActionSink`];
//! 2. reports the segment to the observer ([`Observer::on_batch`]);
//! 3. replays the segment event by event: ledger and device accounting
//!    for the activation, then that event's actions applied
//!    immediately — the exact order of the one-event-at-a-time path,
//!    so the batched engine is bit-identical to the scalar reference
//!    ([`run_scalar`], kept for equivalence tests and benchmarks);
//! 4. issues the auto-refresh and the mitigation's
//!    `on_refresh_interval`, applying the interval-granular actions
//!    (CaPRoMi's collective decisions, ProHit's hot-table refresh).
//!
//! Step 3 is sound because mitigations never read the device: deciding
//! a whole segment before applying any of its device commands cannot
//! change a decision.  The only segment-visible coupling runs the other
//! way — feedback-coupled *traces* reading mitigation actions — and is
//! handled at delivery: such sources bound their batch to one interval
//! via [`mem_trace::TraceSource::max_batch_intervals`].
//!
//! False-positive attribution uses the trace's ground-truth aggressor
//! labels: a trigger is a false positive when the row it names (the
//! suspected aggressor for `act_n`, the victim for `RefreshRow`) is not,
//! respectively adjacent to, an attacker-hammered row.
//!
//! Every entrypoint has an *observed* variant threading an
//! [`Observer`]/[`Observe`] through the loop (see [`crate::observe`]);
//! the unobserved functions are monomorphised over
//! [`crate::observe::NullObserver`], whose empty inline callbacks
//! compile away, so the no-observer path costs nothing.  The mitigation
//! is a generic parameter: built as [`rh_baselines::AnyMitigation`]
//! (see [`crate::techniques::build_any`]) the per-event inner loop is a
//! `match`, not a vtable call — one dynamic-free dispatch per interval
//! segment.
//!
//! The *device* side is equally generic: the loop drives any
//! [`DisturbanceBackend`] (see [`dram_sim::backend`]), and the
//! entrypoints pick the tier `config.backend` names exactly once before
//! entering it — exact (the event-accurate [`DramDevice`], the
//! default), fast (interval-level accumulation), or cycle (row-buffer
//! and command-timing accounting in [`RunMetrics::cycle`]).  Because
//! mitigations never read the device, the mitigation decision stream —
//! triggers, false positives, first-trigger time — is identical on
//! every tier; only flip-side metrics inherit the tier's fidelity.
//! Prefer the [`crate::Runner`] builder over calling these functions
//! directly.

use crate::config::RunConfig;
use crate::metrics::{sort_flip_log, FlipRecord, RunMetrics};
use crate::observe::{IntervalSnapshot, NullObserver, Observe, Observer, RunSummary, ShardInfo};
use dram_sim::{
    BackendSpec, BankId, Command, CycleBackend, DisturbanceBackend, DramDevice, FlipEvent, RowAddr,
};
use mem_trace::{EventBatch, TraceEvent, TraceSource, TraceSplit};
use std::collections::BTreeSet;
use std::time::Instant;
use tivapromi::{ActionSink, Mitigation, MitigationAction};

/// Tracks which rows the attacker has hammered, for ground-truth
/// false-positive attribution.
#[derive(Debug, Default)]
struct AggressorLedger {
    // Ordered set: the ledger is only membership-tested today, but an
    // ordered container keeps any future traversal structural (rule
    // D1) instead of hash-seeded.
    rows: BTreeSet<(u32, u32)>,
}

impl AggressorLedger {
    fn record(&mut self, event: &TraceEvent) {
        self.record_parts(event.bank, event.row, event.aggressor);
    }

    fn record_parts(&mut self, bank: BankId, row: RowAddr, aggressor: bool) {
        if aggressor {
            self.rows.insert((bank.0, row.0));
        }
    }

    fn is_aggressor(&self, bank: BankId, row: RowAddr) -> bool {
        self.rows.contains(&(bank.0, row.0))
    }

    /// Is this action aimed at real attacker activity?
    fn is_true_positive(&self, action: &MitigationAction) -> bool {
        match action {
            // act_n names the suspected aggressor.
            MitigationAction::ActivateNeighbors { bank, row } => self.is_aggressor(*bank, *row),
            // RefreshRow names a victim; it is justified if either
            // physical neighbor is an attacker row.
            MitigationAction::RefreshRow { bank, row } => {
                (row.0 > 0 && self.is_aggressor(*bank, RowAddr(row.0 - 1)))
                    || self.is_aggressor(*bank, RowAddr(row.0 + 1))
            }
        }
    }
}

/// Trigger/first-trigger bookkeeping shared by the per-activation and
/// per-interval action drains.
struct TriggerLedger {
    trigger_events: u64,
    false_positive_events: u64,
    // First-trigger bookkeeping is *bank-local*: each trigger is
    // attributed to the bank it targets and recorded against that bank's
    // own activation count.  The run-level `first_trigger_act` is the
    // minimum over banks, which makes it invariant under bank sharding
    // (each shard sees exactly its bank's activations).
    bank_acts: Vec<u64>,
    bank_first: Vec<Option<u64>>,
    // First-flip bookkeeping mirrors the first-trigger accounting: a
    // new device flip is attributed to the bank whose activation (or
    // mitigation action) caused it — disturbance never couples banks,
    // so the bank issuing the current command is the flipping bank —
    // and recorded against that bank's activation count.
    flips_seen: usize,
    bank_first_flip: Vec<Option<u64>>,
    // Per-row flip attribution: every new device flip becomes a
    // `FlipRecord` carrying the flipping bank's activation count at the
    // moment the flip was noted — the same bank-local accounting as
    // `bank_first_flip`, so the log is invariant under bank sharding.
    flip_log: Vec<FlipRecord>,
}

impl TriggerLedger {
    /// Walks the backend's flip log past the ledger's cursor, appends a
    /// [`FlipRecord`] per new flip, and records, per flipping bank, the
    /// bank-local activation count of its first flip.
    ///
    /// Each flip carries its own bank (disturbance never couples banks,
    /// so on the exact tier new flips always land in the bank of the
    /// command that caused them — this is the historical attribution,
    /// generalized to backends that resolve flips at interval ends).
    fn note_flips(&mut self, flips: &[FlipEvent]) {
        while self.flips_seen < flips.len() {
            let event = flips[self.flips_seen];
            let bank = event.bank.index();
            self.flips_seen += 1;
            let bank_act = self.bank_acts.get(bank).copied().unwrap_or(0);
            self.flip_log.push(FlipRecord {
                bank: event.bank,
                row: event.row,
                interval: event.interval,
                bank_act,
            });
            if bank >= self.bank_first_flip.len() {
                self.bank_first_flip.resize(bank + 1, None);
            }
            if self.bank_first_flip[bank].is_none() {
                self.bank_first_flip[bank] = Some(bank_act);
            }
        }
    }
}

#[inline]
fn apply_action<B: DisturbanceBackend + ?Sized, O: Observer + ?Sized>(
    action: MitigationAction,
    backend: &mut B,
    ledger: &AggressorLedger,
    triggers: &mut TriggerLedger,
    observer: &mut O,
) {
    triggers.trigger_events += 1;
    let true_positive = ledger.is_true_positive(&action);
    if !true_positive {
        triggers.false_positive_events += 1;
    }
    observer.on_action(&action, true_positive);
    let bank = action.bank().index();
    if bank >= triggers.bank_first.len() {
        triggers.bank_first.resize(bank + 1, None);
    }
    if triggers.bank_first[bank].is_none() {
        triggers.bank_first[bank] = Some(triggers.bank_acts.get(bank).copied().unwrap_or(0));
    }
    backend.apply(action.to_command());
    // ActivateNeighbors disturbs the neighbors' neighbors and can
    // itself cross the flip threshold.
    triggers.note_flips(backend.flips());
}

fn apply_actions<B: DisturbanceBackend + ?Sized, O: Observer + ?Sized>(
    actions: &mut Vec<MitigationAction>,
    backend: &mut B,
    ledger: &AggressorLedger,
    triggers: &mut TriggerLedger,
    observer: &mut O,
) {
    for action in actions.drain(..) {
        apply_action(action, backend, ledger, triggers, observer);
    }
}

/// Runs `trace` through `mitigation` with an [`Observer`] receiving
/// callbacks from inside the loop, on the backend tier `config.backend`
/// selects.
///
/// The backend is chosen **once** here, then the loop monomorphises
/// over its concrete type — the per-event hot path carries no enum or
/// vtable dispatch, and with [`BackendSpec::Exact`] it compiles to
/// exactly the historical device loop.  The observer type is also a
/// generic parameter, so passing [`NullObserver`] monomorphises to the
/// unobserved loop.
pub fn run_observed<S: TraceSource, M: Mitigation + ?Sized, O: Observer + ?Sized>(
    mut trace: S,
    mitigation: &mut M,
    config: &RunConfig,
    observer: &mut O,
) -> RunMetrics {
    match config.backend {
        BackendSpec::Exact => {
            let mut device = config.build_device();
            run_on_backend_observed(&mut trace, mitigation, config, &mut device, observer)
        }
        BackendSpec::Fast => {
            let mut backend = config.build_fast_backend();
            run_on_backend_observed(&mut trace, mitigation, config, &mut backend, observer)
        }
        BackendSpec::Cycle => {
            let mut backend = CycleBackend::new(config.build_device());
            run_on_backend_observed(&mut trace, mitigation, config, &mut backend, observer)
        }
    }
}

/// Like [`run_observed`] without an observer, but on a caller-provided
/// device (lets callers inspect device state afterwards).  Always runs
/// the event-accurate model, regardless of `config.backend`.
pub fn run_on_device<S: TraceSource, M: Mitigation + ?Sized>(
    trace: &mut S,
    mitigation: &mut M,
    config: &RunConfig,
    device: &mut DramDevice,
) -> RunMetrics {
    run_on_backend_observed(trace, mitigation, config, device, &mut NullObserver)
}

/// The batched engine loop on a caller-provided device — the exact-tier
/// special case of [`run_on_backend_observed`].
pub fn run_on_device_observed<S, M, O>(
    trace: &mut S,
    mitigation: &mut M,
    config: &RunConfig,
    device: &mut DramDevice,
    observer: &mut O,
) -> RunMetrics
where
    S: TraceSource,
    M: Mitigation + ?Sized,
    O: Observer + ?Sized,
{
    run_on_backend_observed(trace, mitigation, config, device, observer)
}

/// The full engine loop — batched, generic over the disturbance
/// backend: caller-provided backend and observer.
///
/// Every fidelity tier shares this one loop; the backend parameter is
/// monomorphised, so each tier compiles to its own straight-line code.
/// The mitigation decision stream is backend-independent (mitigations
/// never read the device), so trigger/false-positive accounting is
/// bit-identical across tiers — only the flip-side metrics inherit the
/// backend's fidelity.
pub fn run_on_backend_observed<S, M, B, O>(
    trace: &mut S,
    mitigation: &mut M,
    config: &RunConfig,
    backend: &mut B,
    observer: &mut O,
) -> RunMetrics
where
    S: TraceSource,
    M: Mitigation + ?Sized,
    B: DisturbanceBackend + ?Sized,
    O: Observer + ?Sized,
{
    let banks = config.geometry.banks() as usize;
    let mut batch = EventBatch::with_target_events(config.batch_events);
    // Generously preallocated arena: steady-state segments reuse the
    // same tag/action lanes with `reset`, so the loop's decision side
    // stays heap-quiet (`tests/alloc_free.rs`).
    let mut sink = ActionSink::with_capacity(1024);
    // lint: allow(D6) — per-run buffer made once before the interval
    // loop; every segment drains it in place.
    let mut actions: Vec<MitigationAction> = Vec::new();
    let mut ledger = AggressorLedger::default();
    let mut triggers = TriggerLedger {
        trigger_events: 0,
        false_positive_events: 0,
        // lint: allow(D6) — per-run ledger lanes, sized once up front.
        bank_acts: vec![0; banks],
        bank_first: vec![None; banks],
        flips_seen: 0,
        // lint: allow(D6) — per-run ledger lanes, sized once up front.
        bank_first_flip: vec![None; banks],
        flip_log: Vec::new(),
    };
    let mut total_acts = 0u64;
    let mut aggressor_acts = 0u64;
    let max_intervals = config.intervals();
    let mut interval = 0u64;

    while interval < max_intervals && trace.next_batch(&mut batch, max_intervals - interval) {
        for segment in 0..batch.intervals() {
            let range = batch.segment(segment);
            // Decide ahead: the mitigation sees the whole segment in
            // one call (mitigations never read the device, so deciding
            // before applying cannot change a decision) …
            sink.reset();
            mitigation.on_batch(&batch, range.clone(), &mut sink);
            observer.on_batch(&batch, range.clone());
            // … then replay in scalar order: per event, ledger/device
            // accounting followed immediately by that event's actions.
            // The columns are walked as parallel slices so the hot loop
            // carries no per-event bounds checks.
            let (banks_col, rows_col, aggrs_col) = batch.columns();
            let start = range.start;
            if backend.defers_flips() {
                // Flip-deferring tier: flips cannot appear before the
                // `Refresh`, so per-event flip polling is dead and the
                // replay only has to stop at *action* points (an
                // action's trigger accounting reads the counters as of
                // its causing event, and its true-positive check reads
                // the ledger as of that event).  Everything between two
                // action points collapses into column scans plus one
                // batched device call — counters are per-chunk sums no
                // mid-chunk code reads, so aggregation order cannot be
                // observed.
                let mut cur = range.start;
                while cur < range.end {
                    // Process up to and including the next event that
                    // carries actions (or the whole rest of the segment).
                    let stop = sink.peek_tag().map_or(range.end, |tag| {
                        let tag = usize::try_from(tag).expect("event tag fits usize");
                        (tag + 1).min(range.end)
                    });
                    let chunk = cur..stop;
                    // One pass in runs of equal bank (a bank-sharded or
                    // single-bank column is one run — [`EventBatch::bank_runs`]):
                    // per-bank totals add per run, and the ledger — a
                    // set — collapses a hammering run's consecutive
                    // duplicates to one insert.
                    for (bank_id, run) in batch.bank_runs(chunk.clone()) {
                        let bank = bank_id.index();
                        if bank >= triggers.bank_acts.len() {
                            triggers.bank_acts.resize(bank + 1, 0);
                        }
                        triggers.bank_acts[bank] +=
                            u64::try_from(run.len()).expect("run length fits u64");
                        let mut last = None;
                        for (&row, &aggressor) in
                            rows_col[run.clone()].iter().zip(&aggrs_col[run])
                        {
                            if aggressor {
                                aggressor_acts += 1;
                                if last != Some(row) {
                                    ledger.record_parts(bank_id, row, true);
                                    last = Some(row);
                                }
                            }
                        }
                    }
                    total_acts += u64::try_from(chunk.len()).expect("segment length fits u64");
                    backend.apply_activations(&banks_col[chunk.clone()], &rows_col[chunk]);
                    cur = stop;
                    // Drain the actions of the chunk's last event, if it
                    // had any (tags ascend, so equal tags drain together).
                    if let Some(tag) = sink.peek_tag() {
                        if usize::try_from(tag).expect("event tag fits usize") < cur {
                            while let Some(action) = sink.next_for(tag) {
                                apply_action(action, backend, &ledger, &mut triggers, observer);
                            }
                        }
                    }
                }
            } else {
                let events = banks_col[range.clone()]
                    .iter()
                    .zip(&rows_col[range.clone()])
                    .zip(&aggrs_col[range]);
                for (offset, ((&bank_id, &row), &aggressor)) in events.enumerate() {
                    let i = start + offset;
                    ledger.record_parts(bank_id, row, aggressor);
                    let bank = bank_id.index();
                    if bank >= triggers.bank_acts.len() {
                        triggers.bank_acts.resize(bank + 1, 0);
                    }
                    triggers.bank_acts[bank] += 1;
                    total_acts += 1;
                    if aggressor {
                        aggressor_acts += 1;
                    }
                    backend.apply(Command::Activate { bank: bank_id, row });
                    triggers.note_flips(backend.flips());
                    let tag = u32::try_from(i).expect("event tag fits u32");
                    while let Some(action) = sink.next_for(tag) {
                        apply_action(action, backend, &ledger, &mut triggers, observer);
                    }
                }
            }
            debug_assert!(sink.fully_drained(), "sink tags must cover the segment");
            backend.apply(Command::Refresh);
            // Backends may resolve deferred disturbance at the interval
            // boundary (the fast tier); on the exact tier refresh only
            // restores, so this is a cursor comparison and nothing else.
            triggers.note_flips(backend.flips());
            mitigation.on_refresh_interval(&mut actions);
            if !actions.is_empty() {
                apply_actions(&mut actions, backend, &ledger, &mut triggers, observer);
            }
            observer.on_interval_end(&IntervalSnapshot {
                interval,
                activations: total_acts,
                triggers: triggers.trigger_events,
                false_positives: triggers.false_positive_events,
                stats: backend.stats(),
                max_disturbance: backend.max_disturbance_seen(),
                device: backend.device(),
            });
            interval += 1;
        }
    }

    finish_metrics(
        mitigation,
        config,
        backend,
        triggers,
        aggressor_acts,
        observer,
    )
}

/// The scalar reference loop: one event at a time, exactly the pre-batch
/// engine.
///
/// Kept public for two reasons: the equivalence tests prove the batched
/// loop bit-identical against it at several batch sizes, and the
/// throughput bench uses it as the baseline the batched pipeline is
/// measured against.  Not otherwise called by the harness.
pub fn run_scalar<S: TraceSource, M: Mitigation + ?Sized>(
    trace: S,
    mitigation: &mut M,
    config: &RunConfig,
) -> RunMetrics {
    run_scalar_observed(trace, mitigation, config, &mut NullObserver)
}

/// [`run_scalar`] with an observer — the reference for observed runs.
///
/// Dispatches on `config.backend` exactly like [`run_observed`], so the
/// scalar reference pins every tier, not just the exact one.
pub fn run_scalar_observed<S, M, O>(
    mut trace: S,
    mitigation: &mut M,
    config: &RunConfig,
    observer: &mut O,
) -> RunMetrics
where
    S: TraceSource,
    M: Mitigation + ?Sized,
    O: Observer + ?Sized,
{
    match config.backend {
        BackendSpec::Exact => {
            let mut device = config.build_device();
            run_scalar_on_backend(&mut trace, mitigation, config, &mut device, observer)
        }
        BackendSpec::Fast => {
            let mut backend = config.build_fast_backend();
            run_scalar_on_backend(&mut trace, mitigation, config, &mut backend, observer)
        }
        BackendSpec::Cycle => {
            let mut backend = CycleBackend::new(config.build_device());
            run_scalar_on_backend(&mut trace, mitigation, config, &mut backend, observer)
        }
    }
}

/// The scalar loop body, generic over the backend tier.
fn run_scalar_on_backend<S, M, B, O>(
    trace: &mut S,
    mitigation: &mut M,
    config: &RunConfig,
    backend: &mut B,
    observer: &mut O,
) -> RunMetrics
where
    S: TraceSource,
    M: Mitigation + ?Sized,
    B: DisturbanceBackend + ?Sized,
    O: Observer + ?Sized,
{
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut actions: Vec<MitigationAction> = Vec::new();
    let mut ledger = AggressorLedger::default();
    let mut triggers = TriggerLedger {
        trigger_events: 0,
        false_positive_events: 0,
        bank_acts: Vec::new(),
        bank_first: Vec::new(),
        flips_seen: 0,
        bank_first_flip: Vec::new(),
        flip_log: Vec::new(),
    };
    let mut total_acts = 0u64;
    let mut aggressor_acts = 0u64;
    let max_intervals = config.intervals();

    for interval in 0..max_intervals {
        events.clear();
        if !trace.next_interval(&mut events) {
            break;
        }
        for event in &events {
            ledger.record(event);
            let bank = event.bank.index();
            if bank >= triggers.bank_acts.len() {
                triggers.bank_acts.resize(bank + 1, 0);
            }
            triggers.bank_acts[bank] += 1;
            total_acts += 1;
            if event.aggressor {
                aggressor_acts += 1;
            }
            backend.apply(Command::Activate {
                bank: event.bank,
                row: event.row,
            });
            triggers.note_flips(backend.flips());
            observer.on_activation(event.bank, event.row, event.aggressor);
            mitigation.on_activate(event.bank, event.row, &mut actions);
            if !actions.is_empty() {
                apply_actions(&mut actions, backend, &ledger, &mut triggers, observer);
            }
        }
        backend.apply(Command::Refresh);
        triggers.note_flips(backend.flips());
        mitigation.on_refresh_interval(&mut actions);
        if !actions.is_empty() {
            apply_actions(&mut actions, backend, &ledger, &mut triggers, observer);
        }
        observer.on_interval_end(&IntervalSnapshot {
            interval,
            activations: total_acts,
            triggers: triggers.trigger_events,
            false_positives: triggers.false_positive_events,
            stats: backend.stats(),
            max_disturbance: backend.max_disturbance_seen(),
            device: backend.device(),
        });
    }

    finish_metrics(
        mitigation,
        config,
        backend,
        triggers,
        aggressor_acts,
        observer,
    )
}

fn finish_metrics<M: Mitigation + ?Sized, B: DisturbanceBackend + ?Sized, O: Observer + ?Sized>(
    mitigation: &mut M,
    config: &RunConfig,
    backend: &mut B,
    mut triggers: TriggerLedger,
    aggressor_acts: u64,
    observer: &mut O,
) -> RunMetrics {
    // Catch up on any flips the loop has not yet noted (both loops end
    // every interval with a post-refresh note, so this is normally a
    // cursor comparison) and put the log into its canonical order.
    triggers.note_flips(backend.flips());
    sort_flip_log(&mut triggers.flip_log);
    let stats = backend.stats();
    let mut metrics = RunMetrics {
        technique: mitigation.name().to_string(),
        workload_activations: stats.workload_activations,
        aggressor_activations: aggressor_acts,
        mitigation_activations: stats.mitigation_activations,
        trigger_events: triggers.trigger_events,
        false_positive_events: triggers.false_positive_events,
        flips: backend.flips().len(),
        max_disturbance: backend.max_disturbance_seen(),
        flip_threshold: config.flip_threshold,
        first_trigger_act: triggers.bank_first.iter().flatten().copied().min(),
        time_to_first_flip: triggers.bank_first_flip.iter().flatten().copied().min(),
        flip_log: triggers.flip_log,
        storage_bytes_per_bank: mitigation.storage_bytes_per_bank(),
        intervals: stats.refresh_intervals,
        timeseries: None,
        cycle: backend.cycle_stats(),
    };
    observer.on_run_end(&mut metrics);
    metrics
}

/// Runs `trace` through the mitigation that `build` constructs, sharded
/// by bank when `config.parallelism` allows it.
///
/// This is the unobserved sharded entrypoint ([`crate::Runner::run`]
/// lands here when no observers are attached): the engine loop stays
/// monomorphised over [`NullObserver`], so it is exactly as fast as an
/// engine without observability hooks.
///
/// With `shard_by_bank` (and more than one bank) each bank's sub-stream
/// ([`TraceSplit::bank_shard`]) is driven through its *own* mitigation
/// instance and backend on a worker pool, and the per-shard
/// [`RunMetrics`] are combined with [`RunMetrics::merge`].  Because
/// banks are independent — disturbance never couples them on any
/// backend tier and every mitigation derives per-bank decision streams
/// via [`dram_sim::bank_seed`] — the merged result is bit-identical to
/// the sequential run, for every worker count and schedule.
///
/// `build` must construct the mitigation identically on every call
/// (same technique, same seed); it is called once per bank shard, plus
/// once for the sequential fallback.
pub fn run_sharded<S, M, F>(trace: S, build: &F, config: &RunConfig) -> RunMetrics
where
    S: TraceSplit,
    M: Mitigation,
    F: Fn() -> M + Sync,
{
    let banks = config.geometry.banks();
    if !config.parallelism.shard_by_bank || banks <= 1 {
        let mut mitigation = build();
        return run_observed(trace, &mut mitigation, config, &mut NullObserver);
    }
    let shards: Vec<Box<dyn TraceSplit>> =
        (0..banks).map(|b| trace.bank_shard(BankId(b))).collect();
    let workers = config.parallelism.effective_workers();
    let results = crate::parallel::map_workers(shards, workers, |shard| {
        let mut mitigation = build();
        run_observed(shard, &mut mitigation, config, &mut NullObserver)
    });
    results
        .into_iter()
        .reduce(RunMetrics::merge)
        .expect("geometry has at least one bank")
}

/// Like [`run_sharded`], with an [`Observe`] strategy attached: one
/// [`Observer`] is forked per bank shard (or one for the whole run on
/// the sequential path), and shard/run completions are reported with
/// wall-clock timings.
///
/// Deterministic observers ([`crate::TimeSeriesRecorder`]) leave the
/// merged [`RunMetrics`] bit-identical to the sequential run at every
/// worker count; timing-based ones ([`crate::PerfCounters`]) keep their
/// non-deterministic readings outside the metrics.
pub fn run_with_observed<S, M, F>(
    trace: S,
    build: &F,
    config: &RunConfig,
    observe: &dyn Observe,
) -> RunMetrics
where
    S: TraceSplit,
    M: Mitigation,
    F: Fn() -> M + Sync,
{
    // lint: allow(D2) — wall times here feed only Observe callbacks
    // (PerfCounters-style diagnostics), never RunMetrics.
    let start = Instant::now();
    let banks = config.geometry.banks();
    let (metrics, workers, shard_count) = if !config.parallelism.shard_by_bank || banks <= 1 {
        let shard = ShardInfo::whole_run();
        observe.on_shard_start(&shard);
        // lint: allow(D2) — shard wall time goes to Observe::on_shard_finish only.
        let shard_start = Instant::now();
        let mut observer = observe.observer(&shard);
        let mut mitigation = build();
        let metrics = run_observed(trace, &mut mitigation, config, observer.as_mut());
        observe.on_shard_finish(&shard, &metrics, shard_start.elapsed());
        (metrics, 1, 1)
    } else {
        let shards: Vec<(ShardInfo, Box<dyn TraceSplit>)> = (0..banks)
            .map(|b| {
                let info = ShardInfo {
                    index: b as usize,
                    count: banks as usize,
                    bank: Some(BankId(b)),
                };
                (info, trace.bank_shard(BankId(b)))
            })
            .collect();
        let workers = config.parallelism.effective_workers();
        let results = crate::parallel::map_workers(shards, workers, |(info, shard)| {
            observe.on_shard_start(&info);
            // lint: allow(D2) — shard wall time goes to Observe::on_shard_finish only.
            let shard_start = Instant::now();
            let mut observer = observe.observer(&info);
            let mut mitigation = build();
            let metrics = run_observed(shard, &mut mitigation, config, observer.as_mut());
            observe.on_shard_finish(&info, &metrics, shard_start.elapsed());
            metrics
        });
        let merged = results
            .into_iter()
            .reduce(RunMetrics::merge)
            .expect("geometry has at least one bank");
        (merged, workers, banks as usize)
    };
    observe.on_run_end(
        &metrics,
        &RunSummary {
            workers,
            shards: shard_count,
            elapsed: start.elapsed(),
        },
    );
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::observe::TimeSeriesRecorder;
    use crate::{scenario, techniques};
    use mem_trace::{AttackConfig, Attacker, ReplayTrace};
    use rh_hwmodel::Technique;

    fn quick_config() -> RunConfig {
        RunConfig::paper(&ExperimentScale::quick())
    }

    #[derive(Debug)]
    struct Null;
    impl Mitigation for Null {
        fn name(&self) -> &str {
            "none"
        }
        fn on_activate(&mut self, _: BankId, _: RowAddr, _: &mut Vec<MitigationAction>) {}
        fn on_refresh_interval(&mut self, _: &mut Vec<MitigationAction>) {}
        fn storage_bits_per_bank(&self) -> u64 {
            0
        }
    }

    #[test]
    fn unprotected_attack_flips_bits() {
        // A null mitigation: the attack must succeed.
        let config = quick_config();
        let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
        let metrics = run_observed(attack, &mut Null, &config, &mut NullObserver);
        assert!(metrics.flips > 0, "{metrics:?}");
        assert_eq!(metrics.mitigation_activations, 0);
        assert_eq!(metrics.first_trigger_act, None);
    }

    #[test]
    fn twice_stops_the_same_attack() {
        let config = quick_config();
        let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
        let mut twice = techniques::build(Technique::TwiCe, &config, 1);
        let metrics = run_observed(attack, twice.as_mut(), &config, &mut NullObserver);
        assert_eq!(metrics.flips, 0, "{metrics:?}");
        assert!(metrics.trigger_events > 0);
        // Pure attack trace → no false positives.
        assert_eq!(metrics.false_positive_events, 0);
    }

    #[test]
    fn false_positives_attribute_to_benign_rows() {
        let config = quick_config();
        // Benign-only trace with PARA: every trigger is a false positive.
        let trace = scenario::workload_only(&config, 3);
        let mut para = techniques::build(Technique::Para, &config, 3);
        let metrics = run_observed(trace, para.as_mut(), &config, &mut NullObserver);
        assert!(metrics.trigger_events > 0);
        assert_eq!(metrics.false_positive_events, metrics.trigger_events);
    }

    #[test]
    fn first_trigger_records_activation_count() {
        let config = quick_config();
        let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
        let mut twice = techniques::build(Technique::TwiCe, &config, 1);
        let metrics = run_observed(attack, twice.as_mut(), &config, &mut NullObserver);
        // TWiCe triggers deterministically at 34 750 activations.
        assert_eq!(metrics.first_trigger_act, Some(34_750));
    }

    #[test]
    fn run_stops_at_configured_intervals() {
        let config = quick_config();
        // An endless trace is clipped at config.intervals().
        let long = ReplayTrace::new(vec![vec![]; 10 * config.intervals() as usize]);
        let metrics = run_observed(long, &mut Null, &config, &mut NullObserver);
        assert_eq!(metrics.intervals, config.intervals());
    }

    /// A counting observer: every hook increments a counter, so the test
    /// can check the engine calls each hook the documented number of
    /// times.
    #[derive(Default)]
    struct Counting {
        activations: u64,
        aggressors: u64,
        actions: u64,
        true_positives: u64,
        intervals: u64,
        run_ends: u64,
    }

    impl Observer for Counting {
        fn on_activation(&mut self, _: BankId, _: RowAddr, aggressor: bool) {
            self.activations += 1;
            if aggressor {
                self.aggressors += 1;
            }
        }
        fn on_action(&mut self, _: &MitigationAction, true_positive: bool) {
            self.actions += 1;
            if true_positive {
                self.true_positives += 1;
            }
        }
        fn on_interval_end(&mut self, snapshot: &IntervalSnapshot<'_>) {
            self.intervals += 1;
            assert_eq!(snapshot.interval + 1, self.intervals);
            assert_eq!(snapshot.activations, self.activations);
            assert_eq!(snapshot.triggers, self.actions);
        }
        fn on_run_end(&mut self, _: &mut RunMetrics) {
            self.run_ends += 1;
        }
    }

    #[test]
    fn observer_hooks_fire_once_per_event() {
        let config = quick_config();
        let trace = scenario::paper_mix(&config, 5);
        let mut para = techniques::build(Technique::Para, &config, 5);
        let mut counting = Counting::default();
        let metrics = run_observed(trace, para.as_mut(), &config, &mut counting);
        assert_eq!(counting.activations, metrics.workload_activations);
        assert!(counting.aggressors > 0);
        assert!(counting.aggressors < counting.activations);
        assert_eq!(counting.actions, metrics.trigger_events);
        assert_eq!(
            counting.actions - counting.true_positives,
            metrics.false_positive_events
        );
        assert_eq!(counting.intervals, metrics.intervals);
        assert_eq!(counting.run_ends, 1);
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let config = quick_config();
        let unobserved = {
            let mut m = techniques::build(Technique::LoLiPromi, &config, 2);
            run_observed(
                scenario::paper_mix(&config, 2),
                m.as_mut(),
                &config,
                &mut NullObserver,
            )
        };
        let observed = {
            let mut m = techniques::build(Technique::LoLiPromi, &config, 2);
            let mut counting = Counting::default();
            run_observed(
                scenario::paper_mix(&config, 2),
                m.as_mut(),
                &config,
                &mut counting,
            )
        };
        assert_eq!(unobserved, observed);
    }

    #[test]
    fn timeseries_final_point_matches_run_totals() {
        let config = quick_config();
        let trace = scenario::paper_mix(&config, 3);
        let build = |seed: u64| move || techniques::build(Technique::Para, &quick_config(), seed);
        let metrics = run_with_observed(trace, &build(3), &config, &TimeSeriesRecorder::new(64));
        let series = metrics.timeseries.as_ref().expect("recorder attached");
        assert_eq!(series.stride, 64);
        let last = series.points.last().expect("nonempty run");
        assert_eq!(last.interval, metrics.intervals - 1);
        assert_eq!(last.activations, metrics.workload_activations);
        assert_eq!(last.mitigation_activations, metrics.mitigation_activations);
        assert_eq!(last.triggers, metrics.trigger_events);
        assert_eq!(last.false_positives, metrics.false_positive_events);
        assert_eq!(last.max_disturbance, metrics.max_disturbance);
        // Grid points sit at stride boundaries; cumulative counters are
        // monotone along the series.
        for pair in series.points.windows(2) {
            assert!(pair[0].interval < pair[1].interval);
            assert!(pair[0].activations <= pair[1].activations);
            assert!(pair[0].triggers <= pair[1].triggers);
            assert!(pair[0].max_disturbance <= pair[1].max_disturbance);
        }
        for p in &series.points[..series.points.len() - 1] {
            assert_eq!((p.interval + 1) % series.stride, 0);
        }
    }
}
