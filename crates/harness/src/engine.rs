//! The run engine: drives a trace through a mitigation and the DRAM
//! device, collecting [`RunMetrics`].
//!
//! Per refresh interval the engine
//!
//! 1. delivers the interval's activations — each goes to the device
//!    (disturbance accounting) and to the mitigation (`on_activate`),
//!    whose actions are applied immediately;
//! 2. issues the auto-refresh to the device;
//! 3. calls the mitigation's `on_refresh_interval`, applying the
//!    interval-granular actions (CaPRoMi's collective decisions,
//!    ProHit's hot-table refresh).
//!
//! False-positive attribution uses the trace's ground-truth aggressor
//! labels: a trigger is a false positive when the row it names (the
//! suspected aggressor for `act_n`, the victim for `RefreshRow`) is not,
//! respectively adjacent to, an attacker-hammered row.

use crate::config::RunConfig;
use crate::metrics::RunMetrics;
use dram_sim::{BankId, Command, DramDevice, RowAddr};
use mem_trace::{TraceEvent, TraceSource, TraceSplit};
use std::collections::HashSet;
use tivapromi::{Mitigation, MitigationAction};

/// Tracks which rows the attacker has hammered, for ground-truth
/// false-positive attribution.
#[derive(Debug, Default)]
struct AggressorLedger {
    rows: HashSet<(u32, u32)>,
}

impl AggressorLedger {
    fn record(&mut self, event: &TraceEvent) {
        if event.aggressor {
            self.rows.insert((event.bank.0, event.row.0));
        }
    }

    fn is_aggressor(&self, bank: BankId, row: RowAddr) -> bool {
        self.rows.contains(&(bank.0, row.0))
    }

    /// Is this action aimed at real attacker activity?
    fn is_true_positive(&self, action: &MitigationAction) -> bool {
        match action {
            // act_n names the suspected aggressor.
            MitigationAction::ActivateNeighbors { bank, row } => self.is_aggressor(*bank, *row),
            // RefreshRow names a victim; it is justified if either
            // physical neighbor is an attacker row.
            MitigationAction::RefreshRow { bank, row } => {
                (row.0 > 0 && self.is_aggressor(*bank, RowAddr(row.0 - 1)))
                    || self.is_aggressor(*bank, RowAddr(row.0 + 1))
            }
        }
    }
}

/// Runs `trace` through `mitigation` on a device built from `config`.
///
/// The trace is consumed until it is exhausted or `config.intervals()`
/// refresh intervals have elapsed, whichever comes first.
///
/// See the [crate example](crate) for usage.
pub fn run<S: TraceSource>(
    mut trace: S,
    mitigation: &mut dyn Mitigation,
    config: &RunConfig,
) -> RunMetrics {
    let mut device = config.build_device();
    run_on_device(&mut trace, mitigation, config, &mut device)
}

/// Like [`run`], but on a caller-provided device (lets callers inspect
/// device state afterwards).
pub fn run_on_device<S: TraceSource>(
    trace: &mut S,
    mitigation: &mut dyn Mitigation,
    config: &RunConfig,
    device: &mut DramDevice,
) -> RunMetrics {
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut actions: Vec<MitigationAction> = Vec::new();
    let mut ledger = AggressorLedger::default();

    let mut trigger_events = 0u64;
    let mut false_positive_events = 0u64;
    // First-trigger bookkeeping is *bank-local*: each trigger is
    // attributed to the bank it targets and recorded against that bank's
    // own activation count.  The run-level `first_trigger_act` is the
    // minimum over banks, which makes it invariant under bank sharding
    // (each shard sees exactly its bank's activations).
    let mut bank_acts: Vec<u64> = Vec::new();
    let mut bank_first: Vec<Option<u64>> = Vec::new();
    let max_intervals = config.intervals();

    let apply_actions = |actions: &mut Vec<MitigationAction>,
                         device: &mut DramDevice,
                         ledger: &AggressorLedger,
                         bank_acts: &[u64],
                         bank_first: &mut Vec<Option<u64>>,
                         trigger_events: &mut u64,
                         false_positive_events: &mut u64| {
        for action in actions.drain(..) {
            *trigger_events += 1;
            if !ledger.is_true_positive(&action) {
                *false_positive_events += 1;
            }
            let bank = action.bank().index();
            if bank >= bank_first.len() {
                bank_first.resize(bank + 1, None);
            }
            if bank_first[bank].is_none() {
                bank_first[bank] = Some(bank_acts.get(bank).copied().unwrap_or(0));
            }
            device.apply(action.to_command());
        }
    };

    for _ in 0..max_intervals {
        events.clear();
        if !trace.next_interval(&mut events) {
            break;
        }
        for event in &events {
            ledger.record(event);
            let bank = event.bank.index();
            if bank >= bank_acts.len() {
                bank_acts.resize(bank + 1, 0);
            }
            bank_acts[bank] += 1;
            device.apply(Command::Activate {
                bank: event.bank,
                row: event.row,
            });
            mitigation.on_activate(event.bank, event.row, &mut actions);
            if !actions.is_empty() {
                apply_actions(
                    &mut actions,
                    device,
                    &ledger,
                    &bank_acts,
                    &mut bank_first,
                    &mut trigger_events,
                    &mut false_positive_events,
                );
            }
        }
        device.apply(Command::Refresh);
        mitigation.on_refresh_interval(&mut actions);
        if !actions.is_empty() {
            apply_actions(
                &mut actions,
                device,
                &ledger,
                &bank_acts,
                &mut bank_first,
                &mut trigger_events,
                &mut false_positive_events,
            );
        }
    }

    let stats = device.stats();
    RunMetrics {
        technique: mitigation.name().to_string(),
        workload_activations: stats.workload_activations,
        mitigation_activations: stats.mitigation_activations,
        trigger_events,
        false_positive_events,
        flips: device.flips().len(),
        max_disturbance: device.max_disturbance_seen(),
        flip_threshold: config.flip_threshold,
        first_trigger_act: bank_first.iter().flatten().copied().min(),
        storage_bytes_per_bank: mitigation.storage_bytes_per_bank(),
        intervals: stats.refresh_intervals,
    }
}

/// Runs `trace` through the mitigation that `build` constructs, sharded
/// by bank when `config.parallelism` allows it.
///
/// With `shard_by_bank` (and more than one bank) each bank's sub-stream
/// ([`TraceSplit::bank_shard`]) is driven through its *own* mitigation
/// instance and device on a worker pool, and the per-shard
/// [`RunMetrics`] are combined with [`RunMetrics::merge`].  Because
/// banks are independent — disturbance never couples them and every
/// mitigation derives per-bank decision streams via
/// [`dram_sim::bank_seed`] — the merged result is bit-identical to the
/// sequential run, for every worker count and schedule.
///
/// `build` must construct the mitigation identically on every call
/// (same technique, same seed); it is called once per bank shard, plus
/// once for the sequential fallback.
pub fn run_with<S: TraceSplit>(
    trace: S,
    build: &(dyn Fn() -> Box<dyn Mitigation> + Sync),
    config: &RunConfig,
) -> RunMetrics {
    let banks = config.geometry.banks();
    if !config.parallelism.shard_by_bank || banks <= 1 {
        let mut mitigation = build();
        return run(trace, mitigation.as_mut(), config);
    }
    let shards: Vec<Box<dyn TraceSplit>> =
        (0..banks).map(|b| trace.bank_shard(BankId(b))).collect();
    let workers = config.parallelism.effective_workers();
    let results = crate::parallel::map_workers(shards, workers, |shard| {
        let mut mitigation = build();
        run(shard, mitigation.as_mut(), config)
    });
    results
        .into_iter()
        .reduce(RunMetrics::merge)
        .expect("geometry has at least one bank")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::{scenario, techniques};
    use mem_trace::{AttackConfig, Attacker, ReplayTrace};
    use rh_hwmodel::Technique;

    fn quick_config() -> RunConfig {
        RunConfig::paper(&ExperimentScale::quick())
    }

    #[test]
    fn unprotected_attack_flips_bits() {
        // A null mitigation: the attack must succeed.
        #[derive(Debug)]
        struct Null;
        impl Mitigation for Null {
            fn name(&self) -> &str {
                "none"
            }
            fn on_activate(&mut self, _: BankId, _: RowAddr, _: &mut Vec<MitigationAction>) {}
            fn on_refresh_interval(&mut self, _: &mut Vec<MitigationAction>) {}
            fn storage_bits_per_bank(&self) -> u64 {
                0
            }
        }
        let config = quick_config();
        let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
        let metrics = run(attack, &mut Null, &config);
        assert!(metrics.flips > 0, "{metrics:?}");
        assert_eq!(metrics.mitigation_activations, 0);
        assert_eq!(metrics.first_trigger_act, None);
    }

    #[test]
    fn twice_stops_the_same_attack() {
        let config = quick_config();
        let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
        let mut twice = techniques::build(Technique::TwiCe, &config, 1);
        let metrics = run(attack, twice.as_mut(), &config);
        assert_eq!(metrics.flips, 0, "{metrics:?}");
        assert!(metrics.trigger_events > 0);
        // Pure attack trace → no false positives.
        assert_eq!(metrics.false_positive_events, 0);
    }

    #[test]
    fn false_positives_attribute_to_benign_rows() {
        let config = quick_config();
        // Benign-only trace with PARA: every trigger is a false positive.
        let trace = scenario::workload_only(&config, 3);
        let mut para = techniques::build(Technique::Para, &config, 3);
        let metrics = run(trace, para.as_mut(), &config);
        assert!(metrics.trigger_events > 0);
        assert_eq!(metrics.false_positive_events, metrics.trigger_events);
    }

    #[test]
    fn first_trigger_records_activation_count() {
        let config = quick_config();
        let attack = Attacker::new(AttackConfig::flooding(RowAddr(30_000), config.intervals()));
        let mut twice = techniques::build(Technique::TwiCe, &config, 1);
        let metrics = run(attack, twice.as_mut(), &config);
        // TWiCe triggers deterministically at 34 750 activations.
        assert_eq!(metrics.first_trigger_act, Some(34_750));
    }

    #[test]
    fn run_stops_at_configured_intervals() {
        let config = quick_config();
        // An endless trace is clipped at config.intervals().
        let long = ReplayTrace::new(vec![vec![]; 10 * config.intervals() as usize]);
        #[derive(Debug)]
        struct Null;
        impl Mitigation for Null {
            fn name(&self) -> &str {
                "none"
            }
            fn on_activate(&mut self, _: BankId, _: RowAddr, _: &mut Vec<MitigationAction>) {}
            fn on_refresh_interval(&mut self, _: &mut Vec<MitigationAction>) {}
            fn storage_bits_per_bank(&self) -> u64 {
                0
            }
        }
        let metrics = run(long, &mut Null, &config);
        assert_eq!(metrics.intervals, config.intervals());
    }
}
