//! Experiment configuration: the simulated system (Table I) and the
//! scale knobs that trade fidelity for runtime.

use dram_sim::{BackendSpec, DramTiming, Geometry, RefreshOrder, RowAddr, WeakCellSpec};
use serde::{Deserialize, Serialize};

/// How large an experiment run is.
///
/// The paper simulates 1.56 M refresh intervals (≈ 190 refresh windows)
/// and 175 M activations.  That is [`ExperimentScale::full`]; the
/// default [`ExperimentScale::paper_shape`] uses 16 windows, which
/// reproduces every reported *shape* (rates are per-interval, so they
/// converge within a few windows) in seconds instead of minutes, and
/// [`ExperimentScale::quick`] is for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Refresh windows to simulate.
    pub windows: u64,
    /// Banks under traffic/attack.
    pub banks: u32,
    /// Independent seeds for μ ± σ statistics.
    pub seeds: u32,
}

impl ExperimentScale {
    /// Test scale: 2 windows, 1 bank, 2 seeds.
    pub fn quick() -> Self {
        ExperimentScale {
            windows: 2,
            banks: 1,
            seeds: 2,
        }
    }

    /// Default experiment scale: 16 windows, 4 banks, 5 seeds.
    pub fn paper_shape() -> Self {
        ExperimentScale {
            windows: 16,
            banks: 4,
            seeds: 5,
        }
    }

    /// The paper's full trace length: ≈ 190 windows (1.56 M intervals),
    /// 4 banks, 10 seeds.
    pub fn full() -> Self {
        ExperimentScale {
            windows: 190,
            banks: 4,
            seeds: 10,
        }
    }

    /// Parses a scale name (`quick` / `paper` / `full`) as used by the
    /// experiment binaries' first CLI argument.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(ExperimentScale::quick()),
            "paper" => Some(ExperimentScale::paper_shape()),
            "full" => Some(ExperimentScale::full()),
            _ => None,
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::paper_shape()
    }
}

/// How a run is parallelised.
///
/// Banks are independent in the disturbance model and every mitigation
/// keeps per-bank state, so the engine can split a run into per-bank
/// shards (see [`crate::engine::run_sharded`]) and merge the metrics with
/// bit-identical results.  Worker count and scheduling never change the
/// outcome — only the wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads; `0` means auto (the `RH_WORKERS` environment
    /// variable if set, else `std::thread::available_parallelism`).
    pub workers: usize,
    /// Whether to shard runs by bank (on by default; sharding a
    /// single-bank run falls back to the sequential path).
    pub shard_by_bank: bool,
}

impl Parallelism {
    /// Sequential execution: one worker, no sharding.
    pub fn sequential() -> Self {
        Parallelism {
            workers: 1,
            shard_by_bank: false,
        }
    }

    /// A fixed worker count with bank sharding.
    pub fn with_workers(workers: usize) -> Self {
        Parallelism {
            workers,
            shard_by_bank: true,
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            crate::parallel::available_workers()
        } else {
            self.workers
        }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            workers: 0,
            shard_by_bank: true,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Device geometry.
    pub geometry: Geometry,
    /// Device timing.
    pub timing: DramTiming,
    /// Refresh-order policy.
    pub refresh_order: RefreshOrder,
    /// Defect remapping pairs (logical, physical), if any.
    pub remapping: Vec<(RowAddr, RowAddr)>,
    /// Bit-flip threshold (paper: 139 K).
    pub flip_threshold: u32,
    /// Distance-2 disturbance coupling in sixteenths (0 = the paper's
    /// ±1-only model; the blast-radius extension).
    pub distance2_sixteenths: u32,
    /// Refresh windows to simulate.
    pub windows: u64,
    /// How [`crate::engine::run_sharded`] parallelises this run.
    pub parallelism: Parallelism,
    /// Soft size of the engine's event batches, in activations (the
    /// chunk granularity of trace delivery and mitigation dispatch —
    /// see [`mem_trace::EventBatch`]).  Any value ≥ 1 produces
    /// bit-identical results; the default amortises per-batch dispatch
    /// while keeping the buffer cache-resident.
    pub batch_events: usize,
    /// Which disturbance backend the engine drives (fidelity tier).
    /// Absent in configs written before backends existed, which parse
    /// as [`BackendSpec::Exact`] — the event-accurate default.
    pub backend: BackendSpec,
    /// Per-row weak-cell model.  Absent in configs written before the
    /// heterogeneous model existed, which parse as
    /// [`WeakCellSpec::Uniform`] — every row at [`Self::flip_threshold`],
    /// bit-identical to the pre-weak-map engine.
    pub weak_cells: WeakCellSpec,
}

impl RunConfig {
    /// The paper configuration at the given scale.
    pub fn paper(scale: &ExperimentScale) -> Self {
        RunConfig {
            geometry: Geometry::paper().with_banks(scale.banks),
            timing: DramTiming::ddr4(),
            refresh_order: RefreshOrder::SequentialNeighbors,
            remapping: Vec::new(),
            flip_threshold: dram_sim::FLIP_THRESHOLD,
            distance2_sixteenths: 0,
            windows: scale.windows,
            parallelism: Parallelism::default(),
            batch_events: mem_trace::DEFAULT_BATCH_EVENTS,
            backend: BackendSpec::Exact,
            weak_cells: WeakCellSpec::Uniform,
        }
    }

    /// Returns a copy with a different parallelism policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns a copy with a different event-batch size (clamped to at
    /// least 1 by the batch buffer; results are identical at any size).
    pub fn with_batch_events(mut self, batch_events: usize) -> Self {
        self.batch_events = batch_events;
        self
    }

    /// Returns a copy running a different disturbance backend (see
    /// [`BackendSpec`] for what each tier guarantees).
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Returns a copy with a different per-row weak-cell model (see
    /// [`WeakCellSpec`]; `Uniform` is the classic single-threshold
    /// device).
    pub fn with_weak_cells(mut self, weak_cells: WeakCellSpec) -> Self {
        self.weak_cells = weak_cells;
        self
    }

    /// Total refresh intervals of the run.
    pub fn intervals(&self) -> u64 {
        self.windows * u64::from(self.geometry.intervals_per_window())
    }

    /// Returns a copy with a different refresh order (§IV robustness
    /// check).
    pub fn with_refresh_order(mut self, order: RefreshOrder) -> Self {
        self.refresh_order = order;
        self
    }

    /// Returns a copy with defect-row remapping.
    pub fn with_remapping(mut self, pairs: Vec<(RowAddr, RowAddr)>) -> Self {
        self.remapping = pairs;
        self
    }

    /// Builds the DRAM device for this configuration.
    pub fn build_device(&self) -> dram_sim::DramDevice {
        let mapping: Box<dyn dram_sim::RowMapping> = if self.remapping.is_empty() {
            Box::new(dram_sim::IdentityMapping)
        } else {
            Box::new(dram_sim::RemappedMapping::new(
                self.remapping.iter().copied(),
            ))
        };
        let mut device = dram_sim::DramDevice::with_policies(
            self.geometry,
            self.timing,
            mapping,
            &self.refresh_order,
        );
        device.set_flip_threshold(self.flip_threshold);
        device.set_distance2_coupling(self.distance2_sixteenths);
        if let Some(map) = self.weak_cells.materialize(&self.geometry) {
            device.set_weak_cell_map(&map);
        }
        device
    }

    /// Builds the fast-tier backend for this configuration (same
    /// mapping, refresh order, threshold and coupling as
    /// [`RunConfig::build_device`]; timing does not enter the fast
    /// model).
    pub fn build_fast_backend(&self) -> dram_sim::FastBackend {
        let mapping: Box<dyn dram_sim::RowMapping> = if self.remapping.is_empty() {
            Box::new(dram_sim::IdentityMapping)
        } else {
            Box::new(dram_sim::RemappedMapping::new(
                self.remapping.iter().copied(),
            ))
        };
        let mut backend =
            dram_sim::FastBackend::with_policies(self.geometry, mapping, &self.refresh_order);
        backend.set_flip_threshold(self.flip_threshold);
        backend.set_distance2_coupling(self.distance2_sixteenths);
        if let Some(map) = self.weak_cells.materialize(&self.geometry) {
            backend.set_weak_cell_map(&map);
        }
        backend
    }
}

/// Renders Table I — the simulated system specification.
pub fn table1_rows(scale: &ExperimentScale) -> Vec<(String, String)> {
    let config = RunConfig::paper(scale);
    let g = &config.geometry;
    let t = &config.timing;
    let mean_acts = 28.0 + 137.0 / 2.0 / f64::from(g.banks()); // benign + shared attacker budget
    vec![
        (
            "Work load".into(),
            "SPEC-like synthetic mixed load + ramping attacker".into(),
        ),
        ("Number of banks".into(), g.banks().to_string()),
        ("Rows per bank".into(), g.rows_per_bank().to_string()),
        (
            "DDR4 refresh window".into(),
            format!("{} ms", t.refresh_window_ms),
        ),
        (
            "DDR4 refresh interval".into(),
            format!("{} µs", t.refresh_interval_us),
        ),
        (
            "DDR4 activation to activation".into(),
            format!("{} ns", t.act_to_act_ns),
        ),
        (
            "DDR4 refresh time".into(),
            format!("{} ns", t.refresh_time_ns),
        ),
        ("DDR4 frequency".into(), format!("{} GHz", t.frequency_ghz)),
        (
            "Refresh intervals (RefInt)".into(),
            g.intervals_per_window().to_string(),
        ),
        (
            "Rows per interval (RowsPI)".into(),
            g.rows_per_interval().to_string(),
        ),
        (
            "Simulated refresh intervals".into(),
            config.intervals().to_string(),
        ),
        (
            "Approx. activations".into(),
            format!(
                "{:.1} M",
                mean_acts * config.intervals() as f64 * f64::from(g.banks()) / 1e6
            ),
        ),
        ("Bit flipping activation threshold".into(), "139 K".into()),
        ("P_base".into(), "2^-23".into()),
        (
            "RefInt · P_base".into(),
            format!("{:.2e}", 8192.0 * (2f64).powi(-23)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_by_name() {
        assert_eq!(
            ExperimentScale::from_name("quick"),
            Some(ExperimentScale::quick())
        );
        assert_eq!(
            ExperimentScale::from_name("paper"),
            Some(ExperimentScale::paper_shape())
        );
        assert_eq!(
            ExperimentScale::from_name("full"),
            Some(ExperimentScale::full())
        );
        assert_eq!(ExperimentScale::from_name("bogus"), None);
    }

    #[test]
    fn full_scale_matches_table_i_interval_count() {
        let config = RunConfig::paper(&ExperimentScale::full());
        // Table I: 1.56 M refresh intervals.
        let intervals = config.intervals() as f64;
        assert!((intervals - 1.56e6).abs() / 1.56e6 < 0.01, "{intervals}");
    }

    #[test]
    fn device_builder_applies_policies() {
        let scale = ExperimentScale::quick();
        let config = RunConfig::paper(&scale)
            .with_refresh_order(RefreshOrder::FullyRandom { seed: 3 })
            .with_remapping(vec![(RowAddr(1), RowAddr(99))]);
        let device = config.build_device();
        assert_eq!(device.mapping().physical(RowAddr(1)), RowAddr(99));
    }

    #[test]
    fn table1_includes_key_parameters() {
        let rows = table1_rows(&ExperimentScale::full());
        let text: String = rows.iter().map(|(k, v)| format!("{k}={v};")).collect();
        assert!(text.contains("8192"));
        assert!(text.contains("139 K"));
        assert!(text.contains("2^-23"));
        assert!(text.contains("64 ms"));
    }
}
