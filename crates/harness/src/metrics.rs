//! Run metrics, time-series trajectories, and multi-seed statistics.

use dram_sim::{BankId, CycleStats, RowAddr};
use serde::{Deserialize, Serialize};

/// One attributed bit flip: which row flipped, when, and how much
/// bank-local activation budget had been spent by then.
///
/// The flip log is the profiling attacker's only sensor — it sees the
/// flips it caused, never the device's threshold map — so the record
/// carries exactly what an attacker reading back its own memory could
/// know: the location and the budget position.  `bank_act` uses the
/// same bank-local accounting as [`RunMetrics::time_to_first_flip`],
/// which makes every field invariant under bank sharding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipRecord {
    /// Bank in which the flip occurred.
    pub bank: BankId,
    /// Physical row that flipped.
    pub row: RowAddr,
    /// Global refresh-interval count at which the flip happened.
    pub interval: u64,
    /// Bank-local activation count when the flip was recorded.
    pub bank_act: u64,
}

impl FlipRecord {
    /// Canonical log order: by interval, then bank, then row.  A row
    /// flips at most once per run, so the key is unique and any
    /// concatenation of disjoint shard logs re-sorts to the same bytes.
    fn sort_key(&self) -> (u64, u32, u32) {
        (self.interval, self.bank.0, self.row.0)
    }
}

/// Sorts a flip log into the canonical order shared by sequential runs
/// and shard merges.
pub(crate) fn sort_flip_log(log: &mut [FlipRecord]) {
    log.sort_unstable_by_key(FlipRecord::sort_key);
}

/// One sampled point of a run's per-interval trajectory.
///
/// Counters are *cumulative* up to and including `interval` (0-based
/// index of the refresh interval just completed), so a point is a
/// snapshot of the run so far, not a per-interval delta.  Cumulative
/// counters make shard merging exact: banks are disjoint, so the
/// sequential run's snapshot at any interval is the sum (max for
/// `max_disturbance`) of the shards' snapshots at that interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimePoint {
    /// 0-based index of the refresh interval this point samples.
    pub interval: u64,
    /// Cumulative workload activations.
    pub activations: u64,
    /// Cumulative mitigation activations.
    pub mitigation_activations: u64,
    /// Cumulative trigger events.
    pub triggers: u64,
    /// Cumulative ground-truth false-positive trigger events.
    pub false_positives: u64,
    /// Highest disturbance counter seen so far (attack margin over time).
    pub max_disturbance: u32,
}

/// A per-interval trajectory recorded by
/// [`crate::observe::TimeSeriesRecorder`]: cumulative [`TimePoint`]s on
/// a fixed sampling grid (every `stride` intervals) plus a final point
/// at the last processed interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sampling stride in refresh intervals: points sit at intervals
    /// `stride-1, 2*stride-1, …` plus the run's final interval.
    pub stride: u64,
    /// Sampled points in ascending `interval` order.
    pub points: Vec<TimePoint>,
}

impl TimeSeries {
    /// An empty series with the given sampling stride (`stride == 0` is
    /// treated as 1).
    pub fn new(stride: u64) -> Self {
        TimeSeries {
            stride: stride.max(1),
            points: Vec::new(),
        }
    }

    /// The cumulative snapshot in effect at `interval`: the latest point
    /// at or before it.  `None` before the first point (or for an empty
    /// series), in which case all counters are zero.
    pub fn value_at(&self, interval: u64) -> Option<&TimePoint> {
        self.points.iter().rev().find(|p| p.interval <= interval)
    }

    /// Combines the trajectories of two disjoint bank shards of one run.
    ///
    /// Both series must use the same `stride` (they come from the same
    /// recorder).  The merged sample set is the union of the two sample
    /// sets restricted to the stride grid, plus the later of the two
    /// final intervals; each shard contributes its cumulative snapshot
    /// in effect at the sampled interval (a shard whose trace ended
    /// early holds its final totals, exactly as its frozen counters do
    /// in the sequential run).  Like [`RunMetrics::merge`] the operation
    /// is associative and commutative, so the merged trajectory is
    /// bit-identical to the sequential recording for every worker count
    /// and merge order.
    ///
    /// # Panics
    ///
    /// Panics if the strides differ (the series are not shards of one
    /// recorded run).
    #[must_use]
    pub fn merge(self, other: TimeSeries) -> TimeSeries {
        assert_eq!(
            self.stride, other.stride,
            "cannot merge time series with different sampling strides"
        );
        let stride = self.stride;
        let end = match (self.points.last(), other.points.last()) {
            (Some(a), Some(b)) => a.interval.max(b.interval),
            (Some(a), None) => a.interval,
            (None, Some(b)) => b.interval,
            (None, None) => return TimeSeries::new(stride),
        };
        let mut intervals: Vec<u64> = self
            .points
            .iter()
            .chain(&other.points)
            .map(|p| p.interval)
            .filter(|&i| i == end || (i + 1) % stride == 0)
            .collect();
        intervals.sort_unstable();
        intervals.dedup();
        let points = intervals
            .into_iter()
            .map(|interval| {
                let zero = TimePoint {
                    interval,
                    activations: 0,
                    mitigation_activations: 0,
                    triggers: 0,
                    false_positives: 0,
                    max_disturbance: 0,
                };
                let a = self.value_at(interval).copied().unwrap_or(zero);
                let b = other.value_at(interval).copied().unwrap_or(zero);
                TimePoint {
                    interval,
                    activations: a.activations + b.activations,
                    mitigation_activations: a.mitigation_activations + b.mitigation_activations,
                    triggers: a.triggers + b.triggers,
                    false_positives: a.false_positives + b.false_positives,
                    max_disturbance: a.max_disturbance.max(b.max_disturbance),
                }
            })
            .collect();
        TimeSeries { stride, points }
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Technique name.
    pub technique: String,
    /// Workload activations driven through the device.
    pub workload_activations: u64,
    /// Workload activations carrying the trace's ground-truth
    /// `aggressor` label — the attacker's spent budget.
    pub aggressor_activations: u64,
    /// Extra activations issued by the mitigation (`act_n` counts the
    /// neighbors it touches).
    pub mitigation_activations: u64,
    /// Mitigation trigger *events* (one `act_n`/`RefreshRow` = one event).
    pub trigger_events: u64,
    /// Trigger events attributable to benign rows (ground-truth false
    /// positives).
    pub false_positive_events: u64,
    /// Bit flips — successful row-hammer attacks.
    pub flips: usize,
    /// Highest disturbance counter reached anywhere (attack margin).
    pub max_disturbance: u32,
    /// The flip threshold in effect.
    pub flip_threshold: u32,
    /// Workload activation count at the first trigger event, if any.
    pub first_trigger_act: Option<u64>,
    /// Bank-local activation count at the first bit flip, if any: the
    /// number of activations delivered to the flipping bank up to and
    /// including the one that crossed the threshold.  Uses the same
    /// bank-local accounting as `first_trigger_act`, so it is invariant
    /// under bank sharding; for a pure single-bank attack trace this is
    /// exactly the attacker budget spent to the first flip.
    pub time_to_first_flip: Option<u64>,
    /// Every attributed flip in canonical `(interval, bank, row)` order
    /// — the profiling attacker's sensor.  A row flips at most once per
    /// run, so the log is bounded by the device's row count.
    pub flip_log: Vec<FlipRecord>,
    /// Storage the technique needs per bank, bytes.
    pub storage_bytes_per_bank: f64,
    /// Refresh intervals simulated.
    pub intervals: u64,
    /// Per-interval trajectory, present when a
    /// [`crate::observe::TimeSeriesRecorder`] was attached to the run.
    pub timeseries: Option<TimeSeries>,
    /// Cycle-level accounting, present when the run used the `cycle`
    /// backend tier ([`dram_sim::CycleBackend`]).
    pub cycle: Option<CycleStats>,
}

impl RunMetrics {
    /// Activation overhead in percent — Fig. 4's y-axis and Table III's
    /// "Activations Overhead" column.
    pub fn overhead_percent(&self) -> f64 {
        if self.workload_activations == 0 {
            0.0
        } else {
            100.0 * self.mitigation_activations as f64 / self.workload_activations as f64
        }
    }

    /// False-positive rate in percent, as defined by the paper's
    /// Table III: ground-truth false-positive trigger events per
    /// *workload activation*.
    ///
    /// This is deliberately **not** the share of triggers that are
    /// false (see [`RunMetrics::false_positive_share_percent`] for
    /// that): Table III's FPR column is bounded by its activation
    /// overhead column on every row — ProHit 0.34 % < 0.6 %, PARA
    /// 0.062 % < 0.1 % — which only holds for a per-activation rate,
    /// since each trigger costs at least one extra activation.
    pub fn fpr_percent(&self) -> f64 {
        if self.workload_activations == 0 {
            0.0
        } else {
            100.0 * self.false_positive_events as f64 / self.workload_activations as f64
        }
    }

    /// The share of trigger events that are ground-truth false
    /// positives, in percent (0 when the run never triggered).
    ///
    /// A *precision-style* diagnostic complementing the paper's
    /// per-activation [`RunMetrics::fpr_percent`]: it answers "when the
    /// mitigation acts, how often is it wrong?" and is the quantity to
    /// watch on time-series trajectories, where the activation
    /// denominator grows without bound.
    pub fn false_positive_share_percent(&self) -> f64 {
        if self.trigger_events == 0 {
            0.0
        } else {
            100.0 * self.false_positive_events as f64 / self.trigger_events as f64
        }
    }

    /// How close the worst attack came to flipping a bit, as a fraction
    /// of the threshold (1.0 = a flip happened).
    pub fn attack_margin(&self) -> f64 {
        f64::from(self.max_disturbance) / f64::from(self.flip_threshold)
    }

    /// Evasion rate in percent: the share of the attacker's activation
    /// budget that drew no true-positive response from the mitigation,
    /// `100 · (1 − true_positive_triggers / aggressor_activations)`,
    /// clamped at 0 (a mitigation may fire several justified triggers
    /// per aggressor activation).  0 when the trace had no aggressors.
    ///
    /// High evasion with flips is a defeated defense; high evasion
    /// without flips just means the attack stayed under the radar *and*
    /// under the threshold.
    pub fn evasion_percent(&self) -> f64 {
        if self.aggressor_activations == 0 {
            return 0.0;
        }
        let true_positives = self.trigger_events - self.false_positive_events;
        (100.0 * (1.0 - true_positives as f64 / self.aggressor_activations as f64)).max(0.0)
    }

    /// Bit flips per million attacker activations (0 when the trace had
    /// no aggressors) — the red-team search's efficiency metric.
    pub fn flips_per_mega_act(&self) -> f64 {
        if self.aggressor_activations == 0 {
            0.0
        } else {
            1e6 * self.flips as f64 / self.aggressor_activations as f64
        }
    }

    /// Cycles spent on mitigation-issued commands (0 unless the run
    /// used the `cycle` backend tier).
    pub fn mitigation_cycles(&self) -> u64 {
        self.cycle.map_or(0, |c| c.mitigation_cycles)
    }

    /// Share of workload activations served from the open row, in
    /// `[0, 1]` (0 unless the run used the `cycle` backend tier).
    pub fn row_buffer_hit_rate(&self) -> f64 {
        self.cycle.map_or(0.0, |c| c.row_buffer_hit_rate())
    }

    /// Mitigation cycles in percent of workload cycles — the measured
    /// bandwidth cost of the defense, as opposed to the activation-count
    /// proxy [`RunMetrics::overhead_percent`] (0 unless the run used the
    /// `cycle` backend tier).
    pub fn bandwidth_overhead_percent(&self) -> f64 {
        self.cycle.map_or(0.0, |c| c.bandwidth_overhead_percent())
    }

    /// Combines the metrics of two disjoint shards of one run (the
    /// per-bank shards of [`crate::engine::run_sharded`]).
    ///
    /// Counters sum; `max_disturbance` and `intervals` take the maximum;
    /// `first_trigger_act` and `time_to_first_flip` take the earliest
    /// (bank-local) occurrence present; the `flip_log`s concatenate and
    /// re-sort into canonical `(interval, bank, row)` order (unique per
    /// run, so any merge grouping yields the same bytes); the
    /// optional `timeseries` sections combine point-wise with
    /// [`TimeSeries::merge`].  The run-level fields (`technique`,
    /// `flip_threshold`, `storage_bytes_per_bank`) are identical across
    /// shards and are kept from `self`.
    ///
    /// The operation is associative, and commutative whenever the kept
    /// fields agree — so a parallel reduction merges shards in any
    /// grouping with identical results.
    #[must_use]
    pub fn merge(self, other: RunMetrics) -> RunMetrics {
        RunMetrics {
            technique: self.technique,
            workload_activations: self.workload_activations + other.workload_activations,
            aggressor_activations: self.aggressor_activations + other.aggressor_activations,
            mitigation_activations: self.mitigation_activations + other.mitigation_activations,
            trigger_events: self.trigger_events + other.trigger_events,
            false_positive_events: self.false_positive_events + other.false_positive_events,
            flips: self.flips + other.flips,
            max_disturbance: self.max_disturbance.max(other.max_disturbance),
            flip_threshold: self.flip_threshold,
            first_trigger_act: match (self.first_trigger_act, other.first_trigger_act) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            time_to_first_flip: match (self.time_to_first_flip, other.time_to_first_flip) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            flip_log: {
                let mut log = self.flip_log;
                log.extend(other.flip_log);
                sort_flip_log(&mut log);
                log
            },
            storage_bytes_per_bank: self.storage_bytes_per_bank,
            intervals: self.intervals.max(other.intervals),
            timeseries: match (self.timeseries, other.timeseries) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (a, b) => a.or(b),
            },
            cycle: match (self.cycle, other.cycle) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Combines the metrics of two *different devices* of a fleet
    /// population — the second level of the metrics merge tree, above
    /// the per-run shard [`RunMetrics::merge`].
    ///
    /// Unlike shard merging, the devices may be heterogeneous: their
    /// techniques, flip thresholds and storage figures can all differ.
    /// Counters still sum and extrema still combine, but the kept
    /// fields are resolved symmetrically instead of taken from `self`:
    /// `flip_threshold` takes the **minimum** (the population's weakest
    /// device bounds its security), `storage_bytes_per_bank` the
    /// maximum (provisioning is worst-case), and the `technique` label
    /// is kept only when both sides agree (mixed populations get the
    /// empty string — callers label cohorts themselves).  Per-device
    /// `timeseries` sections are dropped: their strides need not agree
    /// across devices, and population trajectories are the quantile
    /// sketches' job.  The per-device `flip_log` is dropped too — its
    /// `(interval, bank, row)` keys collide across devices, so no
    /// canonical population order exists (and the aggregate `flips`
    /// counter already carries the population total).
    ///
    /// The operation is associative **and** commutative for arbitrary
    /// operands — no agreement precondition — so a fleet can fold
    /// device results in any grouping.  `first_trigger_act` and
    /// `time_to_first_flip` become population minima: the earliest
    /// (bank-local) occurrence on any device.
    #[must_use]
    pub fn merge_population(self, other: RunMetrics) -> RunMetrics {
        let technique = if self.technique == other.technique {
            self.technique.clone()
        } else {
            String::new()
        };
        let flip_threshold = self.flip_threshold.min(other.flip_threshold);
        let storage = self
            .storage_bytes_per_bank
            .max(other.storage_bytes_per_bank);
        let mut merged = self.merge(other);
        merged.technique = technique;
        merged.flip_threshold = flip_threshold;
        merged.storage_bytes_per_bank = storage;
        merged.timeseries = None;
        merged.flip_log = Vec::new();
        merged
    }

    /// Returns a copy without the optional observability sections, for
    /// comparing the core counters of runs recorded with different
    /// observers attached.
    #[must_use]
    pub fn without_timeseries(mut self) -> RunMetrics {
        self.timeseries = None;
        self
    }
}

/// Mean and (sample) standard deviation over seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanStd {
    /// Computes mean ± std of `values`.
    ///
    /// ```
    /// use rh_harness::MeanStd;
    /// let s = MeanStd::of(&[1.0, 2.0, 3.0]);
    /// assert!((s.mean - 2.0).abs() < 1e-12);
    /// assert!((s.std - 1.0).abs() < 1e-12);
    /// ```
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        MeanStd { mean, std, n }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            technique: "X".into(),
            workload_activations: 1000,
            aggressor_activations: 300,
            mitigation_activations: 20,
            trigger_events: 10,
            false_positive_events: 4,
            flips: 0,
            max_disturbance: 50,
            flip_threshold: 100,
            first_trigger_act: Some(42),
            time_to_first_flip: None,
            flip_log: Vec::new(),
            storage_bytes_per_bank: 120.0,
            intervals: 16,
            timeseries: None,
            cycle: None,
        }
    }

    #[test]
    fn derived_rates() {
        let m = metrics();
        assert!((m.overhead_percent() - 2.0).abs() < 1e-12);
        assert!((m.fpr_percent() - 0.4).abs() < 1e-12);
        assert!((m.attack_margin() - 0.5).abs() < 1e-12);
        // 6 true positives over 300 aggressor acts -> 98% evasion.
        assert!((m.evasion_percent() - 98.0).abs() < 1e-12);
        assert_eq!(m.flips_per_mega_act(), 0.0);
        let mut flipped = metrics();
        flipped.flips = 3;
        assert!((flipped.flips_per_mega_act() - 1e4).abs() < 1e-9);
        let mut benign = metrics();
        benign.aggressor_activations = 0;
        assert_eq!(benign.evasion_percent(), 0.0);
        // More true positives than aggressor acts clamps at 0.
        let mut swamped = metrics();
        swamped.aggressor_activations = 2;
        assert_eq!(swamped.evasion_percent(), 0.0);
    }

    /// Pins the FPR definition to the paper's Table III: false-positive
    /// triggers per workload activation — NOT per trigger event, which
    /// is the separate `false_positive_share_percent`.
    #[test]
    fn fpr_is_per_workload_activation_not_per_trigger() {
        let m = metrics(); // 4 FPs, 10 triggers, 1000 activations
        assert!((m.fpr_percent() - 100.0 * 4.0 / 1000.0).abs() < 1e-12);
        assert!((m.false_positive_share_percent() - 100.0 * 4.0 / 10.0).abs() < 1e-12);
        // Consistent with Table III: FPR never exceeds the activation
        // overhead it is printed next to (each trigger costs >= 1 act).
        let mut t3 = metrics();
        t3.mitigation_activations = t3.trigger_events; // 1 act per trigger
        assert!(t3.fpr_percent() <= t3.overhead_percent());
    }

    #[test]
    fn zero_activations_do_not_divide_by_zero() {
        let mut m = metrics();
        m.workload_activations = 0;
        m.trigger_events = 0;
        assert_eq!(m.overhead_percent(), 0.0);
        assert_eq!(m.fpr_percent(), 0.0);
        assert_eq!(m.false_positive_share_percent(), 0.0);
    }

    #[test]
    fn mean_std_edge_cases() {
        let empty = MeanStd::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = MeanStd::of(&[5.0]);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.mean, 5.0);
    }

    #[test]
    fn mean_std_display_is_nonempty() {
        assert!(MeanStd::of(&[1.0, 2.0]).to_string().contains('±'));
    }

    #[test]
    fn merge_sums_counters_and_takes_extrema() {
        let mut a = metrics();
        a.time_to_first_flip = Some(900);
        let mut b = metrics();
        b.workload_activations = 500;
        b.aggressor_activations = 100;
        b.trigger_events = 3;
        b.false_positive_events = 1;
        b.flips = 2;
        b.max_disturbance = 80;
        b.first_trigger_act = Some(7);
        b.time_to_first_flip = Some(650);
        b.intervals = 20;
        let m = a.merge(b);
        assert_eq!(m.workload_activations, 1500);
        assert_eq!(m.aggressor_activations, 400);
        assert_eq!(m.trigger_events, 13);
        assert_eq!(m.false_positive_events, 5);
        assert_eq!(m.flips, 2);
        assert_eq!(m.max_disturbance, 80);
        assert_eq!(m.first_trigger_act, Some(7));
        assert_eq!(m.time_to_first_flip, Some(650));
        assert_eq!(m.intervals, 20);
        assert_eq!(m.technique, "X");
        assert_eq!(m.flip_threshold, 100);
    }

    #[test]
    fn merge_first_flip_handles_missing_sides() {
        let mut a = metrics();
        a.time_to_first_flip = Some(11);
        let b = metrics(); // None
        assert_eq!(a.clone().merge(b.clone()).time_to_first_flip, Some(11));
        assert_eq!(b.clone().merge(a).time_to_first_flip, Some(11));
        assert_eq!(b.clone().merge(b).time_to_first_flip, None);
    }

    #[test]
    fn merge_first_trigger_handles_missing_sides() {
        let mut a = metrics();
        a.first_trigger_act = None;
        let b = metrics();
        assert_eq!(a.clone().merge(b.clone()).first_trigger_act, Some(42));
        assert_eq!(b.merge(a.clone()).first_trigger_act, Some(42));
        let mut c = metrics();
        c.first_trigger_act = None;
        assert_eq!(a.merge(c).first_trigger_act, None);
    }

    #[test]
    fn merge_population_resolves_heterogeneous_kept_fields() {
        let mut a = metrics();
        a.technique = "PARA".into();
        a.flip_threshold = 90;
        a.storage_bytes_per_bank = 64.0;
        let mut b = metrics();
        b.technique = "TWiCe".into();
        b.flip_threshold = 140;
        b.storage_bytes_per_bank = 512.0;
        let m = a.clone().merge_population(b.clone());
        // Mixed techniques blank the label; weakest threshold and
        // largest storage footprint win.
        assert_eq!(m.technique, "");
        assert_eq!(m.flip_threshold, 90);
        assert_eq!(m.storage_bytes_per_bank, 512.0);
        // Counters still sum, like the shard merge.
        assert_eq!(m.workload_activations, 2000);
        // Homogeneous devices keep their shared label.
        let same = a.clone().merge_population(a.clone());
        assert_eq!(same.technique, "PARA");
    }

    #[test]
    fn merge_population_is_commutative_and_associative_across_devices() {
        let mut a = metrics();
        a.technique = "PARA".into();
        a.flip_threshold = 90;
        let mut b = metrics();
        b.technique = "TWiCe".into();
        b.storage_bytes_per_bank = 512.0;
        b.time_to_first_flip = Some(700);
        let mut c = metrics();
        c.technique = "PARA".into();
        c.flip_threshold = 75;
        c.first_trigger_act = Some(5);
        assert_eq!(
            a.clone().merge_population(b.clone()),
            b.clone().merge_population(a.clone())
        );
        assert_eq!(
            a.clone()
                .merge_population(b.clone())
                .merge_population(c.clone()),
            a.merge_population(b.merge_population(c))
        );
    }

    fn flip(bank: u32, row: u32, interval: u64, bank_act: u64) -> FlipRecord {
        FlipRecord {
            bank: BankId(bank),
            row: RowAddr(row),
            interval,
            bank_act,
        }
    }

    #[test]
    fn merge_concatenates_flip_logs_in_canonical_order() {
        let mut a = metrics();
        a.flip_log = vec![flip(0, 10, 2, 300), flip(0, 12, 5, 800)];
        let mut b = metrics();
        b.flip_log = vec![flip(1, 4, 1, 90), flip(1, 7, 2, 310)];
        let left = a.clone().merge(b.clone()).flip_log;
        let right = b.clone().merge(a.clone()).flip_log;
        assert_eq!(left, right, "merge order must not change the log");
        let keys: Vec<(u64, u32, u32)> = left
            .iter()
            .map(|f| (f.interval, f.bank.0, f.row.0))
            .collect();
        assert_eq!(keys, vec![(1, 1, 4), (2, 0, 10), (2, 1, 7), (5, 0, 12)]);
    }

    #[test]
    fn merge_population_drops_flip_log() {
        let mut a = metrics();
        a.flip_log = vec![flip(0, 10, 2, 300)];
        let m = a.clone().merge_population(a);
        assert!(m.flip_log.is_empty());
        assert_eq!(m.flips, 0); // the counter, not the log, carries totals
    }

    #[test]
    fn merge_population_drops_timeseries() {
        let mut a = metrics();
        a.timeseries = Some(TimeSeries {
            stride: 4,
            points: vec![point(3, 100, 10)],
        });
        let m = a.clone().merge_population(a);
        assert_eq!(m.timeseries, None);
    }

    fn point(interval: u64, acts: u64, dist: u32) -> TimePoint {
        TimePoint {
            interval,
            activations: acts,
            mitigation_activations: acts / 10,
            triggers: acts / 100,
            false_positives: acts / 200,
            max_disturbance: dist,
        }
    }

    #[test]
    fn timeseries_merge_sums_on_the_shared_grid() {
        // Stride 4: grid points at 3, 7, …; both shards run 8 intervals.
        let a = TimeSeries {
            stride: 4,
            points: vec![point(3, 100, 10), point(7, 200, 20)],
        };
        let b = TimeSeries {
            stride: 4,
            points: vec![point(3, 50, 30), point(7, 80, 5)],
        };
        let m = a.merge(b);
        assert_eq!(m.points.len(), 2);
        assert_eq!(m.points[0].activations, 150);
        assert_eq!(m.points[0].max_disturbance, 30);
        assert_eq!(m.points[1].activations, 280);
        assert_eq!(m.points[1].max_disturbance, 20);
    }

    #[test]
    fn timeseries_merge_extends_short_shards_with_final_totals() {
        // Shard `a` ended at interval 5 (off-grid final point); shard
        // `b` ran through interval 11.  The merged series must keep the
        // grid of the longer shard and hold `a`'s frozen totals — and
        // drop `a`'s off-grid final point, which the sequential run
        // never samples.
        let a = TimeSeries {
            stride: 4,
            points: vec![point(3, 100, 10), point(5, 120, 12)],
        };
        let b = TimeSeries {
            stride: 4,
            points: vec![point(3, 40, 4), point(7, 70, 7), point(11, 110, 11)],
        };
        let m = a.clone().merge(b.clone());
        let intervals: Vec<u64> = m.points.iter().map(|p| p.interval).collect();
        assert_eq!(intervals, vec![3, 7, 11]);
        assert_eq!(m.points[1].activations, 120 + 70);
        assert_eq!(m.points[2].activations, 120 + 110);
        assert_eq!(m.points[2].max_disturbance, 12);
        // Commutative.
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn timeseries_merge_is_associative_across_unequal_lengths() {
        let a = TimeSeries {
            stride: 4,
            points: vec![point(1, 10, 1)], // ended before the first grid point
        };
        let b = TimeSeries {
            stride: 4,
            points: vec![point(3, 30, 3), point(6, 60, 6)],
        };
        let c = TimeSeries {
            stride: 4,
            points: vec![point(3, 7, 9), point(7, 14, 2), point(9, 21, 4)],
        };
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        assert_eq!(left, right);
        // The global final interval survives; earlier off-grid finals do not.
        let intervals: Vec<u64> = left.points.iter().map(|p| p.interval).collect();
        assert_eq!(intervals, vec![3, 7, 9]);
        assert_eq!(left.points[2].activations, 10 + 60 + 21);
    }

    #[test]
    fn timeseries_merge_handles_empty_series() {
        let empty = TimeSeries::new(4);
        let a = TimeSeries {
            stride: 4,
            points: vec![point(3, 30, 3)],
        };
        assert_eq!(empty.clone().merge(a.clone()), a);
        assert_eq!(a.clone().merge(empty.clone()), a);
        assert_eq!(empty.clone().merge(empty.clone()), empty);
    }

    #[test]
    fn metrics_merge_combines_timeseries_sections() {
        let mut a = metrics();
        let mut b = metrics();
        a.timeseries = Some(TimeSeries {
            stride: 2,
            points: vec![point(1, 5, 1)],
        });
        b.timeseries = None;
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.timeseries, a.timeseries);
        b.timeseries = Some(TimeSeries {
            stride: 2,
            points: vec![point(1, 7, 3)],
        });
        let merged = a.clone().merge(b).timeseries.unwrap();
        assert_eq!(merged.points[0].activations, 12);
        assert_eq!(a.without_timeseries().timeseries, None);
    }
}
