//! Run metrics and multi-seed statistics.

use serde::{Deserialize, Serialize};

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Technique name.
    pub technique: String,
    /// Workload activations driven through the device.
    pub workload_activations: u64,
    /// Extra activations issued by the mitigation (`act_n` counts the
    /// neighbors it touches).
    pub mitigation_activations: u64,
    /// Mitigation trigger *events* (one `act_n`/`RefreshRow` = one event).
    pub trigger_events: u64,
    /// Trigger events attributable to benign rows (ground-truth false
    /// positives).
    pub false_positive_events: u64,
    /// Bit flips — successful row-hammer attacks.
    pub flips: usize,
    /// Highest disturbance counter reached anywhere (attack margin).
    pub max_disturbance: u32,
    /// The flip threshold in effect.
    pub flip_threshold: u32,
    /// Workload activation count at the first trigger event, if any.
    pub first_trigger_act: Option<u64>,
    /// Storage the technique needs per bank, bytes.
    pub storage_bytes_per_bank: f64,
    /// Refresh intervals simulated.
    pub intervals: u64,
}

impl RunMetrics {
    /// Activation overhead in percent — Fig. 4's y-axis and Table III's
    /// "Activations Overhead" column.
    pub fn overhead_percent(&self) -> f64 {
        if self.workload_activations == 0 {
            0.0
        } else {
            100.0 * self.mitigation_activations as f64 / self.workload_activations as f64
        }
    }

    /// False-positive rate in percent: trigger events caused by benign
    /// rows per workload activation.
    pub fn fpr_percent(&self) -> f64 {
        if self.workload_activations == 0 {
            0.0
        } else {
            100.0 * self.false_positive_events as f64 / self.workload_activations as f64
        }
    }

    /// How close the worst attack came to flipping a bit, as a fraction
    /// of the threshold (1.0 = a flip happened).
    pub fn attack_margin(&self) -> f64 {
        f64::from(self.max_disturbance) / f64::from(self.flip_threshold)
    }

    /// Combines the metrics of two disjoint shards of one run (the
    /// per-bank shards of [`crate::engine::run_with`]).
    ///
    /// Counters sum; `max_disturbance` and `intervals` take the maximum;
    /// `first_trigger_act` takes the earliest trigger present.  The
    /// run-level fields (`technique`, `flip_threshold`,
    /// `storage_bytes_per_bank`) are identical across shards and are
    /// kept from `self`.
    ///
    /// The operation is associative, and commutative whenever the kept
    /// fields agree — so a parallel reduction merges shards in any
    /// grouping with identical results.
    #[must_use]
    pub fn merge(self, other: RunMetrics) -> RunMetrics {
        RunMetrics {
            technique: self.technique,
            workload_activations: self.workload_activations + other.workload_activations,
            mitigation_activations: self.mitigation_activations + other.mitigation_activations,
            trigger_events: self.trigger_events + other.trigger_events,
            false_positive_events: self.false_positive_events + other.false_positive_events,
            flips: self.flips + other.flips,
            max_disturbance: self.max_disturbance.max(other.max_disturbance),
            flip_threshold: self.flip_threshold,
            first_trigger_act: match (self.first_trigger_act, other.first_trigger_act) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            storage_bytes_per_bank: self.storage_bytes_per_bank,
            intervals: self.intervals.max(other.intervals),
        }
    }
}

/// Mean and (sample) standard deviation over seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanStd {
    /// Computes mean ± std of `values`.
    ///
    /// ```
    /// use rh_harness::MeanStd;
    /// let s = MeanStd::of(&[1.0, 2.0, 3.0]);
    /// assert!((s.mean - 2.0).abs() < 1e-12);
    /// assert!((s.std - 1.0).abs() < 1e-12);
    /// ```
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        MeanStd { mean, std, n }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            technique: "X".into(),
            workload_activations: 1000,
            mitigation_activations: 20,
            trigger_events: 10,
            false_positive_events: 4,
            flips: 0,
            max_disturbance: 50,
            flip_threshold: 100,
            first_trigger_act: Some(42),
            storage_bytes_per_bank: 120.0,
            intervals: 16,
        }
    }

    #[test]
    fn derived_rates() {
        let m = metrics();
        assert!((m.overhead_percent() - 2.0).abs() < 1e-12);
        assert!((m.fpr_percent() - 0.4).abs() < 1e-12);
        assert!((m.attack_margin() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_activations_do_not_divide_by_zero() {
        let mut m = metrics();
        m.workload_activations = 0;
        assert_eq!(m.overhead_percent(), 0.0);
        assert_eq!(m.fpr_percent(), 0.0);
    }

    #[test]
    fn mean_std_edge_cases() {
        let empty = MeanStd::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = MeanStd::of(&[5.0]);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.mean, 5.0);
    }

    #[test]
    fn mean_std_display_is_nonempty() {
        assert!(MeanStd::of(&[1.0, 2.0]).to_string().contains('±'));
    }

    #[test]
    fn merge_sums_counters_and_takes_extrema() {
        let a = metrics();
        let mut b = metrics();
        b.workload_activations = 500;
        b.trigger_events = 3;
        b.false_positive_events = 1;
        b.flips = 2;
        b.max_disturbance = 80;
        b.first_trigger_act = Some(7);
        b.intervals = 20;
        let m = a.merge(b);
        assert_eq!(m.workload_activations, 1500);
        assert_eq!(m.trigger_events, 13);
        assert_eq!(m.false_positive_events, 5);
        assert_eq!(m.flips, 2);
        assert_eq!(m.max_disturbance, 80);
        assert_eq!(m.first_trigger_act, Some(7));
        assert_eq!(m.intervals, 20);
        assert_eq!(m.technique, "X");
        assert_eq!(m.flip_threshold, 100);
    }

    #[test]
    fn merge_first_trigger_handles_missing_sides() {
        let mut a = metrics();
        a.first_trigger_act = None;
        let b = metrics();
        assert_eq!(a.clone().merge(b.clone()).first_trigger_act, Some(42));
        assert_eq!(b.merge(a.clone()).first_trigger_act, Some(42));
        let mut c = metrics();
        c.first_trigger_act = None;
        assert_eq!(a.merge(c).first_trigger_act, None);
    }
}
