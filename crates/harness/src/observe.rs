//! Observability: hook points inside the run engine, and the concrete
//! observers built on them.
//!
//! The paper's evaluation reduces every run to end-of-run scalars
//! (Table III overhead μ±σ, FPR, first-trigger points).  This module
//! opens the run up: an [`Observer`] receives callbacks *during* a run
//! — per activation, per mitigation action, per refresh-interval
//! boundary — and an [`Observe`] strategy forks one observer per bank
//! shard of a parallel run and joins the results back together, so
//! observability composes with the sharded engine without perturbing
//! its bit-identical determinism contract.
//!
//! Three concrete observers cover the common questions:
//!
//! * [`TimeSeriesRecorder`] — the disturbance-counter and trigger-rate
//!   *trajectory* of a run, sampled on a fixed interval grid and
//!   installed into [`RunMetrics::timeseries`], where
//!   [`RunMetrics::merge`] combines shard trajectories exactly.
//! * [`DisturbanceHistogram`] — the per-bank distribution of
//!   disturbance counters at refresh-window boundaries, for
//!   attack-margin analysis (how close does the tail get to the flip
//!   threshold, and how heavy is it?).
//! * [`PerfCounters`] — per-shard wall-time, events/sec and worker
//!   utilization of the parallel engine, rendered as a
//!   [`crate::TextTable`].
//!
//! The no-observer path stays zero-cost: [`crate::engine::run_sharded`]
//! monomorphises the engine loop over [`NullObserver`], whose empty
//! inline callbacks compile away.  Observers only pay dynamic dispatch
//! when one is actually attached (via [`crate::Runner::observer`] or
//! [`crate::engine::run_with_observed`]).

use crate::metrics::{RunMetrics, TimePoint, TimeSeries};
use crate::table::TextTable;
use dram_sim::{BankId, DramDevice, RowAddr};
use mem_trace::EventBatch;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tivapromi::MitigationAction;

/// Which slice of a run an observer is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard index, `0..count`.
    pub index: usize,
    /// Total shards of the run (1 for a sequential run).
    pub count: usize,
    /// The bank this shard drives, or `None` for a whole-run
    /// (sequential, all-banks) observer.
    pub bank: Option<BankId>,
}

impl ShardInfo {
    /// The whole-run pseudo-shard of a sequential (unsharded) run.
    pub fn whole_run() -> Self {
        ShardInfo {
            index: 0,
            count: 1,
            bank: None,
        }
    }
}

/// The engine's state at a refresh-interval boundary, passed to
/// [`Observer::on_interval_end`].
///
/// Counters are cumulative over the observed run (shard).  The backend's
/// aggregate state (`stats`, `max_disturbance`) is available on every
/// fidelity tier; the borrowed device — for deeper inspection such as
/// per-row disturbance — only when the tier keeps an event-accurate
/// device (`exact` and `cycle`; the fast tier resolves per-row state
/// only at interval boundaries and exposes aggregates alone).
#[derive(Debug)]
pub struct IntervalSnapshot<'a> {
    /// 0-based index of the refresh interval that just completed.
    pub interval: u64,
    /// Cumulative workload activations delivered.
    pub activations: u64,
    /// Cumulative trigger events.
    pub triggers: u64,
    /// Cumulative ground-truth false-positive trigger events.
    pub false_positives: u64,
    /// The backend's aggregate activity counters so far.
    pub stats: dram_sim::DeviceStats,
    /// Highest disturbance counter seen so far (attack margin), in
    /// whole activations.
    pub max_disturbance: u32,
    /// The event-accurate device, when the backend tier keeps one.
    pub device: Option<&'a DramDevice>,
}

/// Callbacks from inside one engine run (one shard of a parallel run,
/// or the whole of a sequential one).
///
/// All methods default to no-ops so implementations override only the
/// granularity they need; per-activation hooks are on the engine's hot
/// path and should stay O(1) and allocation-free.
pub trait Observer: Send {
    /// A workload activation of `row` in `bank` was delivered
    /// (`aggressor` is the trace's ground-truth label).
    fn on_activation(&mut self, bank: BankId, row: RowAddr, aggressor: bool) {
        let _ = (bank, row, aggressor);
    }

    /// The mitigation issued `action`; `true_positive` is the
    /// ground-truth attribution against the trace's aggressor ledger.
    fn on_action(&mut self, action: &MitigationAction, true_positive: bool) {
        let _ = (action, true_positive);
    }

    /// One interval segment of an [`EventBatch`] is about to be
    /// replayed: the events at `range` belong to the interval whose
    /// [`Observer::on_interval_end`] fires next.
    ///
    /// The default fans out to [`Observer::on_activation`] per event,
    /// so per-event observers see every activation unchanged.  Batch
    /// granularity lets an observer touch its counters once per
    /// interval instead of once per activation; note that all of a
    /// segment's activations are reported *before* the segment's
    /// [`Observer::on_action`] calls (the scalar path interleaved
    /// them), while interval-end state is identical.
    fn on_batch(&mut self, batch: &EventBatch, range: std::ops::Range<usize>) {
        for i in range {
            self.on_activation(batch.bank(i), batch.row(i), batch.aggressor(i));
        }
    }

    /// A refresh interval completed (after the auto-refresh and the
    /// mitigation's interval-granular actions were applied).
    fn on_interval_end(&mut self, snapshot: &IntervalSnapshot<'_>) {
        let _ = snapshot;
    }

    /// The run (shard) finished.  `metrics` is the shard's result;
    /// observers may install recorded data into its optional sections
    /// (e.g. [`RunMetrics::timeseries`]), which
    /// [`RunMetrics::merge`] then combines across shards.
    fn on_run_end(&mut self, metrics: &mut RunMetrics) {
        let _ = metrics;
    }
}

/// The zero-cost default observer: every callback is an empty inline
/// no-op, so the engine loop monomorphised over `NullObserver` is
/// identical to an unobserved loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_batch(&mut self, _batch: &EventBatch, _range: std::ops::Range<usize>) {
        // Explicitly empty (not the fan-out default): the unobserved
        // engine must not even loop over the segment.
    }
}

impl Observer for Box<dyn Observer> {
    fn on_activation(&mut self, bank: BankId, row: RowAddr, aggressor: bool) {
        (**self).on_activation(bank, row, aggressor);
    }
    fn on_action(&mut self, action: &MitigationAction, true_positive: bool) {
        (**self).on_action(action, true_positive);
    }
    fn on_batch(&mut self, batch: &EventBatch, range: std::ops::Range<usize>) {
        (**self).on_batch(batch, range);
    }
    fn on_interval_end(&mut self, snapshot: &IntervalSnapshot<'_>) {
        (**self).on_interval_end(snapshot);
    }
    fn on_run_end(&mut self, metrics: &mut RunMetrics) {
        (**self).on_run_end(metrics);
    }
}

/// Fans every callback out to a list of observers, in attachment order.
#[derive(Default)]
pub struct FanoutObserver(pub Vec<Box<dyn Observer>>);

impl Observer for FanoutObserver {
    fn on_activation(&mut self, bank: BankId, row: RowAddr, aggressor: bool) {
        for o in &mut self.0 {
            o.on_activation(bank, row, aggressor);
        }
    }
    fn on_action(&mut self, action: &MitigationAction, true_positive: bool) {
        for o in &mut self.0 {
            o.on_action(action, true_positive);
        }
    }
    fn on_batch(&mut self, batch: &EventBatch, range: std::ops::Range<usize>) {
        for o in &mut self.0 {
            o.on_batch(batch, range.clone());
        }
    }
    fn on_interval_end(&mut self, snapshot: &IntervalSnapshot<'_>) {
        for o in &mut self.0 {
            o.on_interval_end(snapshot);
        }
    }
    fn on_run_end(&mut self, metrics: &mut RunMetrics) {
        for o in &mut self.0 {
            o.on_run_end(metrics);
        }
    }
}

/// Wall-clock summary of a (possibly sharded) run, passed to
/// [`Observe::on_run_end`].
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    /// Worker threads the engine used.
    pub workers: usize,
    /// Shards the run was split into (1 for sequential).
    pub shards: usize,
    /// Total wall-clock time of the run, including the merge.
    pub elapsed: Duration,
}

/// An observation strategy attachable to a whole (possibly sharded)
/// run: forks one [`Observer`] per shard and is notified of shard and
/// run completion with wall-clock timings.
///
/// Shard callbacks arrive from worker threads, hence `&self` receivers
/// and the `Sync` bound; implementations aggregate through interior
/// mutability (all provided observers use a mutex locked only at
/// shard-granular events, never on the activation hot path).
pub trait Observe: Send + Sync {
    /// Creates the observer for one shard (or for the whole sequential
    /// run, when `shard.bank` is `None`).
    fn observer(&self, shard: &ShardInfo) -> Box<dyn Observer>;

    /// A shard is about to run (called on the worker thread).
    fn on_shard_start(&self, shard: &ShardInfo) {
        let _ = shard;
    }

    /// A shard finished in `elapsed` with the given per-shard metrics.
    fn on_shard_finish(&self, shard: &ShardInfo, metrics: &RunMetrics, elapsed: Duration) {
        let _ = (shard, metrics, elapsed);
    }

    /// The run finished; `merged` is the final merged result.
    fn on_run_end(&self, merged: &RunMetrics, summary: &RunSummary) {
        let _ = (merged, summary);
    }
}

/// The no-op observation strategy (used by the deprecated-shim paths).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserve;

impl Observe for NullObserve {
    fn observer(&self, _shard: &ShardInfo) -> Box<dyn Observer> {
        Box::new(NullObserver)
    }
}

impl Observe for &[Box<dyn Observe>] {
    fn observer(&self, shard: &ShardInfo) -> Box<dyn Observer> {
        match self.len() {
            0 => Box::new(NullObserver),
            1 => self[0].observer(shard),
            _ => Box::new(FanoutObserver(
                self.iter().map(|o| o.observer(shard)).collect(),
            )),
        }
    }
    fn on_shard_start(&self, shard: &ShardInfo) {
        for o in self.iter() {
            o.on_shard_start(shard);
        }
    }
    fn on_shard_finish(&self, shard: &ShardInfo, metrics: &RunMetrics, elapsed: Duration) {
        for o in self.iter() {
            o.on_shard_finish(shard, metrics, elapsed);
        }
    }
    fn on_run_end(&self, merged: &RunMetrics, summary: &RunSummary) {
        for o in self.iter() {
            o.on_run_end(merged, summary);
        }
    }
}

// --- TimeSeriesRecorder ---------------------------------------------

/// Records the per-interval trajectory of a run into
/// [`RunMetrics::timeseries`].
///
/// Sampling happens at refresh-interval boundaries on a fixed grid
/// (every `stride` intervals, plus a final point at the last processed
/// interval), so attaching the recorder can never perturb the run: it
/// only reads cumulative counters the engine maintains anyway.  In a
/// sharded run every shard records its own trajectory and
/// [`RunMetrics::merge`] combines them into exactly the series the
/// sequential run would have recorded.
///
/// ```
/// use rh_harness::{Runner, TimeSeriesRecorder, RunConfig, ExperimentScale, scenario};
/// use rh_hwmodel::Technique;
///
/// let config = RunConfig::paper(&ExperimentScale::quick());
/// let trace = scenario::paper_mix(&config, 1);
/// let metrics = Runner::new(config.clone())
///     .technique(Technique::Para)
///     .seed(1)
///     .observer(TimeSeriesRecorder::new(64))
///     .run(trace);
/// let series = metrics.timeseries.expect("recorder attached");
/// assert!(!series.points.is_empty());
/// assert_eq!(series.points.last().unwrap().activations, metrics.workload_activations);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TimeSeriesRecorder {
    stride: u64,
}

impl TimeSeriesRecorder {
    /// A recorder sampling every `stride` refresh intervals
    /// (`stride == 0` is treated as 1).
    pub fn new(stride: u64) -> Self {
        TimeSeriesRecorder {
            stride: stride.max(1),
        }
    }

    /// The sampling stride in refresh intervals.
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

impl Observe for TimeSeriesRecorder {
    fn observer(&self, _shard: &ShardInfo) -> Box<dyn Observer> {
        Box::new(TimeSeriesObserver {
            series: TimeSeries::new(self.stride),
            last: None,
        })
    }
}

/// Per-shard recording observer of [`TimeSeriesRecorder`].
struct TimeSeriesObserver {
    series: TimeSeries,
    /// Snapshot of the most recently completed interval, so the final
    /// (possibly off-grid) point can be emitted at run end.
    last: Option<TimePoint>,
}

impl Observer for TimeSeriesObserver {
    fn on_interval_end(&mut self, snapshot: &IntervalSnapshot<'_>) {
        let point = TimePoint {
            interval: snapshot.interval,
            activations: snapshot.activations,
            mitigation_activations: snapshot.stats.mitigation_activations,
            triggers: snapshot.triggers,
            false_positives: snapshot.false_positives,
            max_disturbance: snapshot.max_disturbance,
        };
        self.last = Some(point);
        if (snapshot.interval + 1).is_multiple_of(self.series.stride) {
            self.series.points.push(point);
        }
    }

    fn on_run_end(&mut self, metrics: &mut RunMetrics) {
        if let Some(last) = self.last {
            if self.series.points.last().map(|p| p.interval) != Some(last.interval) {
                self.series.points.push(last);
            }
        }
        let stride = self.series.stride;
        metrics.timeseries = Some(std::mem::replace(&mut self.series, TimeSeries::new(stride)));
    }
}

// --- DisturbanceHistogram -------------------------------------------

/// Shared, cloneable histogram of per-row disturbance counters,
/// sampled at refresh-window boundaries.
///
/// Buckets are logarithmic: bucket 0 counts rows at disturbance 0,
/// bucket `k >= 1` counts rows with disturbance in `[2^(k-1), 2^k)`.
/// Per bank, samples accumulate over all sampled windows, which makes
/// the tail mass directly comparable across techniques: a mitigation
/// that lets counters climb near the flip threshold shows a heavy high
/// bucket even if no flip ever happens (the attack-margin view).
///
/// The histogram observes each bank from the shard that drives it, so
/// its content is schedule- and worker-count-independent; clone the
/// handle, attach it to a [`crate::Runner`], and read
/// [`DisturbanceHistogram::per_bank`] after the run.
#[derive(Debug, Clone, Default)]
pub struct DisturbanceHistogram {
    inner: Arc<Mutex<BTreeMap<u32, Vec<u64>>>>,
}

impl DisturbanceHistogram {
    /// An empty histogram handle.
    pub fn new() -> Self {
        DisturbanceHistogram::default()
    }

    /// The bucket index for a disturbance value.
    pub fn bucket(disturbance: u32) -> usize {
        if disturbance == 0 {
            0
        } else {
            (u32::BITS - disturbance.leading_zeros()) as usize
        }
    }

    /// The half-open disturbance range `[lo, hi)` a bucket covers.
    pub fn bucket_range(bucket: usize) -> (u32, u64) {
        if bucket == 0 {
            (0, 1)
        } else {
            (1 << (bucket - 1), 1u64 << bucket)
        }
    }

    /// Per-bank bucket counts accumulated so far (bank → buckets).
    pub fn per_bank(&self) -> BTreeMap<u32, Vec<u64>> {
        self.inner.lock().expect("histogram lock").clone()
    }

    /// Renders the per-bank distribution as a table (one row per bank,
    /// one column per occupied bucket).
    pub fn render(&self) -> String {
        let per_bank = self.per_bank();
        let buckets = per_bank.values().map(Vec::len).max().unwrap_or(0);
        let mut header = vec!["bank".to_string()];
        for b in 0..buckets {
            let (lo, hi) = DisturbanceHistogram::bucket_range(b);
            header.push(if b == 0 {
                "0".into()
            } else {
                format!("{lo}..{hi}")
            });
        }
        let mut table = TextTable::new(header);
        for (bank, counts) in &per_bank {
            let mut row = vec![bank.to_string()];
            for b in 0..buckets {
                row.push(counts.get(b).copied().unwrap_or(0).to_string());
            }
            table.row(row);
        }
        table.render()
    }
}

impl Observe for DisturbanceHistogram {
    fn observer(&self, shard: &ShardInfo) -> Box<dyn Observer> {
        Box::new(HistogramObserver {
            handle: Arc::clone(&self.inner),
            bank: shard.bank,
            local: BTreeMap::new(),
        })
    }
}

/// Per-shard sampling observer of [`DisturbanceHistogram`].
struct HistogramObserver {
    handle: Arc<Mutex<BTreeMap<u32, Vec<u64>>>>,
    /// The one bank this shard drives, or `None` to sample every bank
    /// (sequential whole-run attachment).
    bank: Option<BankId>,
    local: BTreeMap<u32, Vec<u64>>,
}

impl HistogramObserver {
    fn sample_bank(&mut self, device: &DramDevice, bank: BankId) {
        let rows = device.geometry().rows_per_bank();
        let buckets = self.local.entry(bank.0).or_default();
        for row in 0..rows {
            let bucket = DisturbanceHistogram::bucket(device.disturbance(bank, RowAddr(row)));
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
    }
}

impl Observer for HistogramObserver {
    fn on_interval_end(&mut self, snapshot: &IntervalSnapshot<'_>) {
        // Per-row sampling needs the event-accurate device; on the fast
        // tier (no device) the histogram records nothing — documented
        // behavior, since the fast tier's per-row counters are only
        // meaningful at its own resolution points.
        let Some(device) = snapshot.device else {
            return;
        };
        let per_window = u64::from(device.geometry().intervals_per_window());
        if !(snapshot.interval + 1).is_multiple_of(per_window) {
            return;
        }
        match self.bank {
            Some(bank) => self.sample_bank(device, bank),
            None => {
                for bank in 0..device.geometry().banks() {
                    self.sample_bank(device, BankId(bank));
                }
            }
        }
    }

    fn on_run_end(&mut self, _metrics: &mut RunMetrics) {
        let mut shared = self.handle.lock().expect("histogram lock");
        for (bank, counts) in std::mem::take(&mut self.local) {
            let entry = shared.entry(bank).or_default();
            if entry.len() < counts.len() {
                entry.resize(counts.len(), 0);
            }
            for (b, c) in counts.into_iter().enumerate() {
                entry[b] += c;
            }
        }
    }
}

// --- PerfCounters ---------------------------------------------------

/// Wall-time of one shard of a run.
#[derive(Debug, Clone)]
pub struct ShardPerf {
    /// Shard index.
    pub shard: usize,
    /// The bank the shard drove (`None` for a whole-run shard).
    pub bank: Option<u32>,
    /// Events processed: workload plus mitigation activations.
    pub events: u64,
    /// Wall-clock time of the shard.
    pub elapsed: Duration,
}

impl ShardPerf {
    /// Events per second (0 for a zero-duration shard).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }
}

#[derive(Debug, Default)]
struct PerfData {
    shards: Vec<ShardPerf>,
    run: Option<(RunSummaryData, u64)>,
}

#[derive(Debug, Clone, Copy)]
struct RunSummaryData {
    workers: usize,
    elapsed: Duration,
}

/// Shared, cloneable per-shard performance counters for the parallel
/// engine: wall-time and events/sec per bank shard, plus overall
/// worker utilization.
///
/// Wall-clock readings are inherently non-deterministic, so they live
/// here — outside [`RunMetrics`] — and never affect the engine's
/// bit-identical determinism contract.  Clone the handle, attach it to
/// a [`crate::Runner`], and call [`PerfCounters::render`] after the
/// run:
///
/// ```
/// use rh_harness::{PerfCounters, Runner, RunConfig, ExperimentScale, scenario};
/// use rh_hwmodel::Technique;
///
/// let config = RunConfig::paper(&ExperimentScale::quick());
/// let perf = PerfCounters::new();
/// let trace = scenario::paper_mix(&config, 1);
/// Runner::new(config.clone())
///     .technique(Technique::TwiCe)
///     .observer(perf.clone())
///     .run(trace);
/// assert!(!perf.shards().is_empty());
/// assert!(perf.render().contains("events/sec"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerfCounters {
    inner: Arc<Mutex<PerfData>>,
}

impl PerfCounters {
    /// A fresh counter handle.
    pub fn new() -> Self {
        PerfCounters::default()
    }

    /// Per-shard timings recorded so far, in shard order.
    pub fn shards(&self) -> Vec<ShardPerf> {
        let mut shards = self.inner.lock().expect("perf lock").shards.clone();
        shards.sort_by_key(|s| s.shard);
        shards
    }

    /// Total events per second over the whole run, if it completed.
    pub fn total_events_per_sec(&self) -> Option<f64> {
        let data = self.inner.lock().expect("perf lock");
        data.run.map(|(summary, events)| {
            let secs = summary.elapsed.as_secs_f64();
            if secs <= 0.0 {
                0.0
            } else {
                events as f64 / secs
            }
        })
    }

    /// Worker utilization in percent: the shards' summed busy time over
    /// `workers x run wall-time`.  `None` until the run completes.
    pub fn utilization_percent(&self) -> Option<f64> {
        let data = self.inner.lock().expect("perf lock");
        let (summary, _) = data.run?;
        let busy: f64 = data.shards.iter().map(|s| s.elapsed.as_secs_f64()).sum();
        let capacity = summary.elapsed.as_secs_f64() * summary.workers.max(1) as f64;
        if capacity <= 0.0 {
            return Some(0.0);
        }
        Some(100.0 * busy / capacity)
    }

    /// Renders the per-shard table plus the run totals.
    pub fn render(&self) -> String {
        let shards = self.shards();
        let mut table = TextTable::new(vec!["shard", "bank", "events", "wall [ms]", "events/sec"]);
        for s in &shards {
            table.row(vec![
                s.shard.to_string(),
                s.bank.map_or_else(|| "all".into(), |b| b.to_string()),
                s.events.to_string(),
                format!("{:.2}", s.elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", s.events_per_sec()),
            ]);
        }
        let mut out = table.render();
        let data = self.inner.lock().expect("perf lock");
        if let Some((summary, events)) = data.run {
            drop(data);
            out.push_str(&format!(
                "total: {events} events in {:.2} ms on {} workers ({:.0} events/sec, {:.0}% utilization)\n",
                summary.elapsed.as_secs_f64() * 1e3,
                summary.workers,
                self.total_events_per_sec().unwrap_or(0.0),
                self.utilization_percent().unwrap_or(0.0),
            ));
        }
        out
    }
}

impl Observe for PerfCounters {
    fn observer(&self, _shard: &ShardInfo) -> Box<dyn Observer> {
        // Timing happens around the shard run; nothing to record inside.
        Box::new(NullObserver)
    }

    fn on_shard_finish(&self, shard: &ShardInfo, metrics: &RunMetrics, elapsed: Duration) {
        let mut data = self.inner.lock().expect("perf lock");
        data.shards.push(ShardPerf {
            shard: shard.index,
            bank: shard.bank.map(|b| b.0),
            events: metrics.workload_activations + metrics.mitigation_activations,
            elapsed,
        });
    }

    fn on_run_end(&self, merged: &RunMetrics, summary: &RunSummary) {
        let mut data = self.inner.lock().expect("perf lock");
        data.run = Some((
            RunSummaryData {
                workers: summary.workers,
                elapsed: summary.elapsed,
            },
            merged.workload_activations + merged.mitigation_activations,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            technique: "X".into(),
            workload_activations: 1000,
            aggressor_activations: 300,
            mitigation_activations: 20,
            trigger_events: 10,
            false_positive_events: 4,
            flips: 0,
            max_disturbance: 50,
            flip_threshold: 100,
            first_trigger_act: Some(42),
            time_to_first_flip: None,
            flip_log: Vec::new(),
            storage_bytes_per_bank: 120.0,
            intervals: 16,
            timeseries: None,
            cycle: None,
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(DisturbanceHistogram::bucket(0), 0);
        assert_eq!(DisturbanceHistogram::bucket(1), 1);
        assert_eq!(DisturbanceHistogram::bucket(2), 2);
        assert_eq!(DisturbanceHistogram::bucket(3), 2);
        assert_eq!(DisturbanceHistogram::bucket(4), 3);
        assert_eq!(DisturbanceHistogram::bucket(1024), 11);
        assert_eq!(DisturbanceHistogram::bucket_range(0), (0, 1));
        assert_eq!(DisturbanceHistogram::bucket_range(3), (4, 8));
        for value in [0u32, 1, 5, 139_000] {
            let (lo, hi) = DisturbanceHistogram::bucket_range(DisturbanceHistogram::bucket(value));
            assert!(
                u64::from(value) >= u64::from(lo) && u64::from(value) < hi,
                "{value}"
            );
        }
    }

    #[test]
    fn fanout_reaches_every_observer() {
        struct Counting(Arc<Mutex<u64>>);
        impl Observer for Counting {
            fn on_action(&mut self, _: &MitigationAction, _: bool) {
                *self.0.lock().unwrap() += 1;
            }
        }
        let count = Arc::new(Mutex::new(0));
        let mut fan = FanoutObserver(vec![
            Box::new(Counting(Arc::clone(&count))),
            Box::new(Counting(Arc::clone(&count))),
        ]);
        let action = MitigationAction::RefreshRow {
            bank: BankId(0),
            row: RowAddr(1),
        };
        fan.on_action(&action, true);
        assert_eq!(*count.lock().unwrap(), 2);
    }

    #[test]
    fn perf_counters_aggregate_shards() {
        let perf = PerfCounters::new();
        let shard0 = ShardInfo {
            index: 0,
            count: 2,
            bank: Some(BankId(0)),
        };
        let shard1 = ShardInfo {
            index: 1,
            count: 2,
            bank: Some(BankId(1)),
        };
        let m = metrics();
        // Completion order is scheduler-dependent; report out of order.
        perf.on_shard_finish(&shard1, &m, Duration::from_millis(10));
        perf.on_shard_finish(&shard0, &m, Duration::from_millis(30));
        perf.on_run_end(
            &m.clone().merge(m.clone()),
            &RunSummary {
                workers: 2,
                shards: 2,
                elapsed: Duration::from_millis(40),
            },
        );
        let shards = perf.shards();
        assert_eq!(shards.len(), 2);
        // Sorted by shard index regardless of completion order.
        assert_eq!(shards[0].shard, 0);
        assert_eq!(shards[0].events, 1020);
        assert!(shards[0].events_per_sec() > 0.0);
        // 40 ms busy over 2 x 40 ms capacity = 50%.
        let util = perf.utilization_percent().unwrap();
        assert!((util - 50.0).abs() < 1e-9, "{util}");
        let rendered = perf.render();
        assert!(rendered.contains("events/sec"));
        assert!(rendered.contains("utilization"));
    }

    #[test]
    fn observe_slice_fans_out_and_null_observe_is_empty() {
        let list: Vec<Box<dyn Observe>> = vec![
            Box::new(TimeSeriesRecorder::new(8)),
            Box::new(PerfCounters::new()),
        ];
        let shard = ShardInfo::whole_run();
        let slice: &[Box<dyn Observe>] = &list;
        let mut observer = slice.observer(&shard);
        let mut m = metrics();
        observer.on_run_end(&mut m);
        // The recorder installed an (empty) series even with no intervals.
        assert!(m.timeseries.is_some());
        let empty: &[Box<dyn Observe>] = &[];
        let _ = empty.observer(&shard); // NullObserver; nothing to assert beyond no panic
        assert!(
            NullObserve.observer(&shard).as_mut() as *mut dyn Observer as *const () as usize != 0
        );
    }

    #[test]
    fn recorder_emits_final_point_once() {
        let recorder = TimeSeriesRecorder::new(4);
        assert_eq!(recorder.stride(), 4);
        assert_eq!(TimeSeriesRecorder::new(0).stride(), 1);
        // Exercised end-to-end (grid + final point against a real run)
        // in tests/determinism.rs and the engine tests; here just the
        // empty-run edge: no intervals -> empty series installed.
        let mut observer = recorder.observer(&ShardInfo::whole_run());
        let mut m = metrics();
        observer.on_run_end(&mut m);
        let series = m.timeseries.unwrap();
        assert_eq!(series.stride, 4);
        assert!(series.points.is_empty());
    }
}
