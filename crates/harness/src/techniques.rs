//! Instantiating any of the ten techniques from a [`RunConfig`].
//!
//! The single entrypoint is [`build`], which takes anything convertible
//! into a [`TechniqueSpec`]: a bare [`Technique`] for the paper's
//! configurations, or a `(TivaVariant, TivaConfig)` pair for ablations
//! with custom TiVaPRoMi parameters.

use crate::config::RunConfig;
use rh_baselines::{AnyMitigation, CounterTree, Cra, Graphene, MrLoc, Para, ProHit, TwiCe};
use rh_hwmodel::Technique;
use std::fmt;
use tivapromi::{CaPromi, Mitigation, TimeVarying, TivaConfig, TivaVariant};

/// What to build: a paper-configured technique, or a TiVaPRoMi variant
/// with explicit parameters.
///
/// `Paper` derives every parameter from the run's geometry exactly as
/// the paper does (for TiVaPRoMi variants, [`TivaConfig::paper`]);
/// `Tiva` bypasses that derivation for ablation sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TechniqueSpec {
    /// One of the Table III techniques with its paper configuration.
    Paper(Technique),
    /// A TiVaPRoMi variant with a custom [`TivaConfig`].
    Tiva(TivaVariant, TivaConfig),
}

impl From<Technique> for TechniqueSpec {
    fn from(technique: Technique) -> Self {
        TechniqueSpec::Paper(technique)
    }
}

impl From<(TivaVariant, TivaConfig)> for TechniqueSpec {
    fn from((variant, tiva): (TivaVariant, TivaConfig)) -> Self {
        TechniqueSpec::Tiva(variant, tiva)
    }
}

impl TechniqueSpec {
    /// The display name the built mitigation will report.
    pub fn name(&self) -> &'static str {
        match self {
            TechniqueSpec::Paper(t) => t.name(),
            TechniqueSpec::Tiva(v, _) => v.name(),
        }
    }
}

impl fmt::Display for TechniqueSpec {
    /// Formats as the technique's reported name, byte-for-byte
    /// [`TechniqueSpec::name`] — callers keying caches or seeds on the
    /// rendered name see the exact strings `.name()` produced.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a boxed mitigation for `spec` under `config`, seeded
/// deterministically.
///
/// Accepts a bare [`Technique`] (the common case), a
/// `(TivaVariant, TivaConfig)` pair, or an explicit [`TechniqueSpec`]:
///
/// ```
/// use rh_harness::{techniques, ExperimentScale, RunConfig};
/// use rh_hwmodel::Technique;
/// use tivapromi::{TivaConfig, TivaVariant};
///
/// let config = RunConfig::paper(&ExperimentScale::quick());
/// let m = techniques::build(Technique::LoLiPromi, &config, 7);
/// assert_eq!(m.name(), "LoLiPRoMi");
///
/// // Ablation: LoPRoMi with a non-paper configuration.
/// let tiva = TivaConfig::paper(&config.geometry).with_history_entries(4);
/// let m = techniques::build((TivaVariant::LoPromi, tiva), &config, 7);
/// assert_eq!(m.name(), "LoPRoMi");
/// ```
pub fn build(spec: impl Into<TechniqueSpec>, config: &RunConfig, seed: u64) -> Box<dyn Mitigation> {
    Box::new(build_any(spec, config, seed))
}

/// Builds the statically dispatched [`AnyMitigation`] for `spec`.
///
/// This is what the engine's hot loop wants: the per-segment dispatch
/// is a `match` over the closed technique set instead of a vtable call,
/// so the techniques' `on_batch` bodies inline.  [`build`] wraps this
/// in a box for callers that need type erasure; both construct the
/// identical mitigation.
pub fn build_any(spec: impl Into<TechniqueSpec>, config: &RunConfig, seed: u64) -> AnyMitigation {
    let geometry = &config.geometry;
    match spec.into() {
        TechniqueSpec::Paper(technique) => {
            let tiva = TivaConfig::paper(geometry);
            match technique {
                Technique::Para => Para::paper(geometry, seed).into(),
                Technique::ProHit => ProHit::paper(geometry, seed).into(),
                Technique::MrLoc => MrLoc::paper(geometry, seed).into(),
                Technique::TwiCe => TwiCe::paper(geometry).into(),
                Technique::Cra => Cra::paper(geometry).into(),
                Technique::Cat => CounterTree::paper(geometry).into(),
                Technique::Graphene => Graphene::paper(geometry).into(),
                Technique::LiPromi => TimeVarying::lipromi(tiva, seed).into(),
                Technique::LoPromi => TimeVarying::lopromi(tiva, seed).into(),
                Technique::LoLiPromi => TimeVarying::lolipromi(tiva, seed).into(),
                Technique::CaPromi => CaPromi::new(tiva, seed).into(),
            }
        }
        TechniqueSpec::Tiva(variant, tiva) => match variant {
            TivaVariant::LiPromi => TimeVarying::lipromi(tiva, seed).into(),
            TivaVariant::LoPromi => TimeVarying::lopromi(tiva, seed).into(),
            TivaVariant::LoLiPromi => TimeVarying::lolipromi(tiva, seed).into(),
            TivaVariant::CaPromi => CaPromi::new(tiva, seed).into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    #[test]
    fn all_techniques_build_with_expected_names() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        for t in Technique::TABLE3 {
            assert_eq!(build(t, &config, 1).name(), t.name());
        }
        assert_eq!(build(Technique::Cat, &config, 1).name(), "CAT");
    }

    #[test]
    fn spec_routes_tiva_config_through_unchanged() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let tiva = TivaConfig::paper(&config.geometry);
        // Paper(LoLiPromi) and Tiva(LoLiPromi, paper config) are the
        // same mitigation.
        let spec = TechniqueSpec::from((TivaVariant::LoLiPromi, tiva));
        assert_eq!(spec.name(), "LoLiPRoMi");
        assert_eq!(build(spec, &config, 1).name(), "LoLiPRoMi");
    }

    #[test]
    fn tiva_pair_round_trips_through_from() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let tiva = TivaConfig::paper(&config.geometry).with_history_entries(4);
        for variant in [
            TivaVariant::LiPromi,
            TivaVariant::LoPromi,
            TivaVariant::LoLiPromi,
            TivaVariant::CaPromi,
        ] {
            // From<(TivaVariant, TivaConfig)> must preserve both halves.
            let spec = TechniqueSpec::from((variant, tiva));
            assert_eq!(spec, TechniqueSpec::Tiva(variant, tiva));
            match spec {
                TechniqueSpec::Tiva(v, c) => {
                    assert_eq!(v, variant);
                    assert_eq!(c, tiva);
                }
                other => panic!("expected Tiva spec, got {other:?}"),
            }
            assert_eq!(spec.name(), variant.name());
        }
    }

    #[test]
    fn display_matches_name_for_every_spec() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let tiva = TivaConfig::paper(&config.geometry);
        let mut specs: Vec<TechniqueSpec> = Technique::TABLE3.iter().map(|&t| t.into()).collect();
        specs.push((TivaVariant::LoLiPromi, tiva).into());
        for spec in specs {
            assert_eq!(spec.to_string(), spec.name());
        }
    }

    #[test]
    fn build_any_matches_boxed_build() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        for t in Technique::TABLE3 {
            assert_eq!(build_any(t, &config, 3).name(), build(t, &config, 3).name());
        }
    }

    #[test]
    fn storage_matches_figure_4_clusters() {
        let config = RunConfig::paper(&ExperimentScale::paper_shape());
        let bytes = |t| build(t, &config, 1).storage_bytes_per_bank();
        assert_eq!(bytes(Technique::Para), 0.0);
        assert_eq!(bytes(Technique::LiPromi), 120.0);
        assert!((bytes(Technique::CaPromi) - 376.0).abs() < 4.0);
        assert!(bytes(Technique::TwiCe) > 9.0 * bytes(Technique::CaPromi) * 0.9);
    }
}
