//! Instantiating any of the ten techniques from a [`RunConfig`].

use crate::config::RunConfig;
use rh_baselines::{CounterTree, Cra, Graphene, MrLoc, Para, ProHit, TwiCe};
use rh_hwmodel::Technique;
use tivapromi::{Mitigation, TivaConfig, TivaVariant};

/// Builds a boxed mitigation for `technique` under `config`, seeded
/// deterministically.
///
/// ```
/// use rh_harness::{techniques, ExperimentScale, RunConfig};
/// use rh_hwmodel::Technique;
///
/// let config = RunConfig::paper(&ExperimentScale::quick());
/// let m = techniques::build(Technique::LoLiPromi, &config, 7);
/// assert_eq!(m.name(), "LoLiPRoMi");
/// ```
pub fn build(technique: Technique, config: &RunConfig, seed: u64) -> Box<dyn Mitigation> {
    let geometry = &config.geometry;
    let tiva = TivaConfig::paper(geometry);
    match technique {
        Technique::Para => Box::new(Para::paper(geometry, seed)),
        Technique::ProHit => Box::new(ProHit::paper(geometry, seed)),
        Technique::MrLoc => Box::new(MrLoc::paper(geometry, seed)),
        Technique::TwiCe => Box::new(TwiCe::paper(geometry)),
        Technique::Cra => Box::new(Cra::paper(geometry)),
        Technique::Cat => Box::new(CounterTree::paper(geometry)),
        Technique::Graphene => Box::new(Graphene::paper(geometry)),
        Technique::LiPromi => TivaVariant::LiPromi.build(tiva, seed),
        Technique::LoPromi => TivaVariant::LoPromi.build(tiva, seed),
        Technique::LoLiPromi => TivaVariant::LoLiPromi.build(tiva, seed),
        Technique::CaPromi => TivaVariant::CaPromi.build(tiva, seed),
    }
}

/// Builds a TiVaPRoMi variant with a custom [`TivaConfig`] (ablations).
pub fn build_tiva(variant: TivaVariant, tiva: TivaConfig, seed: u64) -> Box<dyn Mitigation> {
    variant.build(tiva, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    #[test]
    fn all_techniques_build_with_expected_names() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        for t in Technique::TABLE3 {
            assert_eq!(build(t, &config, 1).name(), t.name());
        }
        assert_eq!(build(Technique::Cat, &config, 1).name(), "CAT");
    }

    #[test]
    fn storage_matches_figure_4_clusters() {
        let config = RunConfig::paper(&ExperimentScale::paper_shape());
        let bytes = |t| build(t, &config, 1).storage_bytes_per_bank();
        assert_eq!(bytes(Technique::Para), 0.0);
        assert_eq!(bytes(Technique::LiPromi), 120.0);
        assert!((bytes(Technique::CaPromi) - 376.0).abs() < 4.0);
        assert!(bytes(Technique::TwiCe) > 9.0 * bytes(Technique::CaPromi) * 0.9);
    }
}
