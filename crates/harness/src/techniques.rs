//! Instantiating any of the ten techniques from a [`RunConfig`].
//!
//! The single entrypoint is [`build`], which takes anything convertible
//! into a [`TechniqueSpec`]: a bare [`Technique`] for the paper's
//! configurations, or a `(TivaVariant, TivaConfig)` pair for ablations
//! with custom TiVaPRoMi parameters.

use crate::config::RunConfig;
use rh_baselines::{CounterTree, Cra, Graphene, MrLoc, Para, ProHit, TwiCe};
use rh_hwmodel::Technique;
use tivapromi::{Mitigation, TivaConfig, TivaVariant};

/// What to build: a paper-configured technique, or a TiVaPRoMi variant
/// with explicit parameters.
///
/// `Paper` derives every parameter from the run's geometry exactly as
/// the paper does (for TiVaPRoMi variants, [`TivaConfig::paper`]);
/// `Tiva` bypasses that derivation for ablation sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TechniqueSpec {
    /// One of the Table III techniques with its paper configuration.
    Paper(Technique),
    /// A TiVaPRoMi variant with a custom [`TivaConfig`].
    Tiva(TivaVariant, TivaConfig),
}

impl From<Technique> for TechniqueSpec {
    fn from(technique: Technique) -> Self {
        TechniqueSpec::Paper(technique)
    }
}

impl From<(TivaVariant, TivaConfig)> for TechniqueSpec {
    fn from((variant, tiva): (TivaVariant, TivaConfig)) -> Self {
        TechniqueSpec::Tiva(variant, tiva)
    }
}

impl TechniqueSpec {
    /// The display name the built mitigation will report.
    pub fn name(&self) -> &'static str {
        match self {
            TechniqueSpec::Paper(t) => t.name(),
            TechniqueSpec::Tiva(v, _) => v.name(),
        }
    }
}

/// Builds a boxed mitigation for `spec` under `config`, seeded
/// deterministically.
///
/// Accepts a bare [`Technique`] (the common case), a
/// `(TivaVariant, TivaConfig)` pair, or an explicit [`TechniqueSpec`]:
///
/// ```
/// use rh_harness::{techniques, ExperimentScale, RunConfig};
/// use rh_hwmodel::Technique;
/// use tivapromi::{TivaConfig, TivaVariant};
///
/// let config = RunConfig::paper(&ExperimentScale::quick());
/// let m = techniques::build(Technique::LoLiPromi, &config, 7);
/// assert_eq!(m.name(), "LoLiPRoMi");
///
/// // Ablation: LoPRoMi with a non-paper configuration.
/// let tiva = TivaConfig::paper(&config.geometry).with_history_entries(4);
/// let m = techniques::build((TivaVariant::LoPromi, tiva), &config, 7);
/// assert_eq!(m.name(), "LoPRoMi");
/// ```
pub fn build(spec: impl Into<TechniqueSpec>, config: &RunConfig, seed: u64) -> Box<dyn Mitigation> {
    let geometry = &config.geometry;
    match spec.into() {
        TechniqueSpec::Paper(technique) => {
            let tiva = TivaConfig::paper(geometry);
            match technique {
                Technique::Para => Box::new(Para::paper(geometry, seed)),
                Technique::ProHit => Box::new(ProHit::paper(geometry, seed)),
                Technique::MrLoc => Box::new(MrLoc::paper(geometry, seed)),
                Technique::TwiCe => Box::new(TwiCe::paper(geometry)),
                Technique::Cra => Box::new(Cra::paper(geometry)),
                Technique::Cat => Box::new(CounterTree::paper(geometry)),
                Technique::Graphene => Box::new(Graphene::paper(geometry)),
                Technique::LiPromi => TivaVariant::LiPromi.build(tiva, seed),
                Technique::LoPromi => TivaVariant::LoPromi.build(tiva, seed),
                Technique::LoLiPromi => TivaVariant::LoLiPromi.build(tiva, seed),
                Technique::CaPromi => TivaVariant::CaPromi.build(tiva, seed),
            }
        }
        TechniqueSpec::Tiva(variant, tiva) => variant.build(tiva, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    #[test]
    fn all_techniques_build_with_expected_names() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        for t in Technique::TABLE3 {
            assert_eq!(build(t, &config, 1).name(), t.name());
        }
        assert_eq!(build(Technique::Cat, &config, 1).name(), "CAT");
    }

    #[test]
    fn spec_routes_tiva_config_through_unchanged() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let tiva = TivaConfig::paper(&config.geometry);
        // Paper(LoLiPromi) and Tiva(LoLiPromi, paper config) are the
        // same mitigation.
        let spec = TechniqueSpec::from((TivaVariant::LoLiPromi, tiva));
        assert_eq!(spec.name(), "LoLiPRoMi");
        assert_eq!(build(spec, &config, 1).name(), "LoLiPRoMi");
    }

    #[test]
    fn storage_matches_figure_4_clusters() {
        let config = RunConfig::paper(&ExperimentScale::paper_shape());
        let bytes = |t| build(t, &config, 1).storage_bytes_per_bank();
        assert_eq!(bytes(Technique::Para), 0.0);
        assert_eq!(bytes(Technique::LiPromi), 120.0);
        assert!((bytes(Technique::CaPromi) - 376.0).abs() < 4.0);
        assert!(bytes(Technique::TwiCe) > 9.0 * bytes(Technique::CaPromi) * 0.9);
    }
}
