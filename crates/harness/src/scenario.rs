//! Standard trace scenarios used by the experiments.

use crate::config::RunConfig;
use dram_sim::{BankId, RowAddr};
use mem_trace::{
    AttackConfig, AttackKind, Attacker, IdleTrace, MixedTrace, SpecLikeWorkload, TraceSource,
    TraceSplit, WorkloadConfig,
};

/// The paper's 1→20 ramping multi-aggressor attack, sized for
/// `config`'s geometry.
///
/// This is the **one** place the ramp is constructed from a
/// [`RunConfig`]: `paper_ramp` pins its aggressor block at the full
/// geometry's row 30 000, and this constructor re-bases it
/// proportionally so scaled-down geometries (fleet devices) stay in
/// range — exactly row 30 000 again at full scale, where 65 536 rows
/// divide evenly.  [`paper_mix`] and [`named_attack`]'s `"ramp"` both
/// go through here, so geometry-dependent re-basing cannot drift
/// between them.
pub fn ramp_attack(config: &RunConfig) -> AttackConfig {
    let mut attack = AttackConfig::paper_ramp(
        config.geometry.banks(),
        config.intervals(),
        u64::from(config.geometry.intervals_per_window()),
    );
    if let AttackKind::MultiAggressorRamp { base_row, .. } = &mut attack.kind {
        let scaled = u64::from(config.geometry.rows_per_bank()) * 30_000 / 65_536;
        *base_row = RowAddr(u32::try_from(scaled).expect("scaled row fits its bank"));
    }
    attack
}

/// The paper's evaluation trace: SPEC-like mixed load plus the 1→20
/// ramping multi-aggressor attack on every bank, bounded by the DDR4
/// per-interval activation budget.
pub fn paper_mix(config: &RunConfig, seed: u64) -> MixedTrace {
    let intervals = config.intervals();
    let workload = SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(intervals),
        seed,
    );
    let attacker = Attacker::new(ramp_attack(config));
    MixedTrace::new(
        vec![Box::new(workload), Box::new(attacker)],
        config.timing.max_activations_per_interval(),
    )
}

/// The SPEC-like benign mix plus an arbitrary attack configuration,
/// bounded by the DDR4 per-interval activation budget.
pub fn mix_with(config: &RunConfig, attack: AttackConfig, seed: u64) -> MixedTrace {
    let workload = SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(config.intervals()),
        seed,
    );
    MixedTrace::new(
        vec![Box::new(workload), Box::new(Attacker::new(attack))],
        config.timing.max_activations_per_interval(),
    )
}

/// Builds a named attack configuration sized for `config`'s geometry:
/// `ramp` (the paper's 1→20 ramp), `flooding`, `double-sided`,
/// `decoy`, `shifted-ramp`, or `burst`.  Returns `None` for unknown
/// names; see [`named_attacks`] for the full list.
pub fn named_attack(config: &RunConfig, name: &str) -> Option<AttackConfig> {
    let intervals = config.intervals();
    let ipw = u64::from(config.geometry.intervals_per_window());
    // Aggressor block in the middle of the bank, like the paper's ramp.
    let base_row = config.geometry.rows_per_bank() / 2;
    let base = AttackConfig {
        kind: AttackKind::DoubleSided {
            victim: RowAddr(base_row + 1),
        },
        target_banks: vec![BankId(0)],
        acts_per_interval: 32,
        start_interval: 0,
        intervals,
        ramp_hold_intervals: 0,
    };
    let kind = match name {
        "ramp" => return Some(ramp_attack(config)),
        "flooding" => return Some(AttackConfig::flooding(RowAddr(base_row), intervals)),
        "double-sided" => AttackKind::DoubleSided {
            victim: RowAddr(base_row + 1),
        },
        "decoy" => AttackKind::DecoyAssisted {
            victim: RowAddr(base_row + 1),
            decoys: 4,
        },
        "shifted-ramp" => AttackKind::PhaseShifted {
            base_row: RowAddr(base_row),
            max_aggressors: 20,
            shift_intervals: ipw / 4,
        },
        "burst" => AttackKind::RefreshSyncBurst {
            base_row: RowAddr(base_row),
            pairs: 1,
            duty_intervals: ipw / 2,
            period_intervals: ipw,
            phase: ipw / 4,
        },
        _ => return None,
    };
    Some(AttackConfig { kind, ..base })
}

/// The attack names [`named_attack`] accepts.
pub fn named_attacks() -> &'static [&'static str] {
    &[
        "ramp",
        "flooding",
        "double-sided",
        "decoy",
        "shifted-ramp",
        "burst",
    ]
}

/// Benign traffic only (false-positive baselines).
pub fn workload_only(config: &RunConfig, seed: u64) -> SpecLikeWorkload {
    SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(config.intervals()),
        seed,
    )
}

/// The §IV flooding stress test: one row hammered at the full attacker
/// budget from the start of a window, with no benign noise (worst case
/// for the weight ramp).
pub fn flooding(config: &RunConfig, row: RowAddr) -> Attacker {
    flooding_with_phase(config, row, 0)
}

/// Flooding with a controlled attack phase: the flood starts `phase`
/// refresh intervals after the flooded row's refresh slot, i.e. the
/// time-varying weight is already ≈ `phase` when the hammering begins.
/// `phase = 0` is the worst case (weights start at zero); the paper's
/// flooding numbers correspond to an unspecified mid-window phase.
pub fn flooding_with_phase(config: &RunConfig, row: RowAddr, phase: u64) -> Attacker {
    let mut attack = AttackConfig::flooding(row, config.intervals());
    attack.acts_per_interval = config.timing.max_activations_per_interval();
    attack.start_interval = phase;
    Attacker::new(attack)
}

/// A double-sided attack around `victim` mixed with benign traffic.
pub fn double_sided_mix(config: &RunConfig, victim: RowAddr, seed: u64) -> MixedTrace {
    let intervals = config.intervals();
    let workload = SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(intervals),
        seed,
    );
    let attacker = Attacker::new(AttackConfig {
        kind: AttackKind::DoubleSided { victim },
        target_banks: vec![dram_sim::BankId(0)],
        acts_per_interval: 137,
        start_interval: 0,
        intervals,
        ramp_hold_intervals: 0,
    });
    MixedTrace::new(
        vec![Box::new(workload), Box::new(attacker)],
        config.timing.max_activations_per_interval(),
    )
}

/// An adaptive anti-locality attack (queue flushing): the attacker
/// alternates aggressor activations with a stream of junk rows chosen to
/// evict the victims from recency-based structures (MRLoc's queue,
/// ProHit's cold table).
#[derive(Debug)]
pub struct QueueFlushAttack {
    aggressor: RowAddr,
    junk_rows: u32,
    acts_per_interval: u32,
    intervals: u64,
    produced: u64,
    cursor: u32,
}

impl QueueFlushAttack {
    /// Creates the attack: one aggressor interleaved with `junk_rows`
    /// distinct filler rows per aggressor activation.
    pub fn new(config: &RunConfig, aggressor: RowAddr, junk_rows: u32) -> Self {
        QueueFlushAttack {
            aggressor,
            junk_rows,
            acts_per_interval: config.timing.max_activations_per_interval(),
            intervals: config.intervals(),
            produced: 0,
            cursor: 0,
        }
    }
}

impl TraceSource for QueueFlushAttack {
    fn next_interval(&mut self, out: &mut Vec<mem_trace::TraceEvent>) -> bool {
        if self.produced >= self.intervals {
            return false;
        }
        let mut emitted = 0;
        while emitted < self.acts_per_interval {
            out.push(mem_trace::TraceEvent::attack(
                dram_sim::BankId(0),
                self.aggressor,
            ));
            emitted += 1;
            for _ in 0..self.junk_rows {
                if emitted >= self.acts_per_interval {
                    break;
                }
                // Junk rows far from the aggressor, cycling.
                let junk = RowAddr(50_000 + (self.cursor % 8000));
                self.cursor = self.cursor.wrapping_add(7);
                out.push(mem_trace::TraceEvent::attack(dram_sim::BankId(0), junk));
                emitted += 1;
            }
        }
        self.produced += 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.intervals)
    }
}

impl TraceSplit for QueueFlushAttack {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        if bank == BankId(0) {
            // Deterministic, bank-0-only: the shard is a fresh instance.
            Box::new(QueueFlushAttack {
                aggressor: self.aggressor,
                junk_rows: self.junk_rows,
                acts_per_interval: self.acts_per_interval,
                intervals: self.intervals,
                produced: 0,
                cursor: 0,
            })
        } else {
            Box::new(IdleTrace::new(self.intervals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use mem_trace::TraceStats;

    #[test]
    fn paper_mix_matches_calibration_targets() {
        let mut scale = ExperimentScale::quick();
        scale.windows = 4;
        let config = RunConfig::paper(&scale);
        let stats = TraceStats::collect(paper_mix(&config, 1));
        // Mean per bank-interval: benign 28 + attacker budget, capped.
        let mean = stats.mean_per_bank_interval();
        assert!(mean > 35.0 && mean <= 165.0, "mean {mean}");
        // The DDR4 bound holds.
        assert!(stats.max_per_bank_interval <= 165);
        // Attacker share is substantial but not dominant-free.
        let share = stats.aggressor_share();
        assert!(share > 0.3 && share < 0.95, "share {share}");
    }

    #[test]
    fn flooding_saturates_the_bank() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let stats = TraceStats::collect(flooding(&config, RowAddr(100)));
        assert_eq!(stats.max_per_bank_interval, 165);
        assert!((stats.aggressor_share() - 1.0).abs() < 1e-12);
        assert_eq!(stats.distinct_rows(), 1);
    }

    #[test]
    fn queue_flush_interleaves_junk() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let stats = TraceStats::collect(QueueFlushAttack::new(&config, RowAddr(100), 40));
        assert!(stats.distinct_rows() > 100);
        // The aggressor still gets ~1/41 of the budget.
        let aggressor_count = stats
            .row_counts
            .get(&(dram_sim::BankId(0), RowAddr(100)))
            .copied()
            .unwrap_or(0);
        let expected = stats.total_activations / 41;
        assert!(
            aggressor_count as f64 > expected as f64 * 0.8,
            "aggressor {aggressor_count} vs expected {expected}"
        );
    }

    #[test]
    fn named_attacks_all_build_and_mix() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        for name in named_attacks() {
            let attack = named_attack(&config, name)
                .unwrap_or_else(|| panic!("{name} should be a known attack"));
            let stats = TraceStats::collect(mix_with(&config, attack, 1));
            assert!(stats.aggressor_share() > 0.0, "{name} emitted no attack");
            assert!(stats.max_per_bank_interval <= 165, "{name} broke the cap");
        }
        assert!(named_attack(&config, "bogus").is_none());
    }

    #[test]
    fn double_sided_mix_contains_both_aggressors() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let stats = TraceStats::collect(double_sided_mix(&config, RowAddr(500), 2));
        assert!(stats
            .row_counts
            .contains_key(&(dram_sim::BankId(0), RowAddr(499))));
        assert!(stats
            .row_counts
            .contains_key(&(dram_sim::BankId(0), RowAddr(501))));
    }
}
