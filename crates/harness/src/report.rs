//! Machine-readable experiment exports (CSV) for plotting.
//!
//! Every regenerator prints a human-readable table; for gnuplot /
//! matplotlib consumers the `export` binary writes the same series as
//! CSV via these helpers.

use crate::experiments::fig4::Fig4Point;
use crate::experiments::flooding::FloodingResult;
use crate::experiments::latency::LatencyResult;
use crate::metrics::TimeSeries;
use std::io::{self, Write};

/// Writes Fig. 4 points as CSV (`technique,storage_bytes,overhead_mean,
/// overhead_std,fpr_mean,flips`).
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn fig4_csv<W: Write>(points: &[Fig4Point], mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "technique,storage_bytes,overhead_mean_pct,overhead_std_pct,fpr_mean_pct,flips"
    )?;
    for p in points {
        writeln!(
            writer,
            "{},{:.1},{:.6},{:.6},{:.6},{}",
            p.technique, p.storage_bytes, p.overhead.mean, p.overhead.std, p.fpr.mean, p.flips
        )?;
    }
    Ok(())
}

/// Writes flooding results as CSV.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn flooding_csv<W: Write>(results: &[FloodingResult], mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "technique,phase_intervals,first_trigger_mean,first_trigger_std,worst,paper,flips"
    )?;
    for r in results {
        writeln!(
            writer,
            "{},{},{:.0},{:.0},{},{},{}",
            r.technique,
            r.phase,
            r.first_trigger.mean,
            r.first_trigger.std,
            r.worst,
            r.paper.map_or_else(|| "-".into(), |p| p.to_string()),
            r.flips
        )?;
    }
    Ok(())
}

/// Writes latency results as CSV.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn latency_csv<W: Write>(results: &[LatencyResult], mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "technique,mean_latency_cycles,max_latency_cycles,slowdown_pct,mitigation_acts,stall_cycles"
    )?;
    for r in results {
        writeln!(
            writer,
            "{},{:.3},{},{:.4},{},{}",
            r.technique,
            r.mean_latency,
            r.max_latency,
            r.slowdown_percent,
            r.mitigation_activations,
            r.mitigation_stall_cycles
        )?;
    }
    Ok(())
}

/// Writes a [`TimeSeries`] (as recorded by
/// [`crate::TimeSeriesRecorder`]) as CSV, one sample point per row.
/// All counters are cumulative since the start of the run.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn timeseries_csv<W: Write>(series: &TimeSeries, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "interval,activations,mitigation_activations,triggers,false_positives,max_disturbance"
    )?;
    for p in &series.points {
        writeln!(
            writer,
            "{},{},{},{},{},{}",
            p.interval,
            p.activations,
            p.mitigation_activations,
            p.triggers,
            p.false_positives,
            p.max_disturbance
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    #[test]
    fn fig4_csv_is_parseable() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 1;
        let points = crate::experiments::fig4::run(&scale);
        let mut buffer = Vec::new();
        fig4_csv(&points, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10); // header + 9 techniques
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 6, "{line}");
        }
        assert!(text.contains("PARA"));
    }

    #[test]
    fn timeseries_csv_round_trips_points() {
        let mut series = TimeSeries::new(8);
        series.points.push(crate::metrics::TimePoint {
            interval: 7,
            activations: 100,
            mitigation_activations: 2,
            triggers: 3,
            false_positives: 1,
            max_disturbance: 42,
        });
        let mut buffer = Vec::new();
        timeseries_csv(&series, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("interval,"));
        assert!(text.contains("7,100,2,3,1,42"));
    }

    #[test]
    fn latency_csv_has_header_and_rows() {
        let rows = vec![crate::experiments::latency::LatencyResult {
            technique: "X".into(),
            mean_latency: 54.2,
            max_latency: 99,
            slowdown_percent: 0.1,
            mitigation_activations: 3,
            mitigation_stall_cycles: 1,
        }];
        let mut buffer = Vec::new();
        latency_csv(&rows, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("technique,"));
        assert!(text.contains("54.200"));
    }
}
