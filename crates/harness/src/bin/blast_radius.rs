//! Blast-radius extension study: second-order disturbance coupling vs
//! ±1-only mitigations, and the ±2-widened `act_n` fix.
//!
//! Usage: `blast_radius [quick|paper|full]` (default: paper).

use rh_harness::experiments::blast_radius;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    println!("Blast-radius study — distance-2 coupling under worst-phase flooding");
    println!("(`+d2` = act_n widened to ±2 via the WideNeighborhood adapter)");
    println!();
    print!("{}", blast_radius::render(&blast_radius::run(&scale)));
}
