//! Regenerates Table I — simulated system specifications.
//!
//! Usage: `table1_system [quick|paper|full]` (default: full, since
//! Table I is pure configuration).

use rh_harness::experiments::table1;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::full);
    println!("Table I — simulated system specifications");
    println!();
    print!("{}", table1::render(&scale));
}
