//! Fixed aggressor-count sweep — the 1→20 ramp decomposed into phases.
//!
//! Usage: `aggressor_sweep [quick|paper|full]` (default: paper).

use rh_harness::experiments::aggressor_sweep;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    println!("Aggressor-count sweep — fixed k aggressors per bank, mixed workload");
    println!();
    print!("{}", aggressor_sweep::render(&aggressor_sweep::run(&scale)));
}
