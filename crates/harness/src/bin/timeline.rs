//! Dumps the per-interval trajectory of one technique/workload run:
//! cumulative activations, triggers, false positives and max
//! disturbance sampled on a stride grid, written as JSON + CSV to
//! `results/`.
//!
//! Usage: `timeline [quick|paper|full] [technique] [stride] [output-dir]
//! [--attack <name>] [--backend <tier>]` (defaults: paper, LoLiPRoMi,
//! 64, `./results`, the paper's ramping attack, and the exact backend).
//! `--attack` selects any attack pattern from the scenario catalog
//! (`ramp`, `flooding`, `double-sided`, `decoy`, `shifted-ramp`,
//! `burst`), mixed with the benign workload.  `--backend` selects the
//! disturbance fidelity tier (`exact`, `fast` or `cycle`); the cycle
//! tier also reports command-timing metrics.
//!
//! The JSON is read back and compared against the in-memory metrics
//! before the process exits; a round-trip mismatch is a hard failure
//! (CI runs this at quick scale).

use rh_harness::{
    report, scenario, BackendSpec, ExperimentScale, RunConfig, RunMetrics, Runner,
    TimeSeriesRecorder,
};
use rh_hwmodel::Technique;
use std::fs::File;
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_technique(name: &str) -> Option<Technique> {
    let mut all = Technique::TABLE3.to_vec();
    all.push(Technique::Cat);
    all.into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Vec::new();
    let mut attack_name: Option<String> = None;
    let mut backend = BackendSpec::Exact;
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--backend" {
            match iter.next().map(|v| v.parse()) {
                Some(Ok(b)) => backend = b,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--backend needs a tier: exact, fast or cycle");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(tier) = arg.strip_prefix("--backend=") {
            match tier.parse() {
                Ok(b) => backend = b,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--attack" {
            match iter.next() {
                Some(name) => attack_name = Some(name),
                None => {
                    eprintln!(
                        "--attack needs a name: {}",
                        scenario::named_attacks().join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(name) = arg.strip_prefix("--attack=") {
            attack_name = Some(name.to_string());
        } else {
            args.push(arg);
        }
    }
    let scale = args
        .first()
        .and_then(|s| ExperimentScale::from_name(s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let technique = match args.get(1) {
        Some(name) => match parse_technique(name) {
            Some(t) => t,
            None => {
                let known: Vec<&str> = Technique::TABLE3.iter().map(|t| t.name()).collect();
                eprintln!("unknown technique {name:?}; known: {}", known.join(", "));
                return ExitCode::FAILURE;
            }
        },
        None => Technique::LoLiPromi,
    };
    let stride: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let dir = PathBuf::from(args.get(3).cloned().unwrap_or_else(|| "results".into()));

    let config = RunConfig::paper(&scale);
    let trace = match &attack_name {
        None => scenario::paper_mix(&config, 1),
        Some(name) => match scenario::named_attack(&config, name) {
            Some(attack) => scenario::mix_with(&config, attack, 1),
            None => {
                eprintln!(
                    "unknown attack {name:?}; known: {}",
                    scenario::named_attacks().join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let metrics = Runner::new(config)
        .technique(technique)
        .seed(1)
        .backend(backend)
        .observer(TimeSeriesRecorder::new(stride))
        .run(trace);

    let series = metrics
        .timeseries
        .as_ref()
        .expect("TimeSeriesRecorder was attached");
    println!(
        "{}: {} intervals, {} activations, {} triggers ({} FP), {} sample points @ stride {stride}",
        metrics.technique,
        metrics.intervals,
        metrics.workload_activations,
        metrics.trigger_events,
        metrics.false_positive_events,
        series.points.len(),
    );
    if let Some(cycle) = &metrics.cycle {
        println!(
            "cycle model: {} mitigation cycles ({:.2}% bandwidth overhead), \
             row-buffer hit rate {:.1}%",
            cycle.mitigation_cycles,
            cycle.bandwidth_overhead_percent(),
            100.0 * cycle.row_buffer_hit_rate(),
        );
    }

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut slug = metrics.technique.to_lowercase().replace('/', "-");
    if let Some(name) = &attack_name {
        slug = format!("{slug}_{name}");
    }
    let json_path = dir.join(format!("timeline_{slug}.json"));
    let csv_path = dir.join(format!("timeline_{slug}.csv"));
    let json = match serde_json::to_string(&metrics) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("cannot serialize metrics: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    let csv = File::create(&csv_path).and_then(|f| report::timeseries_csv(series, f));
    if let Err(e) = csv {
        eprintln!("cannot write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }

    // Self-check: the emitted JSON must round-trip to the exact metrics.
    let read_back = match std::fs::read_to_string(&json_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot re-read {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
    };
    match serde_json::from_str::<RunMetrics>(&read_back) {
        Ok(decoded) if decoded == metrics => {
            println!(
                "wrote {} and {} (JSON round-trip OK)",
                json_path.display(),
                csv_path.display()
            );
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("JSON round-trip mismatch: decoded metrics differ from the run");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("JSON round-trip failed to parse: {e}");
            ExitCode::FAILURE
        }
    }
}
