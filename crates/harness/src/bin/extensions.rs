//! Extension techniques (CAT, Graphene) on the Fig. 4 plane, plus the
//! access-level cache-filtered workload cross-validation.
//!
//! Usage: `extensions [quick|paper|full]` (default: paper).

use rh_harness::experiments::extensions;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let points = extensions::extension_points(&scale);
    let validation = extensions::cache_validation(&scale);
    print!("{}", extensions::render(&points, &validation));
}
