//! `rh` — the unified experiment runner.
//!
//! ```text
//! rh <experiment> [quick|paper|full]
//! rh all [quick|paper|full]
//! rh list
//! ```
//!
//! Each experiment is also available as a standalone binary (see
//! `cargo run --release --bin <name>`); this multiplexer exists so a
//! full regeneration is one command: `rh all paper`.

use rh_harness::experiments::{
    ablation, aggressor_sweep, blast_radius, extensions, fig4, flooding, latency, refresh_policies,
    reliability, table1, table2, table3, vulnerability, weak_dram,
};
use rh_harness::ExperimentScale;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Table I — simulated system specification"),
    ("table2", "Table II — FSM clock cycles (exact)"),
    ("fig4", "Fig. 4 — table size vs activation overhead"),
    ("table3", "Table III — LUTs, vulnerability, overhead, FPR"),
    (
        "reliability",
        "§IV — no attack succeeds under any technique",
    ),
    ("refresh-policies", "§IV — four refresh-order policies"),
    ("flooding", "§IV — flooding first-trigger points"),
    ("vulnerability", "Table III 'Vulnerable' column evidence"),
    ("ablation", "design-choice sweeps"),
    ("weak-dram", "extension: weak-DRAM threshold sweep"),
    ("blast-radius", "extension: distance-2 coupling"),
    (
        "latency",
        "extension: demand latency through the controller",
    ),
    ("aggressor-sweep", "extension: fixed aggressor counts"),
    (
        "extensions",
        "extension: CAT/Graphene + cache-workload validation",
    ),
];

fn run_one(name: &str, scale: &ExperimentScale) -> bool {
    println!("==== {name} ====");
    match name {
        "table1" => print!("{}", table1::render(scale)),
        "table2" => print!("{}", table2::render(&table2::run())),
        "fig4" => {
            let points = fig4::run(scale);
            print!("{}", fig4::render(&points));
            for (desc, ok) in fig4::shape_checks(&points) {
                println!("[{}] {desc}", if ok { "ok" } else { "MISS" });
            }
        }
        "table3" => print!("{}", table3::render(&table3::run(scale))),
        "reliability" => print!("{}", reliability::render(&reliability::run(scale))),
        "refresh-policies" => {
            print!(
                "{}",
                refresh_policies::render(&refresh_policies::run(scale))
            )
        }
        "flooding" => print!("{}", flooding::render(&flooding::run(scale))),
        "vulnerability" => print!("{}", vulnerability::render(&vulnerability::run(scale))),
        "ablation" => {
            let mut results = ablation::history_sweep(scale);
            results.extend(ablation::p_base_sweep(scale));
            results.extend(ablation::lock_threshold_sweep(scale));
            results.extend(ablation::counter_table_sweep(scale));
            results.extend(ablation::history_policy_sweep(scale));
            print!("{}", ablation::render(&results));
        }
        "weak-dram" => {
            print!("{}", weak_dram::render(&weak_dram::run(scale)));
            println!();
            print!("{}", weak_dram::render_retune(&weak_dram::retune(scale)));
        }
        "blast-radius" => print!("{}", blast_radius::render(&blast_radius::run(scale))),
        "latency" => print!("{}", latency::render(&latency::run(scale))),
        "aggressor-sweep" => {
            print!("{}", aggressor_sweep::render(&aggressor_sweep::run(scale)))
        }
        "extensions" => {
            let points = extensions::extension_points(scale);
            let validation = extensions::cache_validation(scale);
            print!("{}", extensions::render(&points, &validation));
        }
        _ => return false,
    }
    println!();
    true
}

fn main() {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "list".into());
    let scale = args
        .next()
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);

    match command.as_str() {
        "list" | "--help" | "-h" => {
            println!("usage: rh <experiment|all|list> [quick|paper|full]\n");
            for (name, description) in EXPERIMENTS {
                println!("  {name:16} {description}");
            }
        }
        "all" => {
            for (name, _) in EXPERIMENTS {
                assert!(run_one(name, &scale), "unknown experiment {name}");
            }
        }
        name => {
            if !run_one(name, &scale) {
                eprintln!("unknown experiment `{name}`; try `rh list`");
                std::process::exit(2);
            }
        }
    }
}
