//! Prints the calibration statistics of the synthetic evaluation trace
//! against the paper's reported trace characteristics (Table I and the
//! CaPRoMi sizing argument).
//!
//! Usage: `trace_stats [quick|paper|full]` (default: paper).

use mem_trace::TraceStats;
use rh_harness::{scenario, ExperimentScale, RunConfig, TextTable};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let config = RunConfig::paper(&scale);
    let stats = TraceStats::collect(scenario::paper_mix(&config, 1));

    let mut table = TextTable::new(vec!["statistic", "measured", "paper target"]);
    table.row(vec![
        "total activations".into(),
        format!("{:.1} M", stats.total_activations as f64 / 1e6),
        "175 M at full scale".into(),
    ]);
    table.row(vec![
        "refresh intervals".into(),
        stats.intervals.to_string(),
        "1.56 M at full scale".into(),
    ]);
    table.row(vec![
        "mean acts / bank-interval".into(),
        format!("{:.1}", stats.mean_per_bank_interval()),
        "≈ 40 (incl. aggressors)".into(),
    ]);
    table.row(vec![
        "max acts / bank-interval".into(),
        stats.max_per_bank_interval.to_string(),
        "≤ 165 (DDR4 bound)".into(),
    ]);
    table.row(vec![
        "aggressor share".into(),
        format!("{:.1} %", 100.0 * stats.aggressor_share()),
        "-".into(),
    ]);
    table.row(vec![
        "top-32 row coverage".into(),
        format!("{:.1} %", 100.0 * stats.top_k_coverage(32)),
        "high (history-table sizing)".into(),
    ]);
    println!("Synthetic trace calibration");
    println!();
    print!("{}", table.render());
}
