//! Regenerates Fig. 4 — table size per bank vs. activation overhead for
//! all nine techniques on the mixed workload.
//!
//! Usage: `fig4_tradeoff [quick|paper|full]` (default: paper — 16
//! refresh windows, 4 banks, 5 seeds).

use rh_harness::experiments::fig4;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    eprintln!(
        "running fig4 at {} windows × {} banks × {} seeds…",
        scale.windows, scale.banks, scale.seeds
    );
    let points = fig4::run(&scale);
    println!("Fig. 4 — table size vs. activation overhead (log-log in the paper)");
    println!();
    print!("{}", fig4::render(&points));
    println!();
    println!("shape checks:");
    for (desc, ok) in fig4::shape_checks(&points) {
        println!("  [{}] {desc}", if ok { "ok" } else { "MISS" });
    }
}
