//! §IV flooding check — first extra activation under a full-rate flood
//! of one row, for the four TiVaPRoMi variants (PARA as reference).
//!
//! Usage: `flooding [quick|paper|full]` (default: paper).

use rh_harness::experiments::flooding;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let results = flooding::run(&scale);
    println!("Flooding attack — worst-phase flood (attack starts right after the");
    println!("flooded row's refresh, where time-varying weights are smallest)");
    println!();
    print!("{}", flooding::render(&results));
}
