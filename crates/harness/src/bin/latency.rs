//! Demand-latency impact study: mitigation traffic through the
//! cycle-level memory controller.
//!
//! Usage: `latency [quick|paper|full]` (default: paper).

use rh_harness::experiments::latency;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    println!("Demand latency — mixed trace through the cycle-level controller");
    println!("(background priority unless marked @urgent)");
    println!();
    print!("{}", latency::render(&latency::run(&scale)));
}
