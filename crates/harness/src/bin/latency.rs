//! Demand-latency impact study: mitigation traffic through the
//! cycle-level memory controller, plus per-shard engine throughput
//! ([`PerfCounters`]) for the same scale.
//!
//! Usage: `latency [quick|paper|full]` (default: paper).

use rh_harness::experiments::latency;
use rh_harness::{ExperimentScale, PerfCounters, RunConfig, Runner};
use rh_hwmodel::Technique;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    println!("Demand latency — mixed trace through the cycle-level controller");
    println!("(background priority unless marked @urgent)");
    println!();
    print!("{}", latency::render(&latency::run(&scale)));

    // Engine-side throughput: the same mixed workload through the run
    // engine with per-shard perf counters attached.
    let config = RunConfig::paper(&scale);
    let perf = PerfCounters::default();
    let trace = rh_harness::scenario::paper_mix(&config, 1);
    Runner::new(config)
        .technique(Technique::LoLiPromi)
        .seed(1)
        .observer(perf.clone())
        .run(trace);
    println!();
    println!("Engine shard throughput (LoLiPRoMi, mixed trace)");
    print!("{}", perf.render());
}
