//! §IV reliability check — the ramping multi-aggressor attack flips
//! bits unprotected and is stopped by all nine techniques.
//!
//! Usage: `reliability [quick|paper|full]` (default: paper).

use rh_harness::experiments::reliability;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let results = reliability::run(&scale);
    println!("Reliability — 1→20 aggressors per bank, mixed workload");
    println!();
    print!("{}", reliability::render(&results));
}
