//! Exports the main experiment series as CSV files for plotting
//! (Fig. 4 scatter, flooding points, latency table).
//!
//! Usage: `export [quick|paper|full] [output-dir]` (defaults: paper,
//! `./results`).

use rh_harness::experiments::{fig4, flooding, latency};
use rh_harness::{report, ExperimentScale};
use std::fs::File;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let dir = PathBuf::from(std::env::args().nth(2).unwrap_or_else(|| "results".into()));
    std::fs::create_dir_all(&dir)?;

    eprintln!("running fig4…");
    let points = fig4::run(&scale);
    report::fig4_csv(&points, File::create(dir.join("fig4.csv"))?)?;
    std::fs::write(dir.join("fig4.svg"), rh_harness::plot::fig4_svg(&points))?;
    eprintln!("running flooding…");
    report::flooding_csv(
        &flooding::run(&scale),
        File::create(dir.join("flooding.csv"))?,
    )?;
    eprintln!("running latency…");
    report::latency_csv(
        &latency::run(&scale),
        File::create(dir.join("latency.csv"))?,
    )?;
    eprintln!(
        "wrote fig4.csv, flooding.csv, latency.csv to {}",
        dir.display()
    );
    Ok(())
}
