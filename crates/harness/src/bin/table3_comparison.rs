//! Regenerates Table III — LUTs (DDR4/DDR3), vulnerability, activation
//! overhead μ ± σ, and false-positive rate, next to the paper's values.
//!
//! Usage: `table3_comparison [quick|paper|full]` (default: paper).

use rh_harness::experiments::table3;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    eprintln!(
        "running table3 at {} windows × {} banks × {} seeds…",
        scale.windows, scale.banks, scale.seeds
    );
    let results = table3::run(&scale);
    println!("Table III — comparison with state-of-the-art RH mitigation solutions");
    println!();
    print!("{}", table3::render(&results));
}
