//! Ablation sweeps of the design choices: history-table size, `P_base`
//! exponent, CaPRoMi lock threshold and counter-table size.
//!
//! Usage: `ablation [quick|paper|full]` (default: paper).

use rh_harness::experiments::ablation;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let mut results = ablation::history_sweep(&scale);
    results.extend(ablation::p_base_sweep(&scale));
    results.extend(ablation::lock_threshold_sweep(&scale));
    results.extend(ablation::counter_table_sweep(&scale));
    results.extend(ablation::history_policy_sweep(&scale));
    println!("Ablations — design-choice sweeps (paper values: history 32,");
    println!("P_base 2^-23, counter table 64)");
    println!();
    print!("{}", ablation::render(&results));
}
