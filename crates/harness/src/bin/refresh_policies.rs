//! §IV refresh-policy robustness — the four refresh orders against the
//! four TiVaPRoMi variants.
//!
//! Usage: `refresh_policies [quick|paper|full]` (default: paper).

use rh_harness::experiments::refresh_policies;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    let results = refresh_policies::run(&scale);
    println!("Refresh-policy robustness — TiVaPRoMi variants × 4 policies");
    println!();
    print!("{}", refresh_policies::render(&results));
    println!();
    println!("max overhead deviation vs. sequential baseline:");
    for (t, dev) in refresh_policies::policy_spread(&results) {
        println!("  {t}: {:.1}%", dev * 100.0);
    }
}
