//! Weak-DRAM extension study: the flip-threshold sweep and the `P_base`
//! re-tuning sweep for next-generation DRAM.
//!
//! Usage: `weak_dram [quick|paper|full]` (default: paper).

use rh_harness::experiments::weak_dram;
use rh_harness::ExperimentScale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| ExperimentScale::from_name(&s))
        .unwrap_or_else(ExperimentScale::paper_shape);
    println!("Weak-DRAM study — paper-tuned mitigations on weaker devices");
    println!("(worst-phase flooding)");
    println!();
    print!("{}", weak_dram::render(&weak_dram::run(&scale)));
    println!();
    println!("LoPRoMi P_base re-tuning for 16 K DRAM:");
    println!();
    print!("{}", weak_dram::render_retune(&weak_dram::retune(&scale)));
}
