//! Regenerates Table II — FSM clock cycles per observed `act`/`ref`.

use rh_harness::experiments::table2;

fn main() {
    let results = table2::run();
    println!("Table II — clock cycles per FSM loop (DDR4, 1.2 GHz)");
    println!();
    print!("{}", table2::render(&results));
    println!();
    let exact = results
        .iter()
        .all(|r| r.act == r.paper_act && r.refresh == r.paper_refresh);
    println!(
        "paper agreement: {}",
        if exact { "exact" } else { "deviations present" }
    );
}
