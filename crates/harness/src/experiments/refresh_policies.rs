//! §IV refresh-policy robustness — TiVaPRoMi's weight assumes interval
//! `i` refreshes rows `i·RowsPI …`; the paper checks four policies:
//! (i) refreshing neighbors, (ii) neighbors with few replacements,
//! (iii) fully random, (iv) counter + mask — and observes "no
//! significant change in the performance of TiVaPRoMi".

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::MeanStd;
use crate::runner::Runner;
use crate::table::TextTable;
use crate::{parallel, scenario};
use dram_sim::{RefreshOrder, RowAddr};
use rh_hwmodel::Technique;

/// The four evaluated policies, in paper order.
pub fn policies() -> Vec<RefreshOrder> {
    vec![
        RefreshOrder::SequentialNeighbors,
        RefreshOrder::SequentialWithReplacements {
            replacements: vec![
                (RowAddr(1_000), RowAddr(60_000)),
                (RowAddr(12_345), RowAddr(61_111)),
                (RowAddr(33_333), RowAddr(62_222)),
                (RowAddr(40_404), RowAddr(63_333)),
            ],
        },
        RefreshOrder::FullyRandom { seed: 0xBEEF },
        RefreshOrder::CounterMask { mask: 0x155 },
    ]
}

/// Result for one (variant, policy) cell.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    /// TiVaPRoMi variant.
    pub technique: Technique,
    /// Policy description.
    pub policy: String,
    /// Overhead % across seeds.
    ///
    /// Note: TiVaPRoMi's weights are computed from the *assumed*
    /// `f_r = r / RowsPI` mapping regardless of the true refresh order,
    /// so on identical traces the overhead is identical across policies
    /// by construction.  The non-trivial result is the margin/flip
    /// columns: protection holds even when the true refresh order
    /// diverges from the assumption.
    pub overhead: MeanStd,
    /// Worst attack margin across seeds.
    pub margin: f64,
    /// Bit flips across seeds (must be 0).
    pub flips: usize,
}

/// Runs the four TiVaPRoMi variants under each policy.
pub fn run(scale: &ExperimentScale) -> Vec<PolicyResult> {
    let base = RunConfig::paper(scale);
    let mut jobs = Vec::new();
    for &t in &Technique::TIVAPROMI {
        for policy in policies() {
            for seed in 0..scale.seeds {
                jobs.push((t, policy.clone(), u64::from(seed) + 1));
            }
        }
    }
    let runs = parallel::map(jobs, |(t, policy, seed)| {
        let config = base.clone().with_refresh_order(policy.clone());
        let trace = scenario::paper_mix(&config, seed);
        let metrics = Runner::new(config).technique(t).seed(seed).run(trace);
        (t, policy.to_string(), metrics)
    });

    let mut results = Vec::new();
    for &t in &Technique::TIVAPROMI {
        for policy in policies() {
            let name = policy.to_string();
            let cell: Vec<_> = runs
                .iter()
                .filter(|(rt, rp, _)| *rt == t && *rp == name)
                .collect();
            let overheads: Vec<f64> = cell.iter().map(|(_, _, m)| m.overhead_percent()).collect();
            results.push(PolicyResult {
                technique: t,
                policy: name,
                overhead: MeanStd::of(&overheads),
                margin: cell
                    .iter()
                    .map(|(_, _, m)| m.attack_margin())
                    .fold(0.0, f64::max),
                flips: cell.iter().map(|(_, _, m)| m.flips).sum(),
            });
        }
    }
    results
}

/// Checks the paper's claim: per variant, the overhead spread across
/// policies is small (within `tolerance` relative to the sequential
/// baseline).  Returns `(variant, max relative deviation)` pairs.
pub fn policy_spread(results: &[PolicyResult]) -> Vec<(Technique, f64)> {
    Technique::TIVAPROMI
        .iter()
        .map(|&t| {
            let cells: Vec<&PolicyResult> = results.iter().filter(|r| r.technique == t).collect();
            let baseline = cells
                .iter()
                .find(|r| r.policy.contains("sequential neighbors"))
                .map_or(0.0, |r| r.overhead.mean)
                .max(1e-12);
            let max_dev = cells
                .iter()
                .map(|r| (r.overhead.mean - baseline).abs() / baseline)
                .fold(0.0, f64::max);
            (t, max_dev)
        })
        .collect()
}

/// Renders the policy grid.
pub fn render(results: &[PolicyResult]) -> String {
    let mut table = TextTable::new(vec![
        "variant",
        "refresh policy",
        "overhead [%]",
        "worst margin",
        "flips",
    ]);
    for r in results {
        table.row(vec![
            r.technique.to_string(),
            r.policy.clone(),
            format!("{:.4} ± {:.4}", r.overhead.mean, r.overhead.std),
            format!("{:.0}%", 100.0 * r.margin),
            r.flips.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_remain_reliable() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 1;
        let results = run(&scale);
        assert_eq!(results.len(), 16); // 4 variants × 4 policies
        for r in &results {
            assert_eq!(r.flips, 0, "{} under {}", r.technique, r.policy);
        }
        assert!(render(&results).contains("counter + mask"));
    }
}
