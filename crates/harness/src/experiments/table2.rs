//! Table II — FSM clock cycles per observed `act` and `ref` command.

use crate::table::TextTable;
use dram_sim::DramTiming;
use rh_hwmodel::{fsm_cycles, reference, HwParams, Technique};

/// One regenerated column of Table II, with the paper's value alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Result {
    /// Technique.
    pub technique: Technique,
    /// Modelled cycles after `act`.
    pub act: u32,
    /// Modelled cycles after `ref`.
    pub refresh: u32,
    /// Paper's cycles after `act`.
    pub paper_act: u32,
    /// Paper's cycles after `ref`.
    pub paper_refresh: u32,
}

/// Regenerates Table II from the FSM model.
pub fn run() -> Vec<Table2Result> {
    let params = HwParams::paper();
    reference::TABLE2
        .iter()
        .map(|col| {
            let c = fsm_cycles(col.technique, &params);
            Table2Result {
                technique: col.technique,
                act: c.act,
                refresh: c.refresh,
                paper_act: col.act,
                paper_refresh: col.refresh,
            }
        })
        .collect()
}

/// Renders the regenerated table with budgets.
pub fn render(results: &[Table2Result]) -> String {
    let budget = DramTiming::ddr4().cycle_budget();
    let mut table = TextTable::new(vec![
        "command",
        "budget",
        "CaPRoMi",
        "LoLiPRoMi",
        "LoPRoMi",
        "LiPRoMi",
    ]);
    let find = |t: Technique| results.iter().find(|r| r.technique == t).expect("present");
    let act_row: Vec<String> = vec![
        "act".into(),
        budget.act_cycles.to_string(),
        find(Technique::CaPromi).act.to_string(),
        find(Technique::LoLiPromi).act.to_string(),
        find(Technique::LoPromi).act.to_string(),
        find(Technique::LiPromi).act.to_string(),
    ];
    let ref_row: Vec<String> = vec![
        "ref".into(),
        budget.ref_cycles.to_string(),
        find(Technique::CaPromi).refresh.to_string(),
        find(Technique::LoLiPromi).refresh.to_string(),
        find(Technique::LoPromi).refresh.to_string(),
        find(Technique::LiPromi).refresh.to_string(),
    ];
    table.row(act_row);
    table.row(ref_row);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_paper_exactly() {
        for r in run() {
            assert_eq!(r.act, r.paper_act, "{}", r.technique);
            assert_eq!(r.refresh, r.paper_refresh, "{}", r.technique);
        }
    }

    #[test]
    fn render_contains_budgets_and_values() {
        let s = render(&run());
        assert!(s.contains("54"));
        assert!(s.contains("420"));
        assert!(s.contains("258"));
    }
}
