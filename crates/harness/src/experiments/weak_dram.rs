//! Weak-DRAM extension study (beyond the paper's evaluation).
//!
//! The paper evaluates at the classic 139 K flip threshold.  Newer and
//! denser DRAM flips at far fewer activations — the trend that motivated
//! ProHit's aggressive design.  This experiment keeps every mitigation
//! at its *paper* configuration and weakens the DRAM underneath,
//! exposing each design's safety slack:
//!
//! * Tabled counters trigger at fixed absolute counts (`th_RH/4`), so
//!   they fail once the real threshold drops below their trigger point.
//! * PARA's static probability keeps its *expected* per-victim refresh
//!   gap at ~2 K activations, so it degrades gracefully — but the
//!   geometric tail of that gap does produce rare flips once the
//!   threshold falls to 16 K under sustained max-rate flooding.
//! * TiVaPRoMi's time-varying probability deliberately tolerates tens of
//!   thousands of activations early in the window — weak DRAM breaks
//!   that assumption unless `P_base` is re-scaled, which the second
//!   sweep demonstrates.

use crate::config::{ExperimentScale, RunConfig};
use crate::runner::Runner;
use crate::table::TextTable;
use crate::{parallel, scenario};
use dram_sim::{RowAddr, WeakCellSpec};
use rh_hwmodel::Technique;
use tivapromi::{TivaConfig, TivaVariant};

/// The flip thresholds swept: the paper's 139 K down to a
/// next-generation 16 K.
pub const THRESHOLDS: [u32; 4] = [139_000, 69_500, 32_768, 16_384];

/// Outcome of one (technique, threshold) cell under worst-phase
/// flooding.
#[derive(Debug, Clone)]
pub struct WeakDramResult {
    /// Technique (paper configuration).
    pub technique: Technique,
    /// DRAM flip threshold in effect.
    pub threshold: u32,
    /// Bit flips across seeds.
    pub flips: usize,
    /// Worst margin (max disturbance / threshold).
    pub margin: f64,
}

/// Runs the threshold sweep for all nine techniques under worst-phase
/// flooding.
pub fn run(scale: &ExperimentScale) -> Vec<WeakDramResult> {
    let base = {
        let mut c = RunConfig::paper(scale);
        c.windows = c.windows.min(2);
        c
    };
    let jobs: Vec<(Technique, u32, u64)> = Technique::TABLE3
        .iter()
        .flat_map(|&t| {
            THRESHOLDS
                .iter()
                .flat_map(move |&th| (1..=u64::from(scale.seeds.max(2))).map(move |s| (t, th, s)))
        })
        .collect();
    let runs = parallel::map(jobs, |(t, threshold, seed)| {
        let mut config = base.clone();
        // Weaken the DRAM through the per-row weak-cell model: a flat
        // map at `threshold` is bit-identical to the classic uniform
        // threshold (pinned by `flat_map_reproduces_uniform_threshold`),
        // and keeps this sweep on the same code path as the
        // heterogeneous sampled maps used by the exploit subsystem.
        config.flip_threshold = threshold;
        config.weak_cells = WeakCellSpec::Flat { threshold };
        let trace = scenario::flooding(&config, RowAddr(1));
        let metrics = Runner::new(config.clone())
            .technique(t)
            .seed(seed)
            .run(trace);
        (t, threshold, metrics)
    });

    Technique::TABLE3
        .iter()
        .flat_map(|&t| THRESHOLDS.iter().map(move |&th| (t, th)))
        .map(|(t, th)| {
            let cell: Vec<_> = runs
                .iter()
                .filter(|(rt, rth, _)| *rt == t && *rth == th)
                .collect();
            WeakDramResult {
                technique: t,
                threshold: th,
                flips: cell.iter().map(|(_, _, m)| m.flips).sum(),
                margin: cell
                    .iter()
                    .map(|(_, _, m)| m.attack_margin())
                    .fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Outcome of the `P_base` re-tuning sweep for LoPRoMi at the weakest
/// threshold.
#[derive(Debug, Clone)]
pub struct RetuneResult {
    /// `P_base` exponent (23 = paper).
    pub exponent: u32,
    /// Bit flips across seeds.
    pub flips: usize,
    /// Worst margin.
    pub margin: f64,
    /// Activation overhead % on the mixed trace (the price of safety).
    pub overhead: f64,
}

/// Re-tunes LoPRoMi's `P_base` for 16 K DRAM: larger base probabilities
/// restore protection at a measured overhead cost.
pub fn retune(scale: &ExperimentScale) -> Vec<RetuneResult> {
    let base = {
        let mut c = RunConfig::paper(scale);
        c.windows = c.windows.min(2);
        c.flip_threshold = 16_384;
        c.weak_cells = WeakCellSpec::Flat { threshold: 16_384 };
        c
    };
    let jobs: Vec<(u32, u64)> = [23u32, 21, 19, 17]
        .iter()
        .flat_map(|&e| (1..=u64::from(scale.seeds.max(2))).map(move |s| (e, s)))
        .collect();
    let runs = parallel::map(jobs, |(exponent, seed)| {
        let tiva = TivaConfig::paper(&base.geometry).with_p_base_exponent(exponent);
        let runner = Runner::new(base.clone())
            .technique((TivaVariant::LoPromi, tiva))
            .seed(seed);
        // Flooding for safety…
        let flood = runner.run(scenario::flooding(&base, RowAddr(1)));
        // …and the mixed trace for the overhead price.
        let mix = runner.run(scenario::paper_mix(&base, seed));
        (exponent, flood, mix)
    });

    [23u32, 21, 19, 17]
        .iter()
        .map(|&e| {
            let cell: Vec<_> = runs.iter().filter(|(re, _, _)| *re == e).collect();
            RetuneResult {
                exponent: e,
                flips: cell.iter().map(|(_, f, _)| f.flips).sum(),
                margin: cell
                    .iter()
                    .map(|(_, f, _)| f.attack_margin())
                    .fold(0.0, f64::max),
                overhead: cell
                    .iter()
                    .map(|(_, _, m)| m.overhead_percent())
                    .sum::<f64>()
                    / cell.len() as f64,
            }
        })
        .collect()
}

/// Renders the threshold sweep.
pub fn render(results: &[WeakDramResult]) -> String {
    let mut table = TextTable::new(vec!["technique", "threshold", "flips", "worst margin"]);
    for r in results {
        table.row(vec![
            r.technique.to_string(),
            r.threshold.to_string(),
            r.flips.to_string(),
            format!("{:.0}%", 100.0 * r.margin),
        ]);
    }
    table.render()
}

/// Renders the re-tuning sweep.
pub fn render_retune(results: &[RetuneResult]) -> String {
    let mut table = TextTable::new(vec![
        "P_base",
        "flips @16K",
        "worst margin",
        "mixed-trace overhead [%]",
    ]);
    for r in results {
        table.row(vec![
            format!("2^-{}", r.exponent),
            r.flips.to_string(),
            format!("{:.0}%", 100.0 * r.margin),
            format!("{:.4}", r.overhead),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The migration pin: a flat weak-cell map at `t` must reproduce
    /// the classic uniform `flip_threshold = t` run bit-for-bit, so
    /// this sweep's historical numbers survive the weak-map migration.
    #[test]
    fn flat_map_reproduces_uniform_threshold() {
        let scale = ExperimentScale::quick();
        let mut uniform = RunConfig::paper(&scale);
        uniform.flip_threshold = 16_384;
        let mut flat = uniform.clone();
        flat.weak_cells = WeakCellSpec::Flat { threshold: 16_384 };
        for technique in [Technique::Para, Technique::LiPromi] {
            let trace = scenario::flooding(&uniform, RowAddr(1));
            let classic = Runner::new(uniform.clone())
                .technique(technique)
                .seed(1)
                .run(trace);
            let trace = scenario::flooding(&flat, RowAddr(1));
            let mapped = Runner::new(flat.clone())
                .technique(technique)
                .seed(1)
                .run(trace);
            assert_eq!(classic, mapped, "{technique} diverged under a flat map");
        }
    }

    #[test]
    fn para_is_robust_and_paper_threshold_is_safe() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 2;
        let results = run(&scale);
        // At the paper threshold nobody flips.
        for r in results.iter().filter(|r| r.threshold == 139_000) {
            assert_eq!(r.flips, 0, "{} at 139K", r.technique);
        }
        // PARA's static probability still holds at 69.5 K (its expected
        // per-victim refresh gap is ~2 K activations)…
        let para_half = results
            .iter()
            .find(|r| r.technique == Technique::Para && r.threshold == 69_500)
            .unwrap();
        assert_eq!(para_half.flips, 0);
        // …while the deterministic counters hold everywhere above their
        // 34 750 trigger point.
        let twice_half = results
            .iter()
            .find(|r| r.technique == Technique::TwiCe && r.threshold == 69_500)
            .unwrap();
        assert_eq!(twice_half.flips, 0);
        // TiVaPRoMi's paper tuning is NOT safe at 16 K worst-phase
        // flooding — the finding the retune sweep addresses.
        let li_weak = results
            .iter()
            .find(|r| r.technique == Technique::LiPromi && r.threshold == 16_384)
            .unwrap();
        assert!(li_weak.flips > 0 || li_weak.margin > 0.9);
    }

    #[test]
    fn retuning_p_base_restores_protection() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 2;
        let results = retune(&scale);
        let paper = results.iter().find(|r| r.exponent == 23).unwrap();
        let tuned = results.iter().find(|r| r.exponent == 17).unwrap();
        assert!(
            paper.flips > 0 || paper.margin > 0.9,
            "paper tuning should strain"
        );
        assert_eq!(tuned.flips, 0, "2^-17 must protect 16 K DRAM");
        // Safety costs overhead.
        assert!(tuned.overhead > paper.overhead);
    }
}
