//! §IV flooding check — one row is hammered at the full bank budget;
//! the question is how many attacker activations pass before the first
//! mitigation-triggered extra activation lands.
//!
//! The paper reports LoPRoMi/LoLiPRoMi ≤ 10 K, CaPRoMi ≈ 15 K, LiPRoMi
//! ≈ 40 K — all below the 69 K safety bound (half the 139 K threshold,
//! for the double-sided case).  This experiment measures both a
//! *worst-case phase* (the flood begins the moment the flooded row's
//! weight resets — stricter than the paper, whose attack phase is
//! unspecified) and a typical mid-window phase.  The reproduced shape:
//! linear weighting triggers latest, the logarithmic variants earliest,
//! with means below the bound.
//!
//! **Finding beyond the paper:** under sustained worst-phase flooding
//! the retrigger-gap distribution has a heavy tail for *linear*
//! weight regrowth, and after the first trigger LoLiPRoMi switches to
//! exactly that linear regime for the flooded (history-resident) row.
//! With enough seeds, LiPRoMi *and* LoLiPRoMi therefore show rare
//! (~2–3 % per window) tail events where a gap exceeds the 842-interval
//! flip horizon — the quantitative form of the "potential
//! vulnerability" §IV concedes for LiPRoMi, which our measurement shows
//! the hybrid inherits.  LoPRoMi and CaPRoMi (logarithmic regrowth)
//! show no such events.

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::MeanStd;
use crate::runner::Runner;
use crate::table::TextTable;
use crate::{parallel, scenario};
use dram_sim::RowAddr;
use rh_hwmodel::{reference, Technique};

/// Flooding result for one technique at one attack phase.
#[derive(Debug, Clone)]
pub struct FloodingResult {
    /// Technique.
    pub technique: Technique,
    /// Attack phase: intervals since the flooded row's refresh when the
    /// flood starts (0 = worst case).
    pub phase: u64,
    /// First-trigger activation counts across seeds.
    pub first_trigger: MeanStd,
    /// Worst (latest) first trigger across seeds.
    pub worst: u64,
    /// Paper's reference point, if reported.
    pub paper: Option<u64>,
    /// Bit flips (must be 0).
    pub flips: usize,
}

/// The flooded row: chosen so its victims are refreshed at the window
/// start, making interval 0 the worst-case attack phase.
pub const FLOODED_ROW: RowAddr = RowAddr(1);

/// The two attack phases reported: worst case (0 — the flood begins the
/// moment the flooded row's weight resets) and a typical mid-window
/// phase (half a window after the row's refresh).
pub const PHASES: [u64; 2] = [0, 4096];

/// Runs the flood against the four TiVaPRoMi variants (and PARA for
/// reference), at both attack phases.
pub fn run(scale: &ExperimentScale) -> Vec<FloodingResult> {
    let mut config = RunConfig::paper(scale);
    // One window is the natural horizon of the experiment; more windows
    // only repeat the pattern.
    config.windows = config.windows.min(2);
    let mut techniques_under_test = Technique::TIVAPROMI.to_vec();
    techniques_under_test.push(Technique::Para);

    let jobs: Vec<(Technique, u64, u64)> = techniques_under_test
        .iter()
        .flat_map(|&t| {
            PHASES.iter().flat_map(move |&phase| {
                (0..scale.seeds.max(12)).map(move |s| (t, phase, u64::from(s) + 1))
            })
        })
        .collect();
    let runs = parallel::map(jobs, |(t, phase, seed)| {
        let trace = scenario::flooding_with_phase(&config, FLOODED_ROW, phase);
        let metrics = Runner::new(config.clone())
            .technique(t)
            .seed(seed)
            .run(trace);
        (t, phase, metrics)
    });

    PHASES
        .iter()
        .flat_map(|&phase| techniques_under_test.iter().map(move |&t| (t, phase)))
        .map(|(t, phase)| {
            let cell: Vec<_> = runs
                .iter()
                .filter(|(rt, rp, _)| *rt == t && *rp == phase)
                .map(|(rt, _, m)| (*rt, m))
                .collect();
            let firsts: Vec<f64> = cell
                .iter()
                .map(|(_, m)| m.first_trigger_act.map_or(f64::INFINITY, |v| v as f64))
                .collect();
            let worst = firsts.iter().copied().fold(0.0, f64::max);
            FloodingResult {
                technique: t,
                phase,
                first_trigger: MeanStd::of(&firsts),
                worst: if worst.is_finite() {
                    // Activation counts round-trip f64 exactly (< 2^53).
                    #[allow(clippy::cast_possible_truncation)]
                    {
                        worst as u64
                    }
                } else {
                    u64::MAX
                },
                paper: reference::FLOODING
                    .iter()
                    .find(|p| p.technique == t)
                    .map(|p| p.first_trigger_acts),
                flips: cell.iter().map(|(_, m)| m.flips).sum(),
            }
        })
        .collect()
}

/// Renders the flooding table.
pub fn render(results: &[FloodingResult]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "attack phase",
        "first extra activation after [acts]",
        "worst seed",
        "paper (§IV)",
        "mean < 69 K bound",
        "flips",
    ]);
    for r in results {
        table.row(vec![
            r.technique.to_string(),
            if r.phase == 0 {
                "worst (w=0)".into()
            } else {
                format!("mid-window (w={})", r.phase)
            },
            format!("{:.0} ± {:.0}", r.first_trigger.mean, r.first_trigger.std),
            r.worst.to_string(),
            r.paper.map_or_else(|| "-".into(), |p| format!("≈{p}")),
            if r.first_trigger.mean < reference::FLOODING_SAFETY_BOUND as f64 {
                "yes"
            } else {
                "NO"
            }
            .into(),
            r.flips.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_bound_hold() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 4;
        let results = run(&scale);
        let mean = |t: Technique, phase: u64| {
            results
                .iter()
                .find(|r| r.technique == t && r.phase == phase)
                .expect("present")
                .first_trigger
                .mean
        };
        // The paper's ordering: logarithmic variants trigger earliest,
        // LiPRoMi much later, everything before a flip.
        assert!(mean(Technique::LoPromi, 0) < mean(Technique::LiPromi, 0));
        assert!(mean(Technique::LoLiPromi, 0) < mean(Technique::LiPromi, 0));
        // At the typical phase everything triggers well below the bound.
        for t in Technique::TIVAPROMI {
            assert!(mean(t, 4096) < 69_000.0, "{t}: {}", mean(t, 4096));
        }
        for r in &results {
            match r.technique {
                // Logarithmic regrowth keeps every retrigger gap short.
                Technique::LoPromi | Technique::CaPromi | Technique::Para => {
                    assert_eq!(r.flips, 0, "{} phase {}", r.technique, r.phase)
                }
                // Linear regrowth (LiPRoMi always; LoLiPRoMi once the
                // flooded row is in the history table) has a heavy
                // retrigger-gap tail: rare flips are the documented
                // finding, not a regression.
                _ => assert!(
                    r.flips <= (results.len() / 2).max(2),
                    "{} phase {}: {} flips",
                    r.technique,
                    r.phase,
                    r.flips
                ),
            }
        }
        assert!(render(&results).contains("69 K"));
    }
}
