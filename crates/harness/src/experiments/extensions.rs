//! Extension techniques on the Fig. 4 plane, plus the access-level
//! workload cross-validation.
//!
//! * **CAT** (adaptive counter tree, ISCA 2018) — discussed in the
//!   paper's §II but not plotted in Fig. 4.
//! * **Graphene** (Misra–Gries tracker, MICRO 2020) — contemporaneous
//!   work that reaches tabled-counter determinism at TiVaPRoMi-class
//!   storage, i.e. a point that dominates part of the paper's trade-off
//!   curve.  Including it shows where the field moved the Pareto front
//!   a year before TiVaPRoMi's publication venue.
//! * **Cache-filtered workload** — replaces the interval-level
//!   statistical workload with the access-level 4-core/cache model
//!   (`mem_trace::cpu`) and re-checks reliability and overhead ordering,
//!   validating that the headline results do not hinge on the direct
//!   generator's calibration.

use crate::config::{ExperimentScale, RunConfig};
use crate::experiments::fig4::Fig4Point;
use crate::metrics::MeanStd;
use crate::parallel;
use crate::runner::Runner;
use crate::table::TextTable;
use mem_trace::cpu::{CpuWorkload, CpuWorkloadConfig};
use rh_hwmodel::Technique;

/// Fig. 4-style points for the extension techniques on the standard
/// mixed trace.
pub fn extension_points(scale: &ExperimentScale) -> Vec<Fig4Point> {
    let config = RunConfig::paper(scale);
    let jobs: Vec<(Technique, u64)> = Technique::EXTENSIONS
        .iter()
        .flat_map(|&t| (1..=u64::from(scale.seeds)).map(move |s| (t, s)))
        .collect();
    let runs = parallel::map(jobs, |(t, seed)| {
        (t, crate::experiments::fig4::run_one(t, &config, seed))
    });
    Technique::EXTENSIONS
        .iter()
        .map(|&t| {
            let cell: Vec<_> = runs.iter().filter(|(rt, _)| *rt == t).collect();
            let overheads: Vec<f64> = cell.iter().map(|(_, m)| m.overhead_percent()).collect();
            let fprs: Vec<f64> = cell.iter().map(|(_, m)| m.fpr_percent()).collect();
            Fig4Point {
                technique: t,
                storage_bytes: cell.first().map_or(0.0, |(_, m)| m.storage_bytes_per_bank),
                overhead: MeanStd::of(&overheads),
                fpr: MeanStd::of(&fprs),
                flips: cell.iter().map(|(_, m)| m.flips).sum(),
            }
        })
        .collect()
}

/// One row of the cache-workload cross-validation.
#[derive(Debug, Clone)]
pub struct CacheValidationResult {
    /// Technique.
    pub technique: Technique,
    /// Overhead % on the cache-filtered trace.
    pub overhead: MeanStd,
    /// Bit flips (must be 0).
    pub flips: usize,
}

/// Re-runs a representative technique set on the access-level workload.
pub fn cache_validation(scale: &ExperimentScale) -> Vec<CacheValidationResult> {
    let config = RunConfig::paper(scale);
    let under_test = [
        Technique::Para,
        Technique::TwiCe,
        Technique::Graphene,
        Technique::LiPromi,
        Technique::LoLiPromi,
    ];
    let jobs: Vec<(Technique, u64)> = under_test
        .iter()
        .flat_map(|&t| (1..=u64::from(scale.seeds.max(2))).map(move |s| (t, s)))
        .collect();
    let runs = parallel::map(jobs, |(t, seed)| {
        // CpuWorkload couples banks through shared caches and a global
        // RNG, so it cannot implement TraceSplit; these runs stay on the
        // sequential engine (the per-seed jobs above still parallelise).
        let trace = CpuWorkload::new(
            CpuWorkloadConfig::paper(&config.geometry, config.intervals()),
            seed,
        );
        let runner = Runner::new(config.clone()).technique(t).seed(seed);
        (t, runner.run_sequential(trace))
    });
    under_test
        .iter()
        .map(|&t| {
            let cell: Vec<_> = runs.iter().filter(|(rt, _)| *rt == t).collect();
            let overheads: Vec<f64> = cell.iter().map(|(_, m)| m.overhead_percent()).collect();
            CacheValidationResult {
                technique: t,
                overhead: MeanStd::of(&overheads),
                flips: cell.iter().map(|(_, m)| m.flips).sum(),
            }
        })
        .collect()
}

/// Renders both parts.
pub fn render(points: &[Fig4Point], validation: &[CacheValidationResult]) -> String {
    let mut out = String::from("Extension techniques on the Fig. 4 plane:\n\n");
    out.push_str(&crate::experiments::fig4::render(points));
    out.push_str("\nCache-filtered (access-level) workload cross-validation:\n\n");
    let mut table = TextTable::new(vec!["technique", "overhead [%]", "flips"]);
    for r in validation {
        table.row(vec![
            r.technique.to_string(),
            format!("{:.4} ± {:.4}", r.overhead.mean, r.overhead.std),
            r.flips.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphene_dominates_part_of_the_tradeoff() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 1;
        let points = extension_points(&scale);
        let graphene = points
            .iter()
            .find(|p| p.technique == Technique::Graphene)
            .unwrap();
        // Deterministic-class overhead from TiVaPRoMi-class storage.
        assert!(graphene.storage_bytes < 500.0);
        assert!(graphene.overhead.mean < 0.01, "{}", graphene.overhead.mean);
        assert_eq!(graphene.flips, 0);
        let cat = points
            .iter()
            .find(|p| p.technique == Technique::Cat)
            .unwrap();
        assert_eq!(cat.flips, 0);
    }

    #[test]
    fn cache_workload_reproduces_reliability_and_ordering() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 2;
        let results = cache_validation(&scale);
        for r in &results {
            assert_eq!(r.flips, 0, "{}", r.technique);
        }
        let get = |t: Technique| {
            results
                .iter()
                .find(|r| r.technique == t)
                .unwrap()
                .overhead
                .mean
        };
        // The class ordering survives the workload-model swap.
        assert!(get(Technique::TwiCe) < get(Technique::LiPromi));
        assert!(get(Technique::LiPromi) < get(Technique::Para));
        let rendered = render(&extension_points(&scale), &results);
        assert!(rendered.contains("Graphene"));
    }
}
