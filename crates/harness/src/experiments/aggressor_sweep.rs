//! Aggressor-count sweep: the paper's attacker ramps 1→20 aggressors
//! per bank over the run; this experiment pins the count instead and
//! measures each technique at fixed k ∈ {1, 2, 4, 8, 16, 20} — the
//! decomposition of the ramp into its phases.
//!
//! Low counts concentrate the attacker budget (fast per-aggressor
//! hammering: hardest for counter thresholds and the weight ramp); high
//! counts spread it (many slow aggressors: hardest for small tables,
//! the sequential multi-aggressor pattern ProHit was designed for).

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::MeanStd;
use crate::parallel;
use crate::runner::Runner;
use crate::table::TextTable;
use dram_sim::{BankId, RowAddr};
use mem_trace::{AttackConfig, AttackKind, Attacker, MixedTrace, SpecLikeWorkload, WorkloadConfig};
use rh_hwmodel::Technique;

/// The fixed aggressor counts swept.
pub const COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 20];

/// Result of one (technique, count) cell.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Technique.
    pub technique: Technique,
    /// Fixed number of aggressors per bank.
    pub aggressors: u32,
    /// Overhead % across seeds.
    pub overhead: MeanStd,
    /// Bit flips across seeds.
    pub flips: usize,
    /// Worst margin across seeds.
    pub margin: f64,
}

/// A mixed trace with a fixed aggressor count on bank 0.
pub fn fixed_count_mix(config: &RunConfig, aggressors: u32, seed: u64) -> MixedTrace {
    let intervals = config.intervals();
    let workload = SpecLikeWorkload::new(
        WorkloadConfig::paper(&config.geometry).with_intervals(intervals),
        seed,
    );
    // MultiAggressorRamp with a one-interval hold reaches the final
    // count after `aggressors` intervals — effectively a fixed-count
    // attack.
    let attacker = Attacker::new(AttackConfig {
        kind: AttackKind::MultiAggressorRamp {
            base_row: RowAddr(30_000),
            max_aggressors: aggressors,
        },
        target_banks: vec![BankId(0)],
        acts_per_interval: 24,
        start_interval: 0,
        intervals,
        ramp_hold_intervals: 1,
    });
    MixedTrace::new(
        vec![Box::new(workload), Box::new(attacker)],
        config.timing.max_activations_per_interval(),
    )
}

/// Runs the sweep for a representative technique set.
pub fn run(scale: &ExperimentScale) -> Vec<SweepResult> {
    let config = {
        let mut c = RunConfig::paper(scale);
        c.windows = c.windows.min(4);
        c
    };
    let under_test = [
        Technique::Para,
        Technique::TwiCe,
        Technique::LiPromi,
        Technique::LoLiPromi,
        Technique::CaPromi,
    ];
    let jobs: Vec<(Technique, u32, u64)> = under_test
        .iter()
        .flat_map(|&t| {
            COUNTS
                .iter()
                .flat_map(move |&k| (1..=u64::from(scale.seeds.max(2))).map(move |s| (t, k, s)))
        })
        .collect();
    let runs = parallel::map(jobs, |(t, k, seed)| {
        let trace = fixed_count_mix(&config, k, seed);
        let metrics = Runner::new(config.clone())
            .technique(t)
            .seed(seed)
            .run(trace);
        (t, k, metrics)
    });

    under_test
        .iter()
        .flat_map(|&t| COUNTS.iter().map(move |&k| (t, k)))
        .map(|(t, k)| {
            let cell: Vec<_> = runs
                .iter()
                .filter(|(rt, rk, _)| *rt == t && *rk == k)
                .collect();
            let overheads: Vec<f64> = cell.iter().map(|(_, _, m)| m.overhead_percent()).collect();
            SweepResult {
                technique: t,
                aggressors: k,
                overhead: MeanStd::of(&overheads),
                flips: cell.iter().map(|(_, _, m)| m.flips).sum(),
                margin: cell
                    .iter()
                    .map(|(_, _, m)| m.attack_margin())
                    .fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Renders the sweep grid.
pub fn render(results: &[SweepResult]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "aggressors/bank",
        "overhead [%]",
        "worst margin",
        "flips",
    ]);
    for r in results {
        table.row(vec![
            r.technique.to_string(),
            r.aggressors.to_string(),
            format!("{:.4} ± {:.4}", r.overhead.mean, r.overhead.std),
            format!("{:.0}%", 100.0 * r.margin),
            r.flips.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_counts_are_mitigated() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 1;
        let results = run(&scale);
        assert_eq!(results.len(), 5 * COUNTS.len());
        for r in &results {
            assert_eq!(r.flips, 0, "{} at k={}", r.technique, r.aggressors);
        }
        assert!(render(&results).contains("aggressors/bank"));
    }

    #[test]
    fn fixed_count_trace_has_expected_aggressors() {
        let config = RunConfig::paper(&ExperimentScale::quick());
        let mut mix = fixed_count_mix(&config, 4, 1);
        let mut out = Vec::new();
        let mut aggressor_rows = std::collections::BTreeSet::new();
        while {
            out.clear();
            mem_trace::TraceSource::next_interval(&mut mix, &mut out)
        } {
            // Only attacker-labelled events count: the benign workload's
            // uniform cold-row draws may legitimately touch any row.
            aggressor_rows.extend(out.iter().filter(|e| e.aggressor).map(|e| e.row.0));
        }
        // Aggressor rows 30000, 30002, 30004, 30006 — and nothing else.
        let expected: std::collections::BTreeSet<u32> = (0..4u32).map(|j| 30_000 + 2 * j).collect();
        assert_eq!(aggressor_rows, expected);
    }
}
